//! Synthetic dataset generators.
//!
//! The paper evaluates FeBiM on the classic `iris`, `wine` and
//! `breast-cancer` datasets loaded through scikit-learn. Redistributing the
//! original UCI tables is unnecessary for reproducing the paper's *trends*
//! (accuracy plateaus under quantization, robustness under device variation),
//! which depend only on the class-conditional Gaussian structure of the data.
//! These generators therefore synthesise datasets whose dimensionality, class
//! balance and class separability are modelled on the originals; the
//! substitution is documented in `DESIGN.md`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::errors::{DataError, Result};
use crate::rng::{normal, seeded_rng};

/// Gaussian description of one class: per-feature means and standard
/// deviations plus the number of samples to draw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature standard deviations (must be positive).
    pub std_devs: Vec<f64>,
    /// Number of samples to draw for this class.
    pub count: usize,
}

impl ClassSpec {
    /// Creates a class specification.
    pub fn new(means: Vec<f64>, std_devs: Vec<f64>, count: usize) -> Self {
        Self {
            means,
            std_devs,
            count,
        }
    }
}

/// Full specification of a synthetic class-conditional Gaussian dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Dataset name.
    pub name: String,
    /// Feature names (defines the dimensionality).
    pub feature_names: Vec<String>,
    /// One specification per class.
    pub classes: Vec<ClassSpec>,
}

impl SyntheticSpec {
    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] when the spec has no classes,
    /// a class has mismatched means/std-devs, a non-positive standard
    /// deviation, or zero samples.
    pub fn validate(&self) -> Result<()> {
        if self.classes.is_empty() {
            return Err(DataError::InvalidParameter {
                name: "classes",
                reason: "at least one class is required".to_string(),
            });
        }
        let features = self.feature_names.len();
        for (index, class) in self.classes.iter().enumerate() {
            if class.means.len() != features || class.std_devs.len() != features {
                return Err(DataError::InvalidParameter {
                    name: "classes",
                    reason: format!(
                        "class {index} has {} means and {} std-devs for {features} features",
                        class.means.len(),
                        class.std_devs.len()
                    ),
                });
            }
            if class.count == 0 {
                return Err(DataError::InvalidParameter {
                    name: "classes",
                    reason: format!("class {index} has zero samples"),
                });
            }
            if class.std_devs.iter().any(|&s| !(s > 0.0 && s.is_finite())) {
                return Err(DataError::InvalidParameter {
                    name: "classes",
                    reason: format!("class {index} has a non-positive standard deviation"),
                });
            }
        }
        Ok(())
    }

    /// Generates the dataset deterministically from a seed.
    ///
    /// # Errors
    ///
    /// Propagates [`SyntheticSpec::validate`] failures and dataset
    /// construction errors.
    pub fn generate(&self, seed: u64) -> Result<Dataset> {
        self.validate()?;
        let mut rng = seeded_rng(seed);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (class_index, class) in self.classes.iter().enumerate() {
            for _ in 0..class.count {
                let sample: Vec<f64> = class
                    .means
                    .iter()
                    .zip(class.std_devs.iter())
                    .map(|(&mean, &std)| normal(&mut rng, mean, std))
                    .collect();
                samples.push(sample);
                labels.push(class_index);
            }
        }
        // Shuffle so train/test splits do not accidentally follow class order.
        let order = crate::rng::permutation(&mut rng, samples.len());
        let samples: Vec<Vec<f64>> = order.iter().map(|&i| samples[i].clone()).collect();
        let labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
        Dataset::new(
            self.name.clone(),
            self.feature_names.clone(),
            self.classes.len(),
            samples,
            labels,
        )
    }
}

fn names(prefix: &str, count: usize) -> Vec<String> {
    (0..count).map(|i| format!("{prefix}_{i}")).collect()
}

/// Specification modelled on the iris dataset: 4 features, 3 balanced classes
/// of 50 samples each, with one linearly separable class and two overlapping
/// ones (software GNBC accuracy in the mid-90s %).
pub fn iris_like_spec() -> SyntheticSpec {
    SyntheticSpec {
        name: "iris-like".to_string(),
        feature_names: vec![
            "sepal_length".to_string(),
            "sepal_width".to_string(),
            "petal_length".to_string(),
            "petal_width".to_string(),
        ],
        classes: vec![
            // setosa-like: well separated in the petal dimensions.
            ClassSpec::new(
                vec![5.01, 3.43, 1.46, 0.25],
                vec![0.35, 0.38, 0.17, 0.11],
                50,
            ),
            // versicolor-like.
            ClassSpec::new(
                vec![5.94, 2.77, 4.26, 1.33],
                vec![0.52, 0.31, 0.47, 0.20],
                50,
            ),
            // virginica-like: overlaps versicolor.
            ClassSpec::new(
                vec![6.59, 2.97, 5.55, 2.03],
                vec![0.64, 0.32, 0.55, 0.27],
                50,
            ),
        ],
    }
}

/// Specification modelled on the wine dataset: 13 features, 3 classes with the
/// original 59/71/48 class balance and moderate separability.
pub fn wine_like_spec() -> SyntheticSpec {
    let features = 13;
    // Base feature scales loosely follow the wine chemistry measurements
    // (alcohol ~13, malic acid ~2, ash ~2.4, alcalinity ~19, magnesium ~100,
    // phenols ~2.3, flavanoids ~2, nonflavanoid ~0.4, proanthocyanins ~1.6,
    // color intensity ~5, hue ~1, OD280 ~2.6, proline ~750).
    let base = [
        13.0, 2.34, 2.37, 19.5, 99.7, 2.30, 2.03, 0.36, 1.59, 5.06, 0.96, 2.61, 746.0,
    ];
    let spread = [
        0.81, 1.12, 0.27, 3.34, 14.3, 0.63, 1.00, 0.12, 0.57, 2.32, 0.23, 0.71, 315.0,
    ];
    // Class-dependent offsets expressed in units of the feature spread;
    // class 0 (barolo-like) is high-alcohol/high-proline, class 2 has high
    // colour intensity and low flavanoids, class 1 sits in between.
    let offsets = [
        [
            0.9, -0.3, 0.3, -0.8, 0.5, 0.9, 1.0, -0.6, 0.6, 0.2, 0.5, 0.8, 1.2,
        ],
        [
            -0.9, -0.4, -0.5, 0.2, -0.4, 0.0, 0.1, 0.0, 0.1, -0.9, 0.3, 0.3, -0.8,
        ],
        [
            0.2, 0.9, 0.3, 0.6, 0.0, -0.9, -1.3, 0.8, -0.7, 1.0, -1.1, -1.3, -0.4,
        ],
    ];
    let counts = [59usize, 71, 48];
    let classes = (0..3)
        .map(|class| {
            let means = (0..features)
                .map(|f| base[f] + offsets[class][f] * spread[f])
                .collect();
            let std_devs = (0..features).map(|f| spread[f] * 0.75).collect();
            ClassSpec::new(means, std_devs, counts[class])
        })
        .collect();
    SyntheticSpec {
        name: "wine-like".to_string(),
        feature_names: names("chem", features),
        classes,
    }
}

/// Specification modelled on the breast-cancer (WDBC) dataset: 30 features,
/// 2 classes with the original 212/357 malignant/benign balance and strongly
/// correlated mean shifts between the classes.
pub fn cancer_like_spec() -> SyntheticSpec {
    let features = 30;
    // Benign baseline scales per feature group (mean radius ~12, texture ~18,
    // perimeter ~78, area ~460, smoothness ~0.09, ... repeated across the
    // mean / standard-error / worst feature groups of WDBC).
    let mut benign_means = Vec::with_capacity(features);
    let mut malignant_means = Vec::with_capacity(features);
    let mut std_devs = Vec::with_capacity(features);
    let group_base = [
        12.1, 17.9, 78.1, 462.8, 0.092, 0.080, 0.046, 0.026, 0.174, 0.063,
    ];
    let group_spread = [
        1.8, 4.0, 11.8, 134.0, 0.013, 0.034, 0.044, 0.016, 0.025, 0.007,
    ];
    // Malignant shift in units of the benign spread; geometry features shift
    // strongly, texture/symmetry features less so.
    let group_shift = [1.9, 0.9, 2.0, 1.9, 0.9, 1.4, 1.8, 2.2, 0.6, 0.2];
    for group in 0..3 {
        // Group 0: mean values, group 1: standard errors (scaled down),
        // group 2: "worst" values (scaled up).
        let scale = match group {
            0 => 1.0,
            1 => 0.12,
            _ => 1.25,
        };
        for f in 0..10 {
            let base = group_base[f] * scale;
            let spread = group_spread[f] * scale;
            benign_means.push(base);
            malignant_means.push(base + group_shift[f] * spread);
            std_devs.push(spread);
        }
    }
    SyntheticSpec {
        name: "cancer-like".to_string(),
        feature_names: names("cell", features),
        classes: vec![
            ClassSpec::new(malignant_means, std_devs.clone(), 212),
            ClassSpec::new(benign_means, std_devs, 357),
        ],
    }
}

/// Generates the iris-like dataset with a fixed seed.
///
/// # Errors
///
/// Propagates generation errors (the built-in spec never triggers them).
pub fn iris_like(seed: u64) -> Result<Dataset> {
    iris_like_spec().generate(seed)
}

/// Generates the wine-like dataset with a fixed seed.
///
/// # Errors
///
/// Propagates generation errors (the built-in spec never triggers them).
pub fn wine_like(seed: u64) -> Result<Dataset> {
    wine_like_spec().generate(seed)
}

/// Generates the cancer-like dataset with a fixed seed.
///
/// # Errors
///
/// Propagates generation errors (the built-in spec never triggers them).
pub fn cancer_like(seed: u64) -> Result<Dataset> {
    cancer_like_spec().generate(seed)
}

/// Generates a generic set of Gaussian blobs, useful for scalability studies
/// where the number of classes and features must be swept freely.
///
/// Class `c` is centred at `c * separation` in every feature dimension with
/// unit standard deviation.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] for zero classes, features or
/// samples per class, or a non-positive separation.
pub fn gaussian_blobs<R: Rng + ?Sized>(
    classes: usize,
    features: usize,
    samples_per_class: usize,
    separation: f64,
    rng: &mut R,
) -> Result<Dataset> {
    if classes == 0 || features == 0 || samples_per_class == 0 {
        return Err(DataError::InvalidParameter {
            name: "classes/features/samples_per_class",
            reason: "must all be non-zero".to_string(),
        });
    }
    if !(separation > 0.0 && separation.is_finite()) {
        return Err(DataError::InvalidParameter {
            name: "separation",
            reason: "must be positive and finite".to_string(),
        });
    }
    let mut samples = Vec::with_capacity(classes * samples_per_class);
    let mut labels = Vec::with_capacity(classes * samples_per_class);
    for class in 0..classes {
        let centre = class as f64 * separation;
        for _ in 0..samples_per_class {
            samples.push((0..features).map(|_| normal(rng, centre, 1.0)).collect());
            labels.push(class);
        }
    }
    Dataset::new(
        format!("blobs-{classes}x{features}"),
        names("x", features),
        classes,
        samples,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iris_like_has_paper_shape() {
        let d = iris_like(1).unwrap();
        assert_eq!(d.n_samples(), 150);
        assert_eq!(d.n_features(), 4);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_counts(), vec![50, 50, 50]);
    }

    #[test]
    fn wine_like_has_paper_shape() {
        let d = wine_like(1).unwrap();
        assert_eq!(d.n_samples(), 178);
        assert_eq!(d.n_features(), 13);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_counts(), vec![59, 71, 48]);
    }

    #[test]
    fn cancer_like_has_paper_shape() {
        let d = cancer_like(1).unwrap();
        assert_eq!(d.n_samples(), 569);
        assert_eq!(d.n_features(), 30);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![212, 357]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = iris_like(7).unwrap();
        let b = iris_like(7).unwrap();
        let c = iris_like(8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn class_means_match_spec_roughly() {
        let spec = iris_like_spec();
        let d = spec.generate(3).unwrap();
        for (class_index, class_spec) in spec.classes.iter().enumerate() {
            let indices = d.class_indices(class_index);
            for feature in 0..d.n_features() {
                let mean: f64 = indices
                    .iter()
                    .map(|&i| d.sample(i).unwrap()[feature])
                    .sum::<f64>()
                    / indices.len() as f64;
                let expected = class_spec.means[feature];
                let tolerance =
                    3.0 * class_spec.std_devs[feature] / (indices.len() as f64).sqrt() + 1e-9;
                assert!(
                    (mean - expected).abs() < tolerance.max(0.2),
                    "class {class_index} feature {feature}: mean {mean} expected {expected}"
                );
            }
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut spec = iris_like_spec();
        spec.classes.clear();
        assert!(spec.generate(0).is_err());

        let mut spec = iris_like_spec();
        spec.classes[0].std_devs[0] = 0.0;
        assert!(spec.generate(0).is_err());

        let mut spec = iris_like_spec();
        spec.classes[0].count = 0;
        assert!(spec.generate(0).is_err());

        let mut spec = iris_like_spec();
        spec.classes[0].means.pop();
        assert!(spec.generate(0).is_err());
    }

    #[test]
    fn blobs_generator_validates_and_generates() {
        let mut rng = seeded_rng(1);
        assert!(gaussian_blobs(0, 2, 5, 3.0, &mut rng).is_err());
        assert!(gaussian_blobs(2, 2, 5, 0.0, &mut rng).is_err());
        let d = gaussian_blobs(4, 3, 10, 5.0, &mut rng).unwrap();
        assert_eq!(d.n_samples(), 40);
        assert_eq!(d.n_classes(), 4);
        assert_eq!(d.n_features(), 3);
    }

    #[test]
    fn labels_are_shuffled() {
        // The generated labels should not be sorted by class.
        let d = iris_like(5).unwrap();
        let labels = d.labels();
        let sorted = {
            let mut s = labels.to_vec();
            s.sort_unstable();
            s
        };
        assert_ne!(labels, sorted.as_slice());
    }
}
