//! In-memory tabular dataset with continuous features and integer class labels.

use serde::{Deserialize, Serialize};

use crate::errors::{DataError, Result};

/// A labelled dataset of continuous feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"iris-like"`).
    name: String,
    /// One name per feature column.
    feature_names: Vec<String>,
    /// Number of distinct classes.
    n_classes: usize,
    /// Feature vectors, one per sample.
    samples: Vec<Vec<f64>>,
    /// Class label of each sample.
    labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset and validates its internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when there are no samples,
    /// [`DataError::LabelCountMismatch`] when labels and samples disagree in
    /// length, [`DataError::InconsistentFeatureCount`] when any sample has a
    /// different number of features than the first, and
    /// [`DataError::LabelOutOfRange`] when a label exceeds `n_classes`.
    pub fn new(
        name: impl Into<String>,
        feature_names: Vec<String>,
        n_classes: usize,
        samples: Vec<Vec<f64>>,
        labels: Vec<usize>,
    ) -> Result<Self> {
        if samples.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        if samples.len() != labels.len() {
            return Err(DataError::LabelCountMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        let expected = feature_names.len();
        for (index, sample) in samples.iter().enumerate() {
            if sample.len() != expected {
                return Err(DataError::InconsistentFeatureCount {
                    expected,
                    found: sample.len(),
                    sample: index,
                });
            }
        }
        for &label in &labels {
            if label >= n_classes {
                return Err(DataError::LabelOutOfRange {
                    label,
                    classes: n_classes,
                });
            }
        }
        Ok(Self {
            name: name.into(),
            feature_names,
            n_classes,
            samples,
            labels,
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the feature columns.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Borrow all feature vectors.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// Borrow all labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature vector of one sample.
    pub fn sample(&self, index: usize) -> Option<&[f64]> {
        self.samples.get(index).map(|s| s.as_slice())
    }

    /// Label of one sample.
    pub fn label(&self, index: usize) -> Option<usize> {
        self.labels.get(index).copied()
    }

    /// Number of samples in each class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &label in &self.labels {
            counts[label] += 1;
        }
        counts
    }

    /// All values of one feature column.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of range.
    pub fn feature_column(&self, feature: usize) -> Vec<f64> {
        assert!(feature < self.n_features(), "feature index out of range");
        self.samples.iter().map(|s| s[feature]).collect()
    }

    /// Minimum and maximum of one feature column.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of range.
    pub fn feature_range(&self, feature: usize) -> (f64, f64) {
        let column = self.feature_column(feature);
        let min = column.iter().copied().fold(f64::INFINITY, f64::min);
        let max = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    }

    /// Indices of the samples belonging to one class.
    pub fn class_indices(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &label)| label == class)
            .map(|(index, _)| index)
            .collect()
    }

    /// Builds a new dataset containing only the given sample indices.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when `indices` is empty and
    /// [`DataError::InvalidParameter`] when an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        if indices.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let mut samples = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &index in indices {
            let sample = self.samples.get(index).ok_or(DataError::InvalidParameter {
                name: "indices",
                reason: format!(
                    "index {index} out of range for {} samples",
                    self.n_samples()
                ),
            })?;
            samples.push(sample.clone());
            labels.push(self.labels[index]);
        }
        Dataset::new(
            self.name.clone(),
            self.feature_names.clone(),
            self.n_classes,
            samples,
            labels,
        )
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> + '_ {
        self.samples
            .iter()
            .map(|s| s.as_slice())
            .zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec!["a".to_string(), "b".to_string()],
            2,
            vec![
                vec![0.0, 1.0],
                vec![1.0, 2.0],
                vec![2.0, 3.0],
                vec![3.0, 4.0],
            ],
            vec![0, 0, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn accessors_report_shapes() {
        let d = toy();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.n_samples(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.feature_names().len(), 2);
        assert_eq!(d.sample(1), Some(&[1.0, 2.0][..]));
        assert_eq!(d.label(2), Some(1));
        assert_eq!(d.sample(9), None);
        assert_eq!(d.label(9), None);
    }

    #[test]
    fn empty_dataset_rejected() {
        let err = Dataset::new("x", vec![], 1, vec![], vec![]).unwrap_err();
        assert_eq!(err, DataError::EmptyDataset);
    }

    #[test]
    fn label_count_mismatch_rejected() {
        let err =
            Dataset::new("x", vec!["a".to_string()], 1, vec![vec![1.0]], vec![0, 0]).unwrap_err();
        assert!(matches!(err, DataError::LabelCountMismatch { .. }));
    }

    #[test]
    fn inconsistent_features_rejected() {
        let err = Dataset::new(
            "x",
            vec!["a".to_string(), "b".to_string()],
            1,
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![0, 0],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DataError::InconsistentFeatureCount { sample: 1, .. }
        ));
    }

    #[test]
    fn label_out_of_range_rejected() {
        let err = Dataset::new(
            "x",
            vec!["a".to_string()],
            2,
            vec![vec![1.0], vec![2.0]],
            vec![0, 2],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::LabelOutOfRange { label: 2, .. }));
    }

    #[test]
    fn class_counts_and_indices() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.class_indices(0), vec![0, 1]);
        assert_eq!(d.class_indices(1), vec![2, 3]);
    }

    #[test]
    fn feature_column_and_range() {
        let d = toy();
        assert_eq!(d.feature_column(1), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.feature_range(0), (0.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "feature index out of range")]
    fn feature_column_out_of_range_panics() {
        toy().feature_column(5);
    }

    #[test]
    fn subset_selects_requested_rows() {
        let d = toy();
        let s = d.subset(&[0, 3]).unwrap();
        assert_eq!(s.n_samples(), 2);
        assert_eq!(s.labels(), &[0, 1]);
        assert!(d.subset(&[]).is_err());
        assert!(d.subset(&[42]).is_err());
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let d = toy();
        let pairs: Vec<(Vec<f64>, usize)> = d.iter().map(|(s, l)| (s.to_vec(), l)).collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[2], (vec![2.0, 3.0], 1));
    }
}
