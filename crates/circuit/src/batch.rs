//! Amortized cost model for grouped (batched) reads.
//!
//! A serving workload answers many posterior queries against the *same*
//! programmed conductances. When those reads are issued back to back, the
//! array does not start cold every time: the wordlines stay biased across
//! the group, so the array settling delay and the wordline-driver energy are
//! paid once per group instead of once per read, while every read still pays
//! its own bitline drivers, conduction and sensing (mirror + WTA) — the
//! amortization charge-domain FeFET fabrics exploit for grouped reads.
//!
//! [`ReadGroup`] accumulates that pricing from per-read [`DelayBreakdown`] /
//! [`InferenceEnergy`] figures (the exact ones the sequential path reports),
//! so a batched read group is priced consistently with — and never cheaper
//! than the physics allows relative to — the sequential baseline:
//!
//! * group array delay = the slowest read's array settling (paid once),
//! * group sensing delay = Σ per-read sensing delays (each read resolves its
//!   own WTA competition),
//! * group array energy = wordline drivers once + Σ per-read (bitline
//!   drivers + conduction),
//! * group sensing energy = Σ per-read sensing energies.
//!
//! The helpers [`wordline_driver_energy`] and [`fabric_wordline_driver_energy`]
//! compute the per-read wordline-driver share the group refunds on repeats,
//! for a monolithic array and for a tiled fabric respectively.

use serde::{Deserialize, Serialize};

use crate::delay::DelayBreakdown;
use crate::energy::{EnergyParams, InferenceEnergy};
use crate::errors::{CircuitError, Result};
use crate::fabric::TileGeometry;

/// Per-read wordline-driver energy of a monolithic array with `rows`
/// wordlines, in joules — the component a grouped read pays only once.
pub fn wordline_driver_energy(params: &EnergyParams, rows: usize) -> f64 {
    rows as f64 * params.wordline_driver_energy
}

/// Per-read wordline-driver energy of a tiled fabric, in joules: every tile
/// row re-drives its occupied wordlines, so the share sums over all tiles.
pub fn fabric_wordline_driver_energy(params: &EnergyParams, tiles: &[TileGeometry]) -> f64 {
    tiles
        .iter()
        .map(|tile| tile.rows as f64 * params.wordline_driver_energy)
        .sum()
}

/// Accumulated amortized cost of a group of reads issued back to back
/// against the same programmed wordlines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadGroup {
    reads: usize,
    /// Slowest array settling across the group, paid once.
    settle: f64,
    /// Largest per-read wordline-driver energy across the group, paid once.
    wordline_energy: f64,
    /// Accumulated per-read sensing delays.
    sensing_delay: f64,
    /// Accumulated per-read array energies minus their wordline-driver share.
    array_energy: f64,
    /// Accumulated per-read sensing energies.
    sensing_energy: f64,
    /// Σ per-read total delays (the sequential baseline).
    sequential_delay: f64,
    /// Σ per-read total energies (the sequential baseline).
    sequential_energy: f64,
}

impl ReadGroup {
    /// An empty group (zero reads, zero cost).
    pub fn new() -> Self {
        Self {
            reads: 0,
            settle: 0.0,
            wordline_energy: 0.0,
            sensing_delay: 0.0,
            array_energy: 0.0,
            sensing_energy: 0.0,
            sequential_delay: 0.0,
            sequential_energy: 0.0,
        }
    }

    /// Adds one read to the group from its individually priced delay and
    /// energy. `wordline_share` is the per-read wordline-driver energy the
    /// group pays only once (compute it with [`wordline_driver_energy`] or
    /// [`fabric_wordline_driver_energy`]).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] when `wordline_share` is
    /// negative, non-finite or exceeds the read's array energy (the share
    /// must be a component of it).
    pub fn add(
        &mut self,
        delay: &DelayBreakdown,
        energy: &InferenceEnergy,
        wordline_share: f64,
    ) -> Result<()> {
        if !(wordline_share >= 0.0 && wordline_share.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                name: "wordline_share",
                reason: format!("must be non-negative and finite, got {wordline_share}"),
            });
        }
        if wordline_share > energy.array {
            return Err(CircuitError::InvalidParameter {
                name: "wordline_share",
                reason: format!(
                    "wordline-driver share {wordline_share} exceeds the read's array energy {}",
                    energy.array
                ),
            });
        }
        self.reads += 1;
        self.settle = self.settle.max(delay.array);
        self.wordline_energy = self.wordline_energy.max(wordline_share);
        self.sensing_delay += delay.sensing;
        self.array_energy += energy.array - wordline_share;
        self.sensing_energy += energy.sensing;
        self.sequential_delay += delay.total();
        self.sequential_energy += energy.total();
        Ok(())
    }

    /// Number of reads priced so far.
    pub fn reads(&self) -> usize {
        self.reads
    }

    /// Whether no read has been added yet.
    pub fn is_empty(&self) -> bool {
        self.reads == 0
    }

    /// Amortized delay of the whole group: one array settling plus the
    /// accumulated per-read sensing resolutions.
    pub fn delay(&self) -> DelayBreakdown {
        DelayBreakdown {
            array: self.settle,
            sensing: self.sensing_delay,
        }
    }

    /// Amortized energy of the whole group: wordline drivers once, per-read
    /// bitline drivers + conduction + sensing accumulated.
    pub fn energy(&self) -> InferenceEnergy {
        InferenceEnergy {
            array: self.wordline_energy + self.array_energy,
            sensing: self.sensing_energy,
        }
    }

    /// Σ per-read total delays: what the same reads cost issued one by one.
    pub fn sequential_delay(&self) -> f64 {
        self.sequential_delay
    }

    /// Σ per-read total energies of the sequential baseline.
    pub fn sequential_energy(&self) -> f64 {
        self.sequential_energy
    }
}

impl Default for ReadGroup {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sense::SensingChain;

    fn chain() -> SensingChain {
        SensingChain::febim_calibrated()
    }

    #[test]
    fn empty_group_costs_nothing() {
        let group = ReadGroup::default();
        assert!(group.is_empty());
        assert_eq!(group.reads(), 0);
        assert_eq!(group.delay().total(), 0.0);
        assert_eq!(group.energy().total(), 0.0);
    }

    #[test]
    fn grouped_reads_amortize_settling_and_wordline_drivers() {
        let chain = chain();
        let currents = [0.8e-6, 1.6e-6, 1.2e-6];
        let readout = chain.sense(&currents, 5).unwrap();
        let share = wordline_driver_energy(chain.energy_model().params(), currents.len());
        let mut group = ReadGroup::new();
        for _ in 0..8 {
            group.add(&readout.delay, &readout.energy, share).unwrap();
        }
        assert_eq!(group.reads(), 8);
        // Delay: settling once + 8 WTA resolutions, strictly below 8 full reads.
        let batched = group.delay();
        assert_eq!(batched.array, readout.delay.array);
        assert!((batched.sensing - 8.0 * readout.delay.sensing).abs() < 1e-21);
        assert!(batched.total() < group.sequential_delay());
        assert!((group.sequential_delay() - 8.0 * readout.delay.total()).abs() < 1e-18);
        // Energy: wordline drivers once, everything else per read.
        let energy = group.energy();
        let expected_array = share + 8.0 * (readout.energy.array - share);
        assert!((energy.array - expected_array).abs() < 1e-27);
        assert!((energy.sensing - 8.0 * readout.energy.sensing).abs() < 1e-27);
        assert!(energy.total() < group.sequential_energy());
    }

    #[test]
    fn single_read_group_matches_the_read_exactly() {
        let chain = chain();
        let readout = chain.sense(&[1.0e-6, 0.4e-6], 3).unwrap();
        let share = wordline_driver_energy(chain.energy_model().params(), 2);
        let mut group = ReadGroup::new();
        group.add(&readout.delay, &readout.energy, share).unwrap();
        assert_eq!(group.delay(), readout.delay);
        assert_eq!(group.energy(), readout.energy);
        assert_eq!(group.sequential_delay(), readout.delay.total());
        assert_eq!(group.sequential_energy(), readout.energy.total());
    }

    #[test]
    fn fabric_wordline_share_sums_over_tiles() {
        let params = EnergyParams::febim_calibrated();
        let tiles = [
            TileGeometry {
                rows: 2,
                columns: 9,
                activated_columns: 3,
            },
            TileGeometry {
                rows: 1,
                columns: 7,
                activated_columns: 1,
            },
        ];
        let share = fabric_wordline_driver_energy(&params, &tiles);
        assert!((share - 3.0 * params.wordline_driver_energy).abs() < 1e-30);
        assert_eq!(wordline_driver_energy(&params, 3), share);
    }

    #[test]
    fn invalid_wordline_share_rejected() {
        let delay = DelayBreakdown {
            array: 1e-10,
            sensing: 1e-10,
        };
        let energy = InferenceEnergy {
            array: 1e-15,
            sensing: 1e-15,
        };
        let mut group = ReadGroup::new();
        assert!(group.add(&delay, &energy, -1.0).is_err());
        assert!(group.add(&delay, &energy, f64::NAN).is_err());
        assert!(group.add(&delay, &energy, 2e-15).is_err());
        assert!(group.is_empty());
        group.add(&delay, &energy, 0.5e-15).unwrap();
        assert_eq!(group.reads(), 1);
    }
}
