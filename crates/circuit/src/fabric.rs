//! Sensing aggregation for a tiled crossbar fabric.
//!
//! A model sharded across a grid of fixed-size tiles reads differently from
//! a monolithic array: every tile settles its own (smaller) bitline load in
//! parallel, each tile's per-row current mirrors copy the partial wordline
//! currents onto a merge bus that forms the full log-posterior currents, and
//! a single fabric-level WTA resolves the winner over the merged rows. This
//! module extends [`SensingChain`] with that read path:
//!
//! * [`TileGeometry`] describes one tile's occupied geometry and how many of
//!   its bitlines a given read activates;
//! * [`SensingChain::fabric_delay`] prices the parallel tile settling, the
//!   partial-sum merge and the fabric WTA;
//! * [`SensingChain::fabric_energy`] sums the per-tile driver energies (each
//!   tile row re-drives its activated bitlines — the intrinsic overhead of
//!   row sharding) on top of conduction, mirror and WTA energy;
//! * [`SensingChain::sense_fabric_into`] is the allocation-free composed
//!   read, the tiled counterpart of [`SensingChain::sense_into`].
//!
//! The decision path is identical to the monolithic one — the same mirror
//! copies and the same WTA resolve over the merged currents — so a fabric
//! whose merged currents are bit-identical to a monolithic array's produces
//! bit-identical winners; only delay and energy reflect the tiling.

use serde::{Deserialize, Serialize};

use crate::delay::DelayBreakdown;
use crate::energy::InferenceEnergy;
use crate::errors::{CircuitError, Result};
use crate::sense::{SenseReadout, SensingChain};

/// Occupied geometry of one fabric tile during a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGeometry {
    /// Occupied wordlines of the tile.
    pub rows: usize,
    /// Occupied bitlines of the tile.
    pub columns: usize,
    /// Bitlines of this tile driven during the read (0 when no activated
    /// column falls into the tile's column range).
    pub activated_columns: usize,
}

/// Fabric-level cost of one online recalibration pass.
///
/// The crossbar layer reports what a pass *did* (pulses applied, write
/// energy spent); this type prices what it *cost the fabric*: how long the
/// reprogrammed tiles were unavailable for reads, how many inferences that
/// stall displaced, and — amortized over the reads served between passes —
/// the fractional throughput and energy overhead of keeping the array
/// calibrated. A scheduler tunes its check interval by holding these two
/// fractions below budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecalibrationOverhead {
    /// Wall-clock time the pass occupied the write path, in seconds.
    pub stall_time: f64,
    /// Number of reads the stall displaced (`stall_time / read delay`).
    pub reads_displaced: f64,
    /// Fractional throughput loss when one such pass runs every
    /// `reads_per_interval` reads.
    pub throughput_overhead: f64,
    /// Fractional energy overhead per served read over the same interval.
    pub energy_overhead: f64,
}

impl RecalibrationOverhead {
    /// Prices a recalibration pass against a representative read.
    ///
    /// `pulses_applied` and `refresh_energy` come from the crossbar's
    /// refresh report; `pulse_duration` is the programming pulse width;
    /// `read` and `read_energy` describe one inference on the same fabric;
    /// `reads_per_interval` is how many reads are served between passes.
    ///
    /// A pass that applied no pulses prices to exactly zero overhead.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for a non-positive or
    /// non-finite pulse duration, a negative or non-finite refresh energy,
    /// a non-positive read delay or read energy, or a zero interval.
    pub fn price(
        pulses_applied: u64,
        refresh_energy: f64,
        pulse_duration: f64,
        read: &DelayBreakdown,
        read_energy: &InferenceEnergy,
        reads_per_interval: u64,
    ) -> Result<Self> {
        if !pulse_duration.is_finite() || pulse_duration <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                name: "pulse_duration",
                reason: format!("must be positive and finite, got {pulse_duration}"),
            });
        }
        if !refresh_energy.is_finite() || refresh_energy < 0.0 {
            return Err(CircuitError::InvalidParameter {
                name: "refresh_energy",
                reason: format!("must be non-negative and finite, got {refresh_energy}"),
            });
        }
        let read_delay = read.total();
        if !read_delay.is_finite() || read_delay <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                name: "read_delay",
                reason: format!("must be positive and finite, got {read_delay}"),
            });
        }
        let per_read_energy = read_energy.total();
        if !per_read_energy.is_finite() || per_read_energy <= 0.0 {
            return Err(CircuitError::InvalidParameter {
                name: "read_energy",
                reason: format!("must be positive and finite, got {per_read_energy}"),
            });
        }
        if reads_per_interval == 0 {
            return Err(CircuitError::InvalidParameter {
                name: "reads_per_interval",
                reason: "amortization interval must cover at least one read".to_string(),
            });
        }
        let stall_time = pulses_applied as f64 * pulse_duration;
        let reads_displaced = stall_time / read_delay;
        let interval = reads_per_interval as f64;
        Ok(Self {
            stall_time,
            reads_displaced,
            throughput_overhead: reads_displaced / interval,
            energy_overhead: refresh_energy / (interval * per_read_energy),
        })
    }
}

fn validate_tiles(tiles: &[TileGeometry], col_tiles: usize) -> Result<()> {
    if tiles.is_empty() {
        return Err(CircuitError::EmptyInput);
    }
    if col_tiles == 0 || !tiles.len().is_multiple_of(col_tiles) {
        return Err(CircuitError::InvalidParameter {
            name: "col_tiles",
            reason: format!(
                "{col_tiles} tile columns cannot partition {} tiles",
                tiles.len()
            ),
        });
    }
    for (index, tile) in tiles.iter().enumerate() {
        if tile.rows == 0 || tile.columns == 0 {
            return Err(CircuitError::InvalidParameter {
                name: "tile_geometry",
                reason: format!(
                    "tile {index} has zero occupied geometry ({}x{})",
                    tile.rows, tile.columns
                ),
            });
        }
        if tile.activated_columns > tile.columns {
            return Err(CircuitError::InvalidParameter {
                name: "tile_geometry",
                reason: format!(
                    "tile {index} activates {} of {} bitlines",
                    tile.activated_columns, tile.columns
                ),
            });
        }
    }
    Ok(())
}

impl SensingChain {
    /// Worst-case delay of one tiled read.
    ///
    /// All tiles settle in parallel, so the array component is the maximum
    /// per-tile settling time; the partial-sum merge bus adds one per-column
    /// load per tile column it collects; the fabric WTA then resolves over
    /// the merged rows with the calibrated worst-case current gap.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyInput`] for an empty tile list,
    /// [`CircuitError::InvalidParameter`] for inconsistent grid dimensions or
    /// degenerate tiles, and propagates delay-model errors.
    pub fn fabric_delay(
        &self,
        tiles: &[TileGeometry],
        col_tiles: usize,
        merged_rows: usize,
    ) -> Result<DelayBreakdown> {
        validate_tiles(tiles, col_tiles)?;
        let params = self.delay_model().params();
        let slowest_tile = tiles
            .iter()
            .map(|tile| params.array_base + params.per_column * tile.columns as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        let merge = params.per_column * col_tiles as f64;
        let sensing = self.wta().settling_time(
            merged_rows.max(1),
            params.worst_case_gap * self.mirror().gain,
        );
        Ok(DelayBreakdown {
            array: slowest_tile + merge,
            sensing,
        })
    }

    /// Energy of one tiled read.
    ///
    /// Driver energy accumulates per tile — each tile row re-drives the
    /// activated bitlines that fall into its column range, the intrinsic
    /// cost of row sharding — while conduction and mirror energy are priced
    /// on the merged currents (both are linear in current, so the per-tile
    /// partial sums and the merged totals are interchangeable) and the WTA
    /// burns its bias branches over the merged rows.
    ///
    /// `mirrored_currents` must be `mirror().copy_all` of `merged_currents`.
    ///
    /// # Errors
    ///
    /// Returns the tile-validation errors of
    /// [`SensingChain::fabric_delay`] plus [`CircuitError::EmptyInput`] /
    /// [`CircuitError::InvalidCurrent`] for bad merged currents.
    pub fn fabric_energy(
        &self,
        merged_currents: &[f64],
        mirrored_currents: &[f64],
        tiles: &[TileGeometry],
        col_tiles: usize,
        duration: f64,
    ) -> Result<InferenceEnergy> {
        validate_tiles(tiles, col_tiles)?;
        if merged_currents.is_empty() {
            return Err(CircuitError::EmptyInput);
        }
        for (index, &value) in merged_currents.iter().enumerate() {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidCurrent { index, value });
            }
        }
        let duration = duration.max(0.0);
        let energy_params = self.energy_model().params();
        let drivers: f64 = tiles
            .iter()
            .map(|tile| {
                tile.activated_columns as f64 * energy_params.bitline_driver_energy
                    + tile.rows as f64 * energy_params.wordline_driver_energy
            })
            .sum();
        let total_current: f64 = merged_currents.iter().sum();
        let conduction = total_current * energy_params.read_drain_bias * duration;
        let mirror_energy: f64 = merged_currents
            .iter()
            .map(|&current| self.mirror().energy(current, duration))
            .sum();
        let wta_energy = self.wta().energy(mirrored_currents, duration);
        Ok(InferenceEnergy {
            array: drivers + conduction,
            sensing: mirror_energy + wta_energy,
        })
    }

    /// Senses one tiled read without allocating: mirrors the merged
    /// wordline currents into `mirrored_scratch` (cleared first), resolves
    /// the fabric WTA and prices the tiled delay and energy.
    ///
    /// The winner decision is computed exactly as in
    /// [`SensingChain::sense_into`] — same mirror, same WTA, same inputs —
    /// so tiling never changes a prediction, only its telemetry.
    ///
    /// # Errors
    ///
    /// Propagates mirror, WTA (including
    /// [`CircuitError::AmbiguousWinner`] for exact ties), delay and energy
    /// errors.
    pub fn sense_fabric_into(
        &self,
        merged_currents: &[f64],
        tiles: &[TileGeometry],
        col_tiles: usize,
        mirrored_scratch: &mut Vec<f64>,
    ) -> Result<SenseReadout> {
        self.mirror()
            .copy_all_into(merged_currents, mirrored_scratch)?;
        let decision = self.wta().resolve(mirrored_scratch)?;
        let delay = self.fabric_delay(tiles, col_tiles, merged_currents.len())?;
        let energy = self.fabric_energy(
            merged_currents,
            mirrored_scratch,
            tiles,
            col_tiles,
            delay.total(),
        )?;
        Ok(SenseReadout {
            winner: decision.winner,
            decision,
            delay,
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SensingChain {
        SensingChain::febim_calibrated()
    }

    fn grid_2x2() -> Vec<TileGeometry> {
        vec![
            TileGeometry {
                rows: 2,
                columns: 9,
                activated_columns: 3,
            },
            TileGeometry {
                rows: 2,
                columns: 7,
                activated_columns: 1,
            },
            TileGeometry {
                rows: 1,
                columns: 9,
                activated_columns: 3,
            },
            TileGeometry {
                rows: 1,
                columns: 7,
                activated_columns: 1,
            },
        ]
    }

    #[test]
    fn tile_validation_rejects_degenerate_grids() {
        let chain = chain();
        assert!(matches!(
            chain.fabric_delay(&[], 1, 3),
            Err(CircuitError::EmptyInput)
        ));
        assert!(chain.fabric_delay(&grid_2x2(), 3, 3).is_err());
        assert!(chain.fabric_delay(&grid_2x2(), 0, 3).is_err());
        let mut zero = grid_2x2();
        zero[1].rows = 0;
        assert!(chain.fabric_delay(&zero, 2, 3).is_err());
        let mut over = grid_2x2();
        over[0].activated_columns = 99;
        assert!(chain.fabric_delay(&over, 2, 3).is_err());
    }

    #[test]
    fn fabric_delay_tracks_the_slowest_tile_not_the_sum() {
        let chain = chain();
        let tiled = chain.fabric_delay(&grid_2x2(), 2, 3).unwrap();
        // The widest tile has 9 columns; the monolithic equivalent has 16.
        let monolithic = chain
            .delay_model()
            .worst_case(3, 16, chain.wta(), chain.mirror().gain)
            .unwrap();
        assert!(tiled.array < monolithic.array);
        assert_eq!(tiled.sensing, monolithic.sensing);
        assert!(tiled.total() > 0.0);
    }

    #[test]
    fn fabric_energy_charges_every_tile_row_for_its_drivers() {
        let chain = chain();
        let merged = [1.0e-6, 1.4e-6, 0.8e-6];
        let mirrored = chain.mirror().copy_all(&merged).unwrap();
        let tiles = grid_2x2();
        let energy = chain
            .fabric_energy(&merged, &mirrored, &tiles, 2, 500e-12)
            .unwrap();
        let params = chain.energy_model().params();
        let monolithic = chain
            .energy_model()
            .inference(&merged, 4, 500e-12, chain.mirror(), chain.wta())
            .unwrap();
        // The grid drives 3+1+3+1 = 8 bitlines across 2+2+1+1 = 6 tile rows;
        // the monolithic array drives 4 bitlines across 3 rows. Conduction is
        // identical, so the gap is exactly the extra driver energy.
        let extra_drivers =
            4.0 * params.bitline_driver_energy + 3.0 * params.wordline_driver_energy;
        assert!((energy.array - monolithic.array - extra_drivers).abs() < 1e-24);
        assert_eq!(energy.sensing, monolithic.sensing);
        assert!(energy.total() > 0.0);
    }

    #[test]
    fn sense_fabric_matches_monolithic_winner() {
        let chain = chain();
        let merged = [0.8e-6, 1.6e-6, 1.2e-6];
        let mut scratch = Vec::new();
        let fabric = chain
            .sense_fabric_into(&merged, &grid_2x2(), 2, &mut scratch)
            .unwrap();
        let monolithic = chain.sense(&merged, 4).unwrap();
        assert_eq!(fabric.winner, monolithic.winner);
        assert_eq!(scratch, monolithic.mirrored_currents);
        assert!(fabric.delay.total() > 0.0);
        assert!(fabric.energy.total() > 0.0);
    }

    #[test]
    fn exact_ties_still_surface_as_ambiguous() {
        let chain = chain();
        let mut scratch = Vec::new();
        assert!(matches!(
            chain.sense_fabric_into(&[1e-6, 1e-6], &grid_2x2(), 2, &mut scratch),
            Err(CircuitError::AmbiguousWinner { .. })
        ));
    }

    #[test]
    fn recalibration_overhead_amortizes_over_the_interval() {
        let chain = chain();
        let merged = [1.0e-6, 1.4e-6, 0.8e-6];
        let mut scratch = Vec::new();
        let readout = chain
            .sense_fabric_into(&merged, &grid_2x2(), 2, &mut scratch)
            .unwrap();
        let overhead = RecalibrationOverhead::price(
            64,
            2.4e-9,
            100e-9,
            &readout.delay,
            &readout.energy,
            10_000,
        )
        .unwrap();
        assert!((overhead.stall_time - 64.0 * 100e-9).abs() < 1e-18);
        assert!(overhead.reads_displaced > 0.0);
        assert!(overhead.throughput_overhead > 0.0);
        assert!(overhead.energy_overhead > 0.0);
        // Doubling the interval halves both amortized fractions.
        let relaxed = RecalibrationOverhead::price(
            64,
            2.4e-9,
            100e-9,
            &readout.delay,
            &readout.energy,
            20_000,
        )
        .unwrap();
        assert!((relaxed.throughput_overhead - overhead.throughput_overhead / 2.0).abs() < 1e-15);
        assert!((relaxed.energy_overhead - overhead.energy_overhead / 2.0).abs() < 1e-15);
        // The stall itself is interval-independent.
        assert_eq!(relaxed.stall_time, overhead.stall_time);
        assert_eq!(relaxed.reads_displaced, overhead.reads_displaced);
    }

    #[test]
    fn zero_pulse_pass_prices_to_zero_overhead() {
        let chain = chain();
        let merged = [1.0e-6, 1.4e-6];
        let readout = chain.sense(&merged, 4).unwrap();
        let overhead =
            RecalibrationOverhead::price(0, 0.0, 100e-9, &readout.delay, &readout.energy, 100)
                .unwrap();
        assert_eq!(overhead.stall_time, 0.0);
        assert_eq!(overhead.reads_displaced, 0.0);
        assert_eq!(overhead.throughput_overhead, 0.0);
        assert_eq!(overhead.energy_overhead, 0.0);
    }

    #[test]
    fn recalibration_overhead_rejects_degenerate_inputs() {
        let delay = DelayBreakdown {
            array: 1e-9,
            sensing: 1e-9,
        };
        let energy = InferenceEnergy {
            array: 1e-12,
            sensing: 1e-12,
        };
        assert!(RecalibrationOverhead::price(1, 1e-12, 0.0, &delay, &energy, 10).is_err());
        assert!(RecalibrationOverhead::price(1, -1.0, 1e-9, &delay, &energy, 10).is_err());
        assert!(RecalibrationOverhead::price(1, 1e-12, 1e-9, &delay, &energy, 0).is_err());
        let zero_delay = DelayBreakdown {
            array: 0.0,
            sensing: 0.0,
        };
        assert!(RecalibrationOverhead::price(1, 1e-12, 1e-9, &zero_delay, &energy, 10).is_err());
        let zero_energy = InferenceEnergy {
            array: 0.0,
            sensing: 0.0,
        };
        assert!(RecalibrationOverhead::price(1, 1e-12, 1e-9, &delay, &zero_energy, 10).is_err());
    }

    #[test]
    fn invalid_merged_currents_rejected() {
        let chain = chain();
        let mirrored = [0.1e-6];
        assert!(chain
            .fabric_energy(&[], &mirrored, &grid_2x2(), 2, 1e-9)
            .is_err());
        assert!(chain
            .fabric_energy(&[f64::NAN], &mirrored, &grid_2x2(), 2, 1e-9)
            .is_err());
    }
}
