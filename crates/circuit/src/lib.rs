//! # febim-circuit
//!
//! Behavioural analog circuit substrate for the FeBiM reproduction. It plays
//! the role that SPECTRE plus the 45 nm PTM MOSFET models play in the paper:
//! turning wordline currents produced by the FeFET crossbar into a
//! winner-take-all (WTA) decision, and estimating the delay and energy of
//! that sensing operation.
//!
//! Components:
//!
//! * [`CurrentMirror`] — per-row current mirrors feeding the WTA;
//! * [`WtaCircuit`] — current-mode winner-take-all with settling dynamics
//!   (Fig. 5(c));
//! * [`DelayModel`] / [`EnergyModel`] — calibrated inference delay and energy
//!   estimates as a function of array geometry (Fig. 6);
//! * [`SensingChain`] — the composed sensing module;
//! * [`transient`] — a small fixed-step transient solver used for the WTA
//!   waveforms.
//!
//! # Example
//!
//! ```
//! use febim_circuit::SensingChain;
//!
//! # fn main() -> Result<(), febim_circuit::CircuitError> {
//! let chain = SensingChain::febim_calibrated();
//! // Three wordlines carrying accumulated posterior currents.
//! let outcome = chain.sense(&[0.9e-6, 1.4e-6, 0.6e-6], 5)?;
//! assert_eq!(outcome.winner, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod delay;
pub mod energy;
pub mod errors;
pub mod fabric;
pub mod mirror;
pub mod sense;
pub mod shift_add;
pub mod transient;
pub mod wta;

pub use batch::{fabric_wordline_driver_energy, wordline_driver_energy, ReadGroup};
pub use delay::{DelayBreakdown, DelayModel, DelayParams};
pub use energy::{EnergyModel, EnergyParams, InferenceEnergy};
pub use errors::{CircuitError, Result};
pub use fabric::{RecalibrationOverhead, TileGeometry};
pub use mirror::CurrentMirror;
pub use sense::{SenseMargin, SenseOutcome, SenseReadout, SensingChain};
pub use shift_add::merge_plane_sums_into;
pub use transient::{first_order_settling, integrate, TransientConfig, Waveform, WaveformPoint};
pub use wta::{WtaCircuit, WtaDecision, WtaParams, WtaTransient};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn current_vector() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(1e-8f64..5e-6, 2..16)
    }

    proptest! {
        /// The WTA always picks the index of the maximum input current
        /// whenever that maximum is unique.
        #[test]
        fn wta_picks_argmax(currents in current_vector()) {
            let wta = WtaCircuit::febim_calibrated();
            let expected = currents
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            match wta.resolve(&currents) {
                Ok(decision) => prop_assert_eq!(decision.winner, expected),
                Err(CircuitError::AmbiguousWinner { .. }) => {
                    // Exact float ties are legitimately ambiguous.
                }
                Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
            }
        }

        /// Mirroring preserves the ordering of currents.
        #[test]
        fn mirror_preserves_order(currents in current_vector()) {
            let mirror = CurrentMirror::febim_sensing();
            let mirrored = mirror.copy_all(&currents).unwrap();
            for i in 0..currents.len() {
                for j in 0..currents.len() {
                    if currents[i] < currents[j] {
                        prop_assert!(mirrored[i] < mirrored[j]);
                    }
                }
            }
        }

        /// Delay and energy are finite and positive for any sane geometry.
        #[test]
        fn delay_and_energy_are_finite(rows in 1usize..64, cols in 1usize..512) {
            let chain = SensingChain::febim_calibrated();
            let currents: Vec<f64> = (0..rows).map(|r| 0.1e-6 * (r + 1) as f64).collect();
            let outcome = chain.sense(&currents, cols).unwrap();
            prop_assert!(outcome.delay.total().is_finite() && outcome.delay.total() > 0.0);
            prop_assert!(outcome.energy.total().is_finite() && outcome.energy.total() > 0.0);
        }

        /// WTA settling time decreases (weakly) as the margin grows.
        #[test]
        fn settling_monotone_in_margin(margin_a in 1e-9f64..1e-6, margin_b in 1e-9f64..1e-6) {
            let wta = WtaCircuit::febim_calibrated();
            let (small, large) = if margin_a < margin_b {
                (margin_a, margin_b)
            } else {
                (margin_b, margin_a)
            };
            prop_assert!(wta.settling_time(4, large) <= wta.settling_time(4, small));
        }
    }
}
