//! Current-mode winner-take-all (WTA) sensing circuit.
//!
//! FeBiM detects the wordline with the maximum accumulated current — i.e. the
//! event with the maximum posterior — with a compact, scalable current-mode
//! WTA (the paper adopts the design of Liu et al., ICCAD 2022). We model the
//! competition behaviourally: the output branch of the cell with the largest
//! input current charges towards the bias current while all other branches
//! collapse to (near) zero, with a settling time set by the load capacitance,
//! the output swing and the gap between the two largest input currents.

use serde::{Deserialize, Serialize};

use crate::errors::{CircuitError, Result};
use crate::transient::{first_order_settling, TransientConfig, Waveform};

/// Parameters of the behavioural WTA model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WtaParams {
    /// Output bias current delivered by the winning branch, in amperes
    /// (Fig. 5(c) shows winner output currents of a few µA).
    pub bias_current: f64,
    /// Fixed part of the competition node capacitance, in farads.
    pub base_capacitance: f64,
    /// Additional competition node capacitance per connected row, in farads.
    pub capacitance_per_row: f64,
    /// Output voltage swing that must be charged before the decision is
    /// resolved, in volts.
    pub output_swing: f64,
    /// Supply voltage of the WTA cells, in volts.
    pub supply: f64,
    /// Fraction of the full output swing at which the decision is considered
    /// resolved (e.g. 0.9 for 90 %).
    pub decision_threshold: f64,
}

impl WtaParams {
    /// Parameter set calibrated so that a two-row WTA with a worst-case
    /// 0.1 µA input gap resolves in roughly 200–300 ps (Fig. 5(c)) and the
    /// sensing delay grows to roughly 1 ns at 32 rows (Fig. 6(c)).
    pub fn febim_calibrated() -> Self {
        Self {
            bias_current: 2.0e-6,
            base_capacitance: 0.63e-18,
            capacitance_per_row: 0.486e-18,
            output_swing: 0.5,
            supply: 1.0,
            decision_threshold: 0.9,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if any field is outside its
    /// meaningful range.
    pub fn validate(&self) -> Result<()> {
        let positive: [(&'static str, f64); 5] = [
            ("bias_current", self.bias_current),
            ("base_capacitance", self.base_capacitance),
            ("capacitance_per_row", self.capacitance_per_row),
            ("output_swing", self.output_swing),
            ("supply", self.supply),
        ];
        for (name, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidParameter {
                    name,
                    reason: format!("must be positive and finite, got {value}"),
                });
            }
        }
        if !(0.0 < self.decision_threshold && self.decision_threshold < 1.0) {
            return Err(CircuitError::InvalidParameter {
                name: "decision_threshold",
                reason: "must lie strictly between 0 and 1".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for WtaParams {
    fn default() -> Self {
        Self::febim_calibrated()
    }
}

/// Result of one WTA competition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WtaDecision {
    /// Index of the winning input (the wordline with the maximum current).
    pub winner: usize,
    /// Gap between the winner and the runner-up input currents, in amperes.
    pub margin: f64,
    /// Time for the winner output to cross the decision threshold, in seconds.
    pub settling_time: f64,
    /// Energy dissipated by the WTA cells during the competition, in joules.
    pub energy: f64,
}

/// Transient waveforms of one WTA competition (Fig. 5(c)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WtaTransient {
    /// The decision summary.
    pub decision: WtaDecision,
    /// Output-current waveform of each branch, indexed like the inputs.
    pub outputs: Vec<Waveform>,
}

/// Behavioural winner-take-all circuit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WtaCircuit {
    params: WtaParams,
}

impl WtaCircuit {
    /// Creates a WTA circuit after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`WtaParams::validate`] failures.
    pub fn new(params: WtaParams) -> Result<Self> {
        params.validate()?;
        Ok(Self { params })
    }

    /// WTA circuit with the FeBiM calibration.
    pub fn febim_calibrated() -> Self {
        Self {
            params: WtaParams::febim_calibrated(),
        }
    }

    /// Borrow the model parameters.
    pub fn params(&self) -> &WtaParams {
        &self.params
    }

    fn validate_inputs(inputs: &[f64]) -> Result<()> {
        if inputs.is_empty() {
            return Err(CircuitError::EmptyInput);
        }
        for (index, &value) in inputs.iter().enumerate() {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidCurrent { index, value });
            }
        }
        Ok(())
    }

    fn winner_and_margin(inputs: &[f64]) -> Result<(usize, f64)> {
        let mut winner = 0usize;
        for (index, &value) in inputs.iter().enumerate() {
            if value > inputs[winner] {
                winner = index;
            }
        }
        let ties: Vec<usize> = inputs
            .iter()
            .enumerate()
            .filter(|(index, &value)| *index != winner && value == inputs[winner])
            .map(|(index, _)| index)
            .collect();
        if !ties.is_empty() {
            let mut indices = vec![winner];
            indices.extend(ties);
            return Err(CircuitError::AmbiguousWinner { indices });
        }
        let margin = if inputs.len() == 1 {
            inputs[winner]
        } else {
            let runner_up = inputs
                .iter()
                .enumerate()
                .filter(|(index, _)| *index != winner)
                .map(|(_, &value)| value)
                .fold(f64::NEG_INFINITY, f64::max);
            inputs[winner] - runner_up
        };
        Ok((winner, margin))
    }

    /// Capacitance loading the competition node for `rows` connected branches,
    /// in farads.
    pub fn load_capacitance(&self, rows: usize) -> f64 {
        self.params.base_capacitance + self.params.capacitance_per_row * rows as f64
    }

    /// Settling time (seconds) for a competition between `rows` branches whose
    /// two largest input currents differ by `margin` amperes.
    ///
    /// The winning branch must slew the competition node by the output swing
    /// using only the current margin, so the delay scales as `C · ΔV / ΔI`.
    pub fn settling_time(&self, rows: usize, margin: f64) -> f64 {
        let margin = margin.max(1e-12);
        self.load_capacitance(rows) * self.params.output_swing / margin
    }

    /// Resolves a competition and returns the decision summary.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyInput`] for an empty input vector,
    /// [`CircuitError::InvalidCurrent`] for negative or non-finite inputs and
    /// [`CircuitError::AmbiguousWinner`] when the maximum is not unique.
    pub fn resolve(&self, inputs: &[f64]) -> Result<WtaDecision> {
        Self::validate_inputs(inputs)?;
        let (winner, margin) = Self::winner_and_margin(inputs)?;
        let settling_time = self.settling_time(inputs.len(), margin);
        let energy = self.energy(inputs, settling_time);
        Ok(WtaDecision {
            winner,
            margin,
            settling_time,
            energy,
        })
    }

    /// Energy dissipated by the WTA cells while resolving for `duration`
    /// seconds, in joules.
    ///
    /// Every competing cell burns its bias branch from the supply for the
    /// whole resolution window; the input currents themselves are charged to
    /// the current mirrors feeding the WTA, not double counted here.
    pub fn energy(&self, inputs: &[f64], duration: f64) -> f64 {
        inputs.len() as f64 * self.params.bias_current * self.params.supply * duration.max(0.0)
    }

    /// Simulates the output-current transients of one competition
    /// (the data behind Fig. 5(c)).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`WtaCircuit::resolve`], plus configuration
    /// errors from the transient solver.
    pub fn transient(&self, inputs: &[f64], config: &TransientConfig) -> Result<WtaTransient> {
        let decision = self.resolve(inputs)?;
        let tau = self.settling_time(inputs.len(), decision.margin)
            / (-(1.0 - self.params.decision_threshold).ln());
        let mut outputs = Vec::with_capacity(inputs.len());
        for index in 0..inputs.len() {
            let target = if index == decision.winner {
                self.params.bias_current
            } else {
                0.0
            };
            // Every branch starts from an equal share of the bias current and
            // either wins it all or collapses to zero.
            let initial = self.params.bias_current / inputs.len() as f64;
            outputs.push(first_order_settling(initial, target, tau, config)?);
        }
        Ok(WtaTransient { decision, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wta() -> WtaCircuit {
        WtaCircuit::febim_calibrated()
    }

    #[test]
    fn default_params_validate() {
        WtaParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let p = WtaParams {
            bias_current: -1.0,
            ..WtaParams::default()
        };
        assert!(WtaCircuit::new(p).is_err());
        let p = WtaParams {
            decision_threshold: 1.5,
            ..WtaParams::default()
        };
        assert!(WtaCircuit::new(p).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(matches!(wta().resolve(&[]), Err(CircuitError::EmptyInput)));
    }

    #[test]
    fn negative_input_rejected() {
        assert!(matches!(
            wta().resolve(&[1e-6, -1e-6]),
            Err(CircuitError::InvalidCurrent { index: 1, .. })
        ));
    }

    #[test]
    fn exact_tie_is_ambiguous() {
        let err = wta().resolve(&[1e-6, 1e-6, 0.5e-6]).unwrap_err();
        assert!(matches!(err, CircuitError::AmbiguousWinner { .. }));
    }

    #[test]
    fn picks_the_largest_current() {
        let decision = wta().resolve(&[0.4e-6, 1.2e-6, 0.9e-6]).unwrap();
        assert_eq!(decision.winner, 1);
        assert!((decision.margin - 0.3e-6).abs() < 1e-12);
    }

    #[test]
    fn single_input_wins_trivially() {
        let decision = wta().resolve(&[0.7e-6]).unwrap();
        assert_eq!(decision.winner, 0);
    }

    #[test]
    fn smaller_margin_takes_longer() {
        let circuit = wta();
        let tight = circuit.resolve(&[1.0e-6, 0.95e-6]).unwrap();
        let loose = circuit.resolve(&[1.0e-6, 0.2e-6]).unwrap();
        assert!(tight.settling_time > loose.settling_time);
    }

    #[test]
    fn two_row_worst_case_resolves_within_300ps() {
        // Fig. 5(c): winner and loser are clearly distinguishable in < 300 ps
        // for wordline currents between 0.2 µA and 2.0 µA. The worst case in
        // that experiment is a 0.1x-mirrored gap of one quantization level.
        let circuit = wta();
        let decision = circuit.resolve(&[0.2e-6 * 0.1, 0.3e-6 * 0.1]).unwrap();
        assert!(
            decision.settling_time < 300e-12,
            "settling {}",
            decision.settling_time
        );
    }

    #[test]
    fn settling_time_grows_with_rows() {
        let circuit = wta();
        let few = circuit.settling_time(2, 0.1e-6);
        let many = circuit.settling_time(32, 0.1e-6);
        assert!(many > few);
    }

    #[test]
    fn energy_scales_with_duration_and_cell_count() {
        let circuit = wta();
        let short = circuit.energy(&[1e-6, 2e-6], 100e-12);
        let long = circuit.energy(&[1e-6, 2e-6], 200e-12);
        assert!((long - 2.0 * short).abs() < 1e-20);
        let more_cells = circuit.energy(&[1e-6, 2e-6, 3e-6, 4e-6], 100e-12);
        assert!((more_cells - 2.0 * short).abs() < 1e-20);
        assert_eq!(circuit.energy(&[1e-6], -1.0), 0.0);
    }

    #[test]
    fn transient_winner_rises_and_loser_falls() {
        let circuit = wta();
        let result = circuit
            .transient(&[1.5e-6, 0.5e-6], &TransientConfig::febim_wta())
            .unwrap();
        assert_eq!(result.decision.winner, 0);
        let winner_final = result.outputs[0].final_value().unwrap();
        let loser_final = result.outputs[1].final_value().unwrap();
        assert!(winner_final > 0.8 * circuit.params().bias_current);
        assert!(loser_final < 0.2 * circuit.params().bias_current);
    }

    #[test]
    fn transient_decision_matches_resolve() {
        let circuit = wta();
        let inputs = [0.9e-6, 1.1e-6, 0.3e-6];
        let resolve = circuit.resolve(&inputs).unwrap();
        let transient = circuit
            .transient(&inputs, &TransientConfig::febim_wta())
            .unwrap();
        assert_eq!(resolve.winner, transient.decision.winner);
        assert_eq!(transient.outputs.len(), inputs.len());
    }
}
