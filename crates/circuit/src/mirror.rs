//! Behavioural current mirror used to feed the wordline currents into the
//! winner-take-all sensing stage.

use serde::{Deserialize, Serialize};

use crate::errors::{CircuitError, Result};

/// A current mirror with a nominal gain and an optional systematic gain error.
///
/// The FeBiM sensing module copies (and in our calibration attenuates) every
/// wordline current `I_WL` into a WTA input current `I_CM`. Attenuation keeps
/// the sensing power low when many bitlines are activated simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurrentMirror {
    /// Nominal current gain `I_out / I_in` (dimensionless, > 0).
    pub gain: f64,
    /// Relative systematic gain error (e.g. `0.01` for +1 %).
    pub gain_error: f64,
    /// Voltage headroom across the mirror output branch, in volts.
    pub headroom: f64,
}

impl CurrentMirror {
    /// Creates a mirror with the given gain, no gain error and 1 V headroom.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] if the gain is not positive
    /// and finite.
    pub fn new(gain: f64) -> Result<Self> {
        if !(gain > 0.0 && gain.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                name: "gain",
                reason: format!("gain must be positive and finite, got {gain}"),
            });
        }
        Ok(Self {
            gain,
            gain_error: 0.0,
            headroom: 1.0,
        })
    }

    /// The attenuating 0.1× mirror used in the FeBiM sensing-module calibration.
    pub fn febim_sensing() -> Self {
        Self {
            gain: 0.1,
            gain_error: 0.0,
            headroom: 1.0,
        }
    }

    /// Returns a copy with the given relative systematic gain error.
    pub fn with_gain_error(mut self, gain_error: f64) -> Self {
        self.gain_error = gain_error;
        self
    }

    /// Returns a copy with the given output-branch voltage headroom (volts).
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom;
        self
    }

    /// Mirrors one input current (amperes) to the output branch.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidCurrent`] for negative or non-finite
    /// input currents.
    pub fn copy(&self, input: f64) -> Result<f64> {
        if !(input >= 0.0 && input.is_finite()) {
            return Err(CircuitError::InvalidCurrent {
                index: 0,
                value: input,
            });
        }
        Ok(input * self.gain * (1.0 + self.gain_error))
    }

    /// Mirrors a whole vector of wordline currents.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidCurrent`] identifying the first
    /// offending entry.
    pub fn copy_all(&self, inputs: &[f64]) -> Result<Vec<f64>> {
        let mut outputs = Vec::with_capacity(inputs.len());
        self.copy_all_into(inputs, &mut outputs)?;
        Ok(outputs)
    }

    /// Mirrors a whole vector of wordline currents into `out` (cleared
    /// first), reusing the caller's allocation. On error the contents of
    /// `out` are unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidCurrent`] identifying the first
    /// offending entry.
    pub fn copy_all_into(&self, inputs: &[f64], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.reserve(inputs.len());
        for (index, &input) in inputs.iter().enumerate() {
            let mirrored = self.copy(input).map_err(|_| CircuitError::InvalidCurrent {
                index,
                value: input,
            })?;
            out.push(mirrored);
        }
        Ok(())
    }

    /// Static power dissipated by the mirror output branch while conducting
    /// `input` amperes at the input, in watts.
    ///
    /// Only the output branch is charged to the mirror headroom; the
    /// diode-connected input branch is accounted for in the array conduction
    /// energy of the wordline it loads.
    pub fn power(&self, input: f64) -> f64 {
        input.max(0.0) * self.gain * (1.0 + self.gain_error) * self.headroom
    }

    /// Energy dissipated over `duration` seconds while conducting `input`
    /// amperes, in joules.
    pub fn energy(&self, input: f64, duration: f64) -> f64 {
        self.power(input) * duration.max(0.0)
    }
}

impl Default for CurrentMirror {
    fn default() -> Self {
        Self::febim_sensing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_mirror_copies_exactly() {
        let mirror = CurrentMirror::new(1.0).unwrap();
        assert!((mirror.copy(2.5e-6).unwrap() - 2.5e-6).abs() < 1e-18);
    }

    #[test]
    fn default_mirror_attenuates_by_ten() {
        let mirror = CurrentMirror::default();
        assert!((mirror.copy(1.0e-6).unwrap() - 0.1e-6).abs() < 1e-15);
    }

    #[test]
    fn invalid_gain_rejected() {
        assert!(CurrentMirror::new(0.0).is_err());
        assert!(CurrentMirror::new(-1.0).is_err());
        assert!(CurrentMirror::new(f64::NAN).is_err());
    }

    #[test]
    fn gain_error_applies() {
        let mirror = CurrentMirror::new(1.0).unwrap().with_gain_error(0.05);
        assert!((mirror.copy(1.0e-6).unwrap() - 1.05e-6).abs() < 1e-15);
    }

    #[test]
    fn negative_current_rejected() {
        let mirror = CurrentMirror::default();
        assert!(matches!(
            mirror.copy(-1.0e-6),
            Err(CircuitError::InvalidCurrent { .. })
        ));
    }

    #[test]
    fn copy_all_reports_offending_index() {
        let mirror = CurrentMirror::default();
        let err = mirror.copy_all(&[1e-6, 2e-6, f64::NAN]).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidCurrent { index: 2, .. }));
    }

    #[test]
    fn copy_all_preserves_order() {
        let mirror = CurrentMirror::new(2.0).unwrap();
        let out = mirror.copy_all(&[1e-6, 3e-6]).unwrap();
        assert!((out[0] - 2e-6).abs() < 1e-15);
        assert!((out[1] - 6e-6).abs() < 1e-15);
    }

    #[test]
    fn power_and_energy_scale_with_current_and_time() {
        let mirror = CurrentMirror::new(1.0).unwrap().with_headroom(0.5);
        let p = mirror.power(2.0e-6);
        assert!((p - 2.0e-6 * 0.5).abs() < 1e-15);
        let e = mirror.energy(2.0e-6, 1e-9);
        assert!((e - p * 1e-9).abs() < 1e-24);
        assert_eq!(mirror.energy(2.0e-6, -1.0), 0.0);
    }
}
