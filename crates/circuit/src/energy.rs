//! Inference-energy model of the FeBiM crossbar plus sensing module.
//!
//! The paper splits the inference energy into the array part (wordline and
//! bitline drivers plus the conduction of the activated cells) and the
//! sensing part (current mirrors and the WTA circuit), see Fig. 6(b)/(d).

use serde::{Deserialize, Serialize};

use crate::errors::{CircuitError, Result};
use crate::mirror::CurrentMirror;
use crate::wta::WtaCircuit;

/// Parameters of the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Switching energy of one activated bitline driver, in joules.
    pub bitline_driver_energy: f64,
    /// Switching energy of one wordline driver, in joules.
    pub wordline_driver_energy: f64,
    /// Drain bias seen by the conducting cells during a read, in volts.
    pub read_drain_bias: f64,
    /// Energy of one multi-level sensing refinement step, in joules: one
    /// SAR/ladder comparison resolving the next stored bit of a multi-bit
    /// cell during a packed read. One-hot reads never pay it.
    #[serde(default)]
    pub level_refine_energy: f64,
}

impl EnergyParams {
    /// Calibration reproducing the tens-of-femtojoule array energies and the
    /// row-dominated sensing energies of Fig. 6(b)/(d).
    pub fn febim_calibrated() -> Self {
        Self {
            bitline_driver_energy: 0.08e-15,
            wordline_driver_energy: 0.05e-15,
            read_drain_bias: 0.1,
            // Half a bitline-driver switch per comparison: a sense-amp
            // strobe against one ladder reference.
            level_refine_energy: 0.04e-15,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for non-positive entries.
    pub fn validate(&self) -> Result<()> {
        let positive: [(&'static str, f64); 4] = [
            ("bitline_driver_energy", self.bitline_driver_energy),
            ("wordline_driver_energy", self.wordline_driver_energy),
            ("read_drain_bias", self.read_drain_bias),
            ("level_refine_energy", self.level_refine_energy),
        ];
        for (name, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidParameter {
                    name,
                    reason: format!("must be positive and finite, got {value}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::febim_calibrated()
    }
}

/// Breakdown of one inference-energy estimate, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InferenceEnergy {
    /// Bitline/wordline driver plus cell-conduction energy.
    pub array: f64,
    /// Current-mirror plus WTA energy.
    pub sensing: f64,
}

impl InferenceEnergy {
    /// Total inference energy in joules.
    pub fn total(&self) -> f64 {
        self.array + self.sensing
    }
}

/// Inference-energy model of the crossbar plus sensing module.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates an energy model after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`EnergyParams::validate`] failures.
    pub fn new(params: EnergyParams) -> Result<Self> {
        params.validate()?;
        Ok(Self { params })
    }

    /// Energy model with the FeBiM calibration.
    pub fn febim_calibrated() -> Self {
        Self {
            params: EnergyParams::febim_calibrated(),
        }
    }

    /// Borrow the model parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Energy of one inference.
    ///
    /// * `wordline_currents` — accumulated current per wordline, in amperes;
    /// * `activated_columns` — number of bitlines driven during the read;
    /// * `duration` — inference delay in seconds;
    /// * `mirror` / `wta` — the sensing stage models.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyInput`] when no wordline currents are
    /// given and [`CircuitError::InvalidCurrent`] for negative or non-finite
    /// currents.
    pub fn inference(
        &self,
        wordline_currents: &[f64],
        activated_columns: usize,
        duration: f64,
        mirror: &CurrentMirror,
        wta: &WtaCircuit,
    ) -> Result<InferenceEnergy> {
        let mirrored = mirror.copy_all(wordline_currents)?;
        self.inference_with_mirrored(
            wordline_currents,
            &mirrored,
            activated_columns,
            duration,
            mirror,
            wta,
        )
    }

    /// Energy of one inference when the mirrored currents have already been
    /// computed (the allocation-free path used by
    /// [`crate::SensingChain::sense_into`], which mirrors the currents once
    /// into a scratch buffer). `mirrored_currents` must be the output of
    /// `mirror.copy_all(wordline_currents)`.
    ///
    /// # Errors
    ///
    /// Same as [`EnergyModel::inference`].
    pub fn inference_with_mirrored(
        &self,
        wordline_currents: &[f64],
        mirrored_currents: &[f64],
        activated_columns: usize,
        duration: f64,
        mirror: &CurrentMirror,
        wta: &WtaCircuit,
    ) -> Result<InferenceEnergy> {
        if wordline_currents.is_empty() {
            return Err(CircuitError::EmptyInput);
        }
        for (index, &value) in wordline_currents.iter().enumerate() {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidCurrent { index, value });
            }
        }
        let duration = duration.max(0.0);
        let rows = wordline_currents.len() as f64;
        let total_current: f64 = wordline_currents.iter().sum();

        let drivers = activated_columns as f64 * self.params.bitline_driver_energy
            + rows * self.params.wordline_driver_energy;
        let conduction = total_current * self.params.read_drain_bias * duration;
        let array = drivers + conduction;

        let mirror_energy: f64 = wordline_currents
            .iter()
            .map(|&current| mirror.energy(current, duration))
            .sum();
        let wta_energy = wta.energy(mirrored_currents, duration);
        let sensing = mirror_energy + wta_energy;

        Ok(InferenceEnergy { array, sensing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EnergyModel, CurrentMirror, WtaCircuit) {
        (
            EnergyModel::febim_calibrated(),
            CurrentMirror::febim_sensing(),
            WtaCircuit::febim_calibrated(),
        )
    }

    #[test]
    fn default_params_validate() {
        EnergyParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let p = EnergyParams {
            read_drain_bias: 0.0,
            ..EnergyParams::default()
        };
        assert!(EnergyModel::new(p).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        let (model, mirror, wta) = setup();
        assert!(matches!(
            model.inference(&[], 4, 1e-9, &mirror, &wta),
            Err(CircuitError::EmptyInput)
        ));
    }

    #[test]
    fn negative_current_rejected() {
        let (model, mirror, wta) = setup();
        assert!(model
            .inference(&[1e-6, -1e-6], 4, 1e-9, &mirror, &wta)
            .is_err());
    }

    #[test]
    fn wide_shallow_array_is_array_dominated() {
        // Fig. 6(b): with only 2 rows the array (bitline-driver) energy
        // exceeds the sensing energy even at 256 columns.
        let (model, mirror, wta) = setup();
        let currents = vec![256.0 * 0.5e-6; 2];
        let energy = model
            .inference(&currents, 256, 800e-12, &mirror, &wta)
            .unwrap();
        assert!(energy.array > energy.sensing, "{energy:?}");
        assert!(
            energy.total() > 10e-15 && energy.total() < 200e-15,
            "{energy:?}"
        );
    }

    #[test]
    fn tall_array_is_sensing_dominated() {
        // Fig. 6(d): with 32 rows the per-row mirrors and WTA cells dominate.
        let (model, mirror, wta) = setup();
        let currents = vec![32.0 * 0.5e-6; 32];
        let energy = model
            .inference(&currents, 32, 1000e-12, &mirror, &wta)
            .unwrap();
        assert!(energy.sensing > energy.array, "{energy:?}");
        assert!(
            energy.total() > 50e-15 && energy.total() < 500e-15,
            "{energy:?}"
        );
    }

    #[test]
    fn energy_grows_with_columns() {
        let (model, mirror, wta) = setup();
        let mut previous = 0.0;
        for columns in [2usize, 8, 32, 128, 256] {
            let currents = vec![columns as f64 * 0.5e-6; 2];
            let total = model
                .inference(&currents, columns, 500e-12, &mirror, &wta)
                .unwrap()
                .total();
            assert!(total > previous);
            previous = total;
        }
    }

    #[test]
    fn energy_grows_with_rows() {
        let (model, mirror, wta) = setup();
        let mut previous = 0.0;
        for rows in [2usize, 4, 8, 16, 32] {
            let currents = vec![32.0 * 0.5e-6; rows];
            let total = model
                .inference(&currents, 32, 500e-12, &mirror, &wta)
                .unwrap()
                .total();
            assert!(total > previous);
            previous = total;
        }
    }

    #[test]
    fn zero_duration_leaves_only_driver_energy() {
        let (model, mirror, wta) = setup();
        let energy = model
            .inference(&[1e-6, 2e-6], 4, 0.0, &mirror, &wta)
            .unwrap();
        let expected_drivers = 4.0 * model.params().bitline_driver_energy
            + 2.0 * model.params().wordline_driver_energy;
        assert!((energy.array - expected_drivers).abs() < 1e-24);
        assert_eq!(energy.sensing, 0.0);
    }

    #[test]
    fn iris_scale_inference_is_tens_of_femtojoules() {
        // The paper reports 17.2 fJ per inference for the 3×64 iris crossbar
        // with 5 activated bitlines (4 features + prior); our calibrated
        // model should land in the same order of magnitude.
        let (model, mirror, wta) = setup();
        let currents = vec![5.0 * 0.5e-6; 3];
        let delay = 300e-12;
        let energy = model.inference(&currents, 5, delay, &mirror, &wta).unwrap();
        assert!(
            energy.total() > 1e-15 && energy.total() < 60e-15,
            "total {}",
            energy.total()
        );
    }
}
