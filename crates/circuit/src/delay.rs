//! Inference-delay model of the FeBiM crossbar plus sensing module.
//!
//! The paper measures the inference delay as the time between activating the
//! bitlines and the winner output of the WTA circuit becoming identifiable,
//! in the worst case (minimum gap between adjacent wordline currents). The
//! delay therefore has two contributions: the array settling time, which
//! grows with the number of bitlines loading each wordline, and the WTA
//! resolution time, which grows with the number of competing rows and shrinks
//! with the current gap (Fig. 6(a)/(c)).

use serde::{Deserialize, Serialize};

use crate::errors::{CircuitError, Result};
use crate::wta::WtaCircuit;

/// Parameters of the array-settling part of the delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayParams {
    /// Fixed array settling time (drivers, clocking), in seconds.
    pub array_base: f64,
    /// Additional wordline settling time per attached bitline, in seconds.
    pub per_column: f64,
    /// Worst-case gap between adjacent wordline currents, in amperes,
    /// referenced to the wordline (pre-mirror) domain.
    pub worst_case_gap: f64,
}

impl DelayParams {
    /// Calibration reproducing the delay ranges of Fig. 6: roughly 200 ps for
    /// a 2×2 array, 800 ps for 2 rows × 256 columns and 1 ns for 32 rows ×
    /// 32 columns.
    pub fn febim_calibrated() -> Self {
        Self {
            array_base: 120e-12,
            per_column: 2.36e-12,
            worst_case_gap: 0.1e-6,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for non-positive entries.
    pub fn validate(&self) -> Result<()> {
        let positive: [(&'static str, f64); 3] = [
            ("array_base", self.array_base),
            ("per_column", self.per_column),
            ("worst_case_gap", self.worst_case_gap),
        ];
        for (name, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidParameter {
                    name,
                    reason: format!("must be positive and finite, got {value}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for DelayParams {
    fn default() -> Self {
        Self::febim_calibrated()
    }
}

/// Breakdown of one inference delay estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayBreakdown {
    /// Array (wordline/bitline) settling time, in seconds.
    pub array: f64,
    /// Sensing (current mirror + WTA) resolution time, in seconds.
    pub sensing: f64,
}

impl DelayBreakdown {
    /// Total inference delay in seconds.
    pub fn total(&self) -> f64 {
        self.array + self.sensing
    }
}

/// Inference-delay model combining array settling and WTA resolution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DelayModel {
    params: DelayParams,
}

impl DelayModel {
    /// Creates a delay model after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`DelayParams::validate`] failures.
    pub fn new(params: DelayParams) -> Result<Self> {
        params.validate()?;
        Ok(Self { params })
    }

    /// Delay model with the FeBiM calibration.
    pub fn febim_calibrated() -> Self {
        Self {
            params: DelayParams::febim_calibrated(),
        }
    }

    /// Borrow the model parameters.
    pub fn params(&self) -> &DelayParams {
        &self.params
    }

    /// Worst-case inference delay for an array with `rows` wordlines and
    /// `columns` bitlines, using `wta` for the sensing stage and
    /// `mirror_gain` as the wordline-to-WTA current attenuation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] when `rows` or `columns`
    /// is zero or the mirror gain is not positive.
    pub fn worst_case(
        &self,
        rows: usize,
        columns: usize,
        wta: &WtaCircuit,
        mirror_gain: f64,
    ) -> Result<DelayBreakdown> {
        if rows == 0 {
            return Err(CircuitError::InvalidParameter {
                name: "rows",
                reason: "array must have at least one row".to_string(),
            });
        }
        if columns == 0 {
            return Err(CircuitError::InvalidParameter {
                name: "columns",
                reason: "array must have at least one column".to_string(),
            });
        }
        if !(mirror_gain > 0.0 && mirror_gain.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                name: "mirror_gain",
                reason: format!("must be positive and finite, got {mirror_gain}"),
            });
        }
        let array = self.params.array_base + self.params.per_column * columns as f64;
        let sensing = wta.settling_time(rows, self.params.worst_case_gap * mirror_gain);
        Ok(DelayBreakdown { array, sensing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mirror::CurrentMirror;

    fn model() -> DelayModel {
        DelayModel::febim_calibrated()
    }

    fn gain() -> f64 {
        CurrentMirror::febim_sensing().gain
    }

    #[test]
    fn default_params_validate() {
        DelayParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let p = DelayParams {
            per_column: 0.0,
            ..DelayParams::default()
        };
        assert!(DelayModel::new(p).is_err());
    }

    #[test]
    fn zero_sized_arrays_rejected() {
        let wta = WtaCircuit::febim_calibrated();
        assert!(model().worst_case(0, 4, &wta, gain()).is_err());
        assert!(model().worst_case(4, 0, &wta, gain()).is_err());
        assert!(model().worst_case(4, 4, &wta, 0.0).is_err());
    }

    #[test]
    fn small_array_lands_near_200ps() {
        let wta = WtaCircuit::febim_calibrated();
        let delay = model().worst_case(2, 2, &wta, gain()).unwrap().total();
        assert!(delay > 150e-12 && delay < 300e-12, "delay {delay}");
    }

    #[test]
    fn wide_array_lands_near_800ps() {
        let wta = WtaCircuit::febim_calibrated();
        let delay = model().worst_case(2, 256, &wta, gain()).unwrap().total();
        assert!(delay > 600e-12 && delay < 1000e-12, "delay {delay}");
    }

    #[test]
    fn tall_array_lands_near_1ns() {
        let wta = WtaCircuit::febim_calibrated();
        let delay = model().worst_case(32, 32, &wta, gain()).unwrap().total();
        assert!(delay > 800e-12 && delay < 1300e-12, "delay {delay}");
    }

    #[test]
    fn delay_monotone_in_columns() {
        let wta = WtaCircuit::febim_calibrated();
        let mut previous = 0.0;
        for columns in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let delay = model()
                .worst_case(2, columns, &wta, gain())
                .unwrap()
                .total();
            assert!(delay > previous);
            previous = delay;
        }
    }

    #[test]
    fn delay_monotone_in_rows() {
        let wta = WtaCircuit::febim_calibrated();
        let mut previous = 0.0;
        for rows in [2usize, 4, 8, 16, 32] {
            let delay = model().worst_case(rows, 32, &wta, gain()).unwrap().total();
            assert!(delay > previous);
            previous = delay;
        }
    }

    #[test]
    fn breakdown_total_is_sum() {
        let wta = WtaCircuit::febim_calibrated();
        let breakdown = model().worst_case(4, 16, &wta, gain()).unwrap();
        assert!((breakdown.total() - (breakdown.array + breakdown.sensing)).abs() < 1e-18);
    }
}
