//! Fixed-step transient solver for small behavioural circuits.
//!
//! The solver integrates a first-order state-space system with an explicit
//! Euler scheme, which is sufficient for the single-pole settling behaviour
//! of the wordlines and the WTA output branches that FeBiM relies on.

use serde::{Deserialize, Serialize};

use crate::errors::{CircuitError, Result};

/// One sampled point of a transient waveform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformPoint {
    /// Simulation time in seconds.
    pub time: f64,
    /// Signal value (units depend on the simulated quantity).
    pub value: f64,
}

/// A sampled transient waveform for one circuit node.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Waveform {
    /// Sampled points in increasing time order.
    pub points: Vec<WaveformPoint>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// The final sampled value, if any.
    pub fn final_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// The first time at which the waveform reaches at least `threshold`,
    /// if it ever does.
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.value >= threshold)
            .map(|p| p.time)
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Configuration of a fixed-step transient run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Integration time step in seconds.
    pub time_step: f64,
    /// Total simulated time in seconds.
    pub duration: f64,
}

impl TransientConfig {
    /// Creates a transient configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] when the step or duration is
    /// not positive, or when the step exceeds the duration.
    pub fn new(time_step: f64, duration: f64) -> Result<Self> {
        if !(time_step > 0.0 && time_step.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                name: "time_step",
                reason: "must be positive and finite".to_string(),
            });
        }
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                name: "duration",
                reason: "must be positive and finite".to_string(),
            });
        }
        if time_step > duration {
            return Err(CircuitError::InvalidParameter {
                name: "time_step",
                reason: "must not exceed the total duration".to_string(),
            });
        }
        Ok(Self {
            time_step,
            duration,
        })
    }

    /// 1 ps steps over 500 ps: the window used for the WTA transient of Fig. 5(c).
    pub fn febim_wta() -> Self {
        Self {
            time_step: 1e-12,
            duration: 500e-12,
        }
    }

    /// Number of integration steps.
    pub fn steps(&self) -> usize {
        (self.duration / self.time_step).round() as usize
    }
}

/// Integrates `d state / dt = derivative(t, state)` with explicit Euler steps,
/// recording one waveform per state element.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidParameter`] if `initial` is empty.
pub fn integrate<F>(
    initial: &[f64],
    config: &TransientConfig,
    mut derivative: F,
) -> Result<Vec<Waveform>>
where
    F: FnMut(f64, &[f64]) -> Vec<f64>,
{
    if initial.is_empty() {
        return Err(CircuitError::InvalidParameter {
            name: "initial",
            reason: "state vector must not be empty".to_string(),
        });
    }
    let mut state = initial.to_vec();
    let mut waveforms: Vec<Waveform> = (0..state.len()).map(|_| Waveform::new()).collect();
    let steps = config.steps();
    for step in 0..=steps {
        let time = step as f64 * config.time_step;
        for (node, waveform) in waveforms.iter_mut().enumerate() {
            waveform.points.push(WaveformPoint {
                time,
                value: state[node],
            });
        }
        if step == steps {
            break;
        }
        let rates = derivative(time, &state);
        debug_assert_eq!(rates.len(), state.len());
        for (value, rate) in state.iter_mut().zip(rates.iter()) {
            *value += rate * config.time_step;
        }
    }
    Ok(waveforms)
}

/// First-order settling of a single node towards `target` with time constant
/// `tau` seconds, starting from `initial`.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidParameter`] if `tau` is not positive or the
/// configuration is invalid.
pub fn first_order_settling(
    initial: f64,
    target: f64,
    tau: f64,
    config: &TransientConfig,
) -> Result<Waveform> {
    if !(tau > 0.0 && tau.is_finite()) {
        return Err(CircuitError::InvalidParameter {
            name: "tau",
            reason: "time constant must be positive and finite".to_string(),
        });
    }
    // The single-pole response has a closed form; evaluating it directly keeps
    // the waveform exact even when the sampling step is much larger than the
    // time constant (explicit Euler would go unstable there).
    let mut waveform = Waveform::new();
    for step in 0..=config.steps() {
        let time = step as f64 * config.time_step;
        let value = target + (initial - target) * (-time / tau).exp();
        waveform.points.push(WaveformPoint { time, value });
    }
    Ok(waveform)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(TransientConfig::new(0.0, 1e-9).is_err());
        assert!(TransientConfig::new(1e-12, 0.0).is_err());
        assert!(TransientConfig::new(1e-9, 1e-12).is_err());
        assert!(TransientConfig::new(1e-12, 1e-9).is_ok());
    }

    #[test]
    fn febim_wta_window_is_500ps() {
        let config = TransientConfig::febim_wta();
        assert_eq!(config.steps(), 500);
    }

    #[test]
    fn empty_state_rejected() {
        let config = TransientConfig::febim_wta();
        assert!(matches!(
            integrate(&[], &config, |_, _| vec![]),
            Err(CircuitError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn first_order_settling_approaches_target() {
        let config = TransientConfig::new(1e-12, 1e-9).unwrap();
        let waveform = first_order_settling(0.0, 1.0, 100e-12, &config).unwrap();
        let last = waveform.final_value().unwrap();
        // After ten time constants the node is fully settled.
        assert!((last - 1.0).abs() < 1e-3, "final value {last}");
    }

    #[test]
    fn settling_time_matches_analytic_estimate() {
        let config = TransientConfig::new(0.1e-12, 1e-9).unwrap();
        let tau = 50e-12;
        let waveform = first_order_settling(0.0, 1.0, tau, &config).unwrap();
        // The 63 % point should land near one time constant.
        let t63 = waveform.time_to_reach(0.632).unwrap();
        assert!((t63 - tau).abs() < 5e-12, "t63 {t63}");
    }

    #[test]
    fn invalid_tau_rejected() {
        let config = TransientConfig::febim_wta();
        assert!(first_order_settling(0.0, 1.0, 0.0, &config).is_err());
    }

    #[test]
    fn waveform_helpers() {
        let waveform = Waveform {
            points: vec![
                WaveformPoint {
                    time: 0.0,
                    value: 0.0,
                },
                WaveformPoint {
                    time: 1e-12,
                    value: 0.5,
                },
                WaveformPoint {
                    time: 2e-12,
                    value: 0.9,
                },
            ],
        };
        assert_eq!(waveform.len(), 3);
        assert!(!waveform.is_empty());
        assert_eq!(waveform.final_value(), Some(0.9));
        assert_eq!(waveform.time_to_reach(0.4), Some(1e-12));
        assert_eq!(waveform.time_to_reach(2.0), None);
        assert!(Waveform::new().is_empty());
    }

    #[test]
    fn integrator_tracks_two_independent_nodes() {
        let config = TransientConfig::new(1e-12, 200e-12).unwrap();
        let waveforms = integrate(&[0.0, 1.0], &config, |_t, state| {
            vec![(1.0 - state[0]) / 20e-12, (0.0 - state[1]) / 20e-12]
        })
        .unwrap();
        assert_eq!(waveforms.len(), 2);
        assert!(waveforms[0].final_value().unwrap() > 0.99);
        assert!(waveforms[1].final_value().unwrap() < 0.01);
    }
}
