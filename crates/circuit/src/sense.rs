//! The complete sensing module: per-row current mirrors feeding the
//! winner-take-all circuit (the right-hand side of Fig. 3 in the paper).

use serde::{Deserialize, Serialize};

use crate::delay::{DelayBreakdown, DelayModel};
use crate::energy::{EnergyModel, InferenceEnergy};
use crate::errors::{CircuitError, Result};
use crate::mirror::CurrentMirror;
use crate::transient::TransientConfig;
use crate::wta::{WtaCircuit, WtaDecision, WtaTransient};

/// Separation between the winning wordline current and its runner-up.
///
/// Time-varying non-idealities (retention drift, read disturb, IR drop)
/// shift every cell current, and the first observable casualty is not the
/// predicted class but the *margin* the WTA resolves it with: drifted
/// currents converge long before they cross. This snapshot quantifies that
/// erosion so a recalibration policy can trip on a shrinking relative
/// margin instead of waiting for an outright misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseMargin {
    /// Index of the wordline carrying the maximum current.
    pub winner: usize,
    /// Index of the second-largest wordline current.
    pub runner_up: usize,
    /// Winner-minus-runner-up current gap, in amperes (pre-mirror).
    pub absolute: f64,
    /// The gap normalized by the winner current, in `(0, 1]`. Dimensionless
    /// and mirror-gain invariant: the mirror scales the winner and the gap
    /// by the same factor, so this is the number to track over time.
    pub relative: f64,
}

/// Outcome of pushing one set of wordline currents through the sensing module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SenseOutcome {
    /// Index of the wordline identified as carrying the maximum current.
    pub winner: usize,
    /// The mirrored currents that entered the WTA, in amperes.
    pub mirrored_currents: Vec<f64>,
    /// The WTA decision details.
    pub decision: WtaDecision,
    /// Worst-case delay estimate for this array geometry.
    pub delay: DelayBreakdown,
    /// Energy estimate for this inference.
    pub energy: InferenceEnergy,
}

/// Outcome of one sensing operation when the mirrored currents stay in a
/// caller-owned scratch buffer (the allocation-free variant of
/// [`SenseOutcome`], returned by [`SensingChain::sense_into`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SenseReadout {
    /// Index of the wordline identified as carrying the maximum current.
    pub winner: usize,
    /// The WTA decision details.
    pub decision: WtaDecision,
    /// Worst-case delay estimate for this array geometry.
    pub delay: DelayBreakdown,
    /// Energy estimate for this inference.
    pub energy: InferenceEnergy,
}

/// The sensing chain: current mirrors, WTA, plus the delay and energy models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingChain {
    mirror: CurrentMirror,
    wta: WtaCircuit,
    delay_model: DelayModel,
    energy_model: EnergyModel,
}

impl SensingChain {
    /// Builds a sensing chain from its components.
    pub fn new(
        mirror: CurrentMirror,
        wta: WtaCircuit,
        delay_model: DelayModel,
        energy_model: EnergyModel,
    ) -> Self {
        Self {
            mirror,
            wta,
            delay_model,
            energy_model,
        }
    }

    /// Sensing chain with the FeBiM calibration of every component.
    pub fn febim_calibrated() -> Self {
        Self {
            mirror: CurrentMirror::febim_sensing(),
            wta: WtaCircuit::febim_calibrated(),
            delay_model: DelayModel::febim_calibrated(),
            energy_model: EnergyModel::febim_calibrated(),
        }
    }

    /// Borrow the current-mirror model.
    pub fn mirror(&self) -> &CurrentMirror {
        &self.mirror
    }

    /// Borrow the WTA model.
    pub fn wta(&self) -> &WtaCircuit {
        &self.wta
    }

    /// Borrow the delay model.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay_model
    }

    /// Borrow the energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Senses one set of wordline currents.
    ///
    /// `activated_columns` is the number of bitlines driven during the read
    /// (used by the energy model).
    ///
    /// # Errors
    ///
    /// Propagates mirror, WTA, delay-model and energy-model errors
    /// (empty/invalid currents, degenerate geometries, exact ties).
    pub fn sense(
        &self,
        wordline_currents: &[f64],
        activated_columns: usize,
    ) -> Result<SenseOutcome> {
        let mut mirrored_currents = Vec::with_capacity(wordline_currents.len());
        let readout =
            self.sense_into(wordline_currents, activated_columns, &mut mirrored_currents)?;
        Ok(SenseOutcome {
            winner: readout.winner,
            mirrored_currents,
            decision: readout.decision,
            delay: readout.delay,
            energy: readout.energy,
        })
    }

    /// Senses one set of wordline currents without allocating: the mirrored
    /// currents are written into `mirrored_scratch` (cleared first) and stay
    /// there, so batched callers reuse one buffer across samples. On error
    /// the scratch contents are unspecified.
    ///
    /// # Errors
    ///
    /// Same as [`SensingChain::sense`].
    pub fn sense_into(
        &self,
        wordline_currents: &[f64],
        activated_columns: usize,
        mirrored_scratch: &mut Vec<f64>,
    ) -> Result<SenseReadout> {
        self.mirror
            .copy_all_into(wordline_currents, mirrored_scratch)?;
        let decision = self.wta.resolve(mirrored_scratch)?;
        let delay = self.delay_model.worst_case(
            wordline_currents.len(),
            activated_columns.max(1),
            &self.wta,
            self.mirror.gain,
        )?;
        let energy = self.energy_model.inference_with_mirrored(
            wordline_currents,
            mirrored_scratch,
            activated_columns,
            delay.total(),
            &self.mirror,
            &self.wta,
        )?;
        Ok(SenseReadout {
            winner: decision.winner,
            decision,
            delay,
            energy,
        })
    }

    /// Measures the winner/runner-up separation of one set of wordline
    /// currents without committing a read: no mirror copy, no WTA
    /// resolution, no delay or energy pricing. Recalibration schedulers use
    /// this to watch drift-induced margin erosion cheaply.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyInput`] for no currents,
    /// [`CircuitError::InvalidParameter`] for fewer than two rows (a
    /// runner-up must exist), [`CircuitError::InvalidCurrent`] for a
    /// negative or non-finite current and
    /// [`CircuitError::AmbiguousWinner`] for an exact tie at the maximum.
    pub fn sense_margin(&self, wordline_currents: &[f64]) -> Result<SenseMargin> {
        if wordline_currents.is_empty() {
            return Err(CircuitError::EmptyInput);
        }
        if wordline_currents.len() < 2 {
            return Err(CircuitError::InvalidParameter {
                name: "wordline_currents",
                reason: "a sense margin needs at least two wordlines".to_string(),
            });
        }
        for (index, &value) in wordline_currents.iter().enumerate() {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(CircuitError::InvalidCurrent { index, value });
            }
        }
        let mut winner = 0usize;
        for (index, &value) in wordline_currents.iter().enumerate().skip(1) {
            if value > wordline_currents[winner] {
                winner = index;
            }
        }
        let ties: Vec<usize> = wordline_currents
            .iter()
            .enumerate()
            .filter(|(_, &value)| value == wordline_currents[winner])
            .map(|(index, _)| index)
            .collect();
        if ties.len() > 1 {
            return Err(CircuitError::AmbiguousWinner { indices: ties });
        }
        let mut runner_up = usize::from(winner == 0);
        for (index, &value) in wordline_currents.iter().enumerate() {
            if index != winner && value > wordline_currents[runner_up] {
                runner_up = index;
            }
        }
        let absolute = wordline_currents[winner] - wordline_currents[runner_up];
        // A unique winner over non-negative inputs is strictly positive, so
        // the normalization never divides by zero.
        let relative = absolute / wordline_currents[winner];
        Ok(SenseMargin {
            winner,
            runner_up,
            absolute,
            relative,
        })
    }

    /// Simulates the WTA output transients for one set of wordline currents
    /// (the data behind Fig. 5(c)).
    ///
    /// # Errors
    ///
    /// Propagates mirror and WTA errors.
    pub fn transient(
        &self,
        wordline_currents: &[f64],
        config: &TransientConfig,
    ) -> Result<WtaTransient> {
        let mirrored = self.mirror.copy_all(wordline_currents)?;
        self.wta.transient(&mirrored, config)
    }
}

impl Default for SensingChain {
    fn default() -> Self {
        Self::febim_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn senses_the_maximum_wordline() {
        let chain = SensingChain::febim_calibrated();
        let outcome = chain.sense(&[0.8e-6, 1.6e-6, 1.2e-6], 5).unwrap();
        assert_eq!(outcome.winner, 1);
        assert_eq!(outcome.mirrored_currents.len(), 3);
        assert!(outcome.delay.total() > 0.0);
        assert!(outcome.energy.total() > 0.0);
    }

    #[test]
    fn mirrored_currents_are_attenuated() {
        let chain = SensingChain::febim_calibrated();
        let outcome = chain.sense(&[1.0e-6, 2.0e-6], 2).unwrap();
        assert!((outcome.mirrored_currents[0] - 0.1e-6).abs() < 1e-15);
        assert!((outcome.mirrored_currents[1] - 0.2e-6).abs() < 1e-15);
    }

    #[test]
    fn errors_propagate_from_components() {
        let chain = SensingChain::febim_calibrated();
        assert!(chain.sense(&[], 2).is_err());
        assert!(chain.sense(&[1e-6, 1e-6], 2).is_err());
        assert!(chain.sense(&[1e-6, f64::NAN], 2).is_err());
    }

    #[test]
    fn transient_matches_sense_decision() {
        let chain = SensingChain::febim_calibrated();
        let currents = [0.5e-6, 1.5e-6];
        let outcome = chain.sense(&currents, 2).unwrap();
        let transient = chain
            .transient(&currents, &TransientConfig::febim_wta())
            .unwrap();
        assert_eq!(outcome.winner, transient.decision.winner);
    }

    #[test]
    fn sense_into_matches_sense_and_reuses_the_buffer() {
        let chain = SensingChain::febim_calibrated();
        let currents = [0.8e-6, 1.6e-6, 1.2e-6];
        let outcome = chain.sense(&currents, 5).unwrap();
        let mut scratch = vec![9.9; 1];
        let readout = chain.sense_into(&currents, 5, &mut scratch).unwrap();
        assert_eq!(readout.winner, outcome.winner);
        assert_eq!(readout.decision, outcome.decision);
        assert_eq!(readout.delay, outcome.delay);
        assert_eq!(readout.energy, outcome.energy);
        assert_eq!(scratch, outcome.mirrored_currents);
    }

    #[test]
    fn sense_margin_identifies_winner_and_runner_up() {
        let chain = SensingChain::febim_calibrated();
        let margin = chain.sense_margin(&[0.8e-6, 1.6e-6, 1.2e-6]).unwrap();
        assert_eq!(margin.winner, 1);
        assert_eq!(margin.runner_up, 2);
        assert!((margin.absolute - 0.4e-6).abs() < 1e-18);
        assert!((margin.relative - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sense_margin_shrinks_as_drifted_currents_converge() {
        // Retention drift lowers every programmed current towards the same
        // off-state floor, so the winner and runner-up converge over time.
        let chain = SensingChain::febim_calibrated();
        let fresh = chain.sense_margin(&[0.6e-6, 1.8e-6, 1.1e-6]).unwrap();
        // The same array after drift: all currents pulled towards 0.5 µA.
        let drifted = chain.sense_margin(&[0.55e-6, 0.9e-6, 0.75e-6]).unwrap();
        assert_eq!(fresh.winner, drifted.winner);
        assert!(drifted.relative < fresh.relative);
        assert!(drifted.absolute < fresh.absolute);
        // The relative margin stays in (0, 1].
        assert!(drifted.relative > 0.0 && drifted.relative <= 1.0);
    }

    #[test]
    fn sense_margin_is_mirror_gain_invariant() {
        let chain = SensingChain::febim_calibrated();
        let raw = [0.6e-6, 1.8e-6, 1.1e-6];
        let mirrored = chain.mirror().copy_all(&raw).unwrap();
        let a = chain.sense_margin(&raw).unwrap();
        let b = chain.sense_margin(&mirrored).unwrap();
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.runner_up, b.runner_up);
        assert!((a.relative - b.relative).abs() < 1e-12);
    }

    #[test]
    fn sense_margin_rejects_degenerate_inputs() {
        let chain = SensingChain::febim_calibrated();
        assert!(matches!(
            chain.sense_margin(&[]),
            Err(CircuitError::EmptyInput)
        ));
        assert!(matches!(
            chain.sense_margin(&[1e-6]),
            Err(CircuitError::InvalidParameter { .. })
        ));
        assert!(matches!(
            chain.sense_margin(&[1e-6, f64::NAN]),
            Err(CircuitError::InvalidCurrent { .. })
        ));
        assert!(matches!(
            chain.sense_margin(&[1e-6, 1e-6, 0.5e-6]),
            Err(CircuitError::AmbiguousWinner { .. })
        ));
    }

    #[test]
    fn component_accessors_expose_models() {
        let chain = SensingChain::default();
        assert!(chain.mirror().gain > 0.0);
        assert!(chain.wta().params().bias_current > 0.0);
        assert!(chain.delay_model().params().per_column > 0.0);
        assert!(chain.energy_model().params().read_drain_bias > 0.0);
    }
}
