//! Shift-add sensing stage for packed bit-plane reads.
//!
//! A bit-plane-packed crossbar (see the quant crate's `Encoding::BitPlane`)
//! does not read log-posterior currents directly: one read cycle produces,
//! per wordline, one exact-integer partial sum per bit plane — the count of
//! activated columns whose selected digit has that plane's bit set. The
//! sensing module then merges the planes with a shift-add bus:
//!
//! ```text
//! score[row]  = Σ_plane 2^plane · partial[row][plane]      (exact integer)
//! current[row] = floor_current + lsb_current · score[row]  (one affine map)
//! ```
//!
//! Every summand is an exact integer in `f64` (bit counts times powers of
//! two), so the merged scores carry no floating-point reassociation hazard;
//! scaling into the current domain happens exactly once, at the end. The
//! merged currents then drive the very same mirror and WTA as a one-hot
//! read, so packing never changes the decision path — only the column
//! footprint and the read telemetry.
//!
//! Pricing: the merge bus re-uses the array's column-settling constant once
//! per plane on top of the (much narrower) packed-column settling, and
//! charges one bitline-driver switch per row per plane for the shift-add
//! accumulators. Both monolithic and tiled-fabric variants are provided.

use crate::delay::DelayBreakdown;
use crate::energy::InferenceEnergy;
use crate::errors::{CircuitError, Result};
use crate::fabric::TileGeometry;
use crate::sense::{SenseReadout, SensingChain};

/// Merges per-plane partial sums into wordline currents, written into
/// `merged` (cleared first).
///
/// `plane_sums` holds `rows × planes` entries laid out
/// `plane_sums[row * planes + plane]`; each entry must be a non-negative
/// finite count. `lsb_current` is the current step of one least-significant
/// score unit and `floor_current` the shared per-row offset (both in
/// amperes).
///
/// # Errors
///
/// Returns [`CircuitError::EmptyInput`] for no partial sums,
/// [`CircuitError::InvalidParameter`] for a zero plane count, a partial-sum
/// length that does not tile into planes, a non-positive `lsb_current` or a
/// negative `floor_current`, and [`CircuitError::InvalidCurrent`] for a
/// negative or non-finite partial sum.
pub fn merge_plane_sums_into(
    plane_sums: &[f64],
    planes: usize,
    lsb_current: f64,
    floor_current: f64,
    merged: &mut Vec<f64>,
) -> Result<()> {
    if plane_sums.is_empty() {
        return Err(CircuitError::EmptyInput);
    }
    if planes == 0 {
        return Err(CircuitError::InvalidParameter {
            name: "planes",
            reason: "a packed read carries at least one bit plane".to_string(),
        });
    }
    if !plane_sums.len().is_multiple_of(planes) {
        return Err(CircuitError::InvalidParameter {
            name: "plane_sums",
            reason: format!(
                "{} partial sums cannot tile into {planes} planes",
                plane_sums.len()
            ),
        });
    }
    if !(lsb_current > 0.0 && lsb_current.is_finite()) {
        return Err(CircuitError::InvalidParameter {
            name: "lsb_current",
            reason: format!("must be positive and finite, got {lsb_current}"),
        });
    }
    if !(floor_current >= 0.0 && floor_current.is_finite()) {
        return Err(CircuitError::InvalidParameter {
            name: "floor_current",
            reason: format!("must be non-negative and finite, got {floor_current}"),
        });
    }
    for (index, &value) in plane_sums.iter().enumerate() {
        if !(value >= 0.0 && value.is_finite()) {
            return Err(CircuitError::InvalidCurrent { index, value });
        }
    }
    let rows = plane_sums.len() / planes;
    merged.clear();
    merged.reserve(rows);
    for row in 0..rows {
        let base = row * planes;
        // Integer partial sums times exact powers of two: the score is an
        // exact integer in f64 however the terms associate.
        let mut score = 0.0;
        for (plane, &partial) in plane_sums[base..base + planes].iter().enumerate() {
            score += partial * (1u64 << plane) as f64;
        }
        merged.push(floor_current + lsb_current * score);
    }
    Ok(())
}

fn check_planes(planes: usize) -> Result<()> {
    if planes == 0 {
        return Err(CircuitError::InvalidParameter {
            name: "planes",
            reason: "a packed read carries at least one bit plane".to_string(),
        });
    }
    Ok(())
}

fn check_cell_bits(cell_bits: usize) -> Result<()> {
    if cell_bits == 0 {
        return Err(CircuitError::InvalidParameter {
            name: "cell_bits",
            reason: "a packed cell stores at least one bit".to_string(),
        });
    }
    Ok(())
}

impl SensingChain {
    /// Worst-case delay of one packed shift-add read on a monolithic array:
    /// the settling of the (reduced) packed columns, plus one merge-bus pass
    /// per plane, plus the usual WTA resolution over the merged rows.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for a zero plane count and
    /// propagates delay-model errors.
    pub fn shift_add_delay(
        &self,
        rows: usize,
        activated_columns: usize,
        planes: usize,
    ) -> Result<DelayBreakdown> {
        check_planes(planes)?;
        let mut delay = self.delay_model().worst_case(
            rows,
            activated_columns.max(1),
            self.wta(),
            self.mirror().gain,
        )?;
        delay.array += self.delay_model().params().per_column * planes as f64;
        Ok(delay)
    }

    /// Energy of one packed shift-add read on a monolithic array: the usual
    /// driver/conduction/mirror/WTA pricing over the merged currents and the
    /// (reduced) activated packed columns, plus one bitline-driver switch
    /// per row per plane for the shift-add accumulators, plus the
    /// multi-level sensing refinement — every activated multi-bit cell is
    /// digitized by `cell_bits` successive ladder comparisons
    /// (`cell_bits = log2` of the cell's state count), each priced at
    /// [`crate::EnergyParams::level_refine_energy`].
    ///
    /// `mirrored_currents` must be `mirror().copy_all` of `merged_currents`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for a zero plane or
    /// cell-bit count and propagates energy-model errors.
    pub fn shift_add_energy(
        &self,
        merged_currents: &[f64],
        mirrored_currents: &[f64],
        activated_columns: usize,
        planes: usize,
        cell_bits: usize,
        duration: f64,
    ) -> Result<InferenceEnergy> {
        check_planes(planes)?;
        check_cell_bits(cell_bits)?;
        let mut energy = self.energy_model().inference_with_mirrored(
            merged_currents,
            mirrored_currents,
            activated_columns,
            duration,
            self.mirror(),
            self.wta(),
        )?;
        energy.array += (planes * merged_currents.len()) as f64
            * self.energy_model().params().bitline_driver_energy;
        energy.sensing += (cell_bits * activated_columns) as f64
            * self.energy_model().params().level_refine_energy;
        Ok(energy)
    }

    /// Senses one packed shift-add read on a monolithic array without
    /// allocating: merges the plane partials into `merged_scratch`, mirrors
    /// them into `mirrored_scratch` (both cleared first), resolves the WTA
    /// and prices the packed delay and energy.
    ///
    /// The decision runs over the merged currents through the exact mirror
    /// and WTA a one-hot read uses. Packed integer scores tie far more often
    /// than analog sums, so callers should expect and handle
    /// [`CircuitError::AmbiguousWinner`]; the public
    /// [`SensingChain::shift_add_delay`] / [`SensingChain::shift_add_energy`]
    /// helpers let a tie fallback price the read identically.
    ///
    /// # Errors
    ///
    /// Propagates merge, mirror, WTA, delay and energy errors.
    #[allow(clippy::too_many_arguments)]
    pub fn sense_shift_add_into(
        &self,
        plane_sums: &[f64],
        planes: usize,
        cell_bits: usize,
        lsb_current: f64,
        floor_current: f64,
        activated_columns: usize,
        merged_scratch: &mut Vec<f64>,
        mirrored_scratch: &mut Vec<f64>,
    ) -> Result<SenseReadout> {
        merge_plane_sums_into(
            plane_sums,
            planes,
            lsb_current,
            floor_current,
            merged_scratch,
        )?;
        self.mirror()
            .copy_all_into(merged_scratch, mirrored_scratch)?;
        let decision = self.wta().resolve(mirrored_scratch)?;
        let delay = self.shift_add_delay(merged_scratch.len(), activated_columns, planes)?;
        let energy = self.shift_add_energy(
            merged_scratch,
            mirrored_scratch,
            activated_columns,
            planes,
            cell_bits,
            delay.total(),
        )?;
        Ok(SenseReadout {
            winner: decision.winner,
            decision,
            delay,
            energy,
        })
    }

    /// Worst-case delay of one packed shift-add read on a tiled fabric: the
    /// parallel per-tile settling and merge bus of
    /// [`SensingChain::fabric_delay`], plus one merge-bus pass per plane.
    ///
    /// # Errors
    ///
    /// Same as [`SensingChain::fabric_delay`], plus
    /// [`CircuitError::InvalidParameter`] for a zero plane count.
    pub fn shift_add_fabric_delay(
        &self,
        tiles: &[TileGeometry],
        col_tiles: usize,
        merged_rows: usize,
        planes: usize,
    ) -> Result<DelayBreakdown> {
        check_planes(planes)?;
        let mut delay = self.fabric_delay(tiles, col_tiles, merged_rows)?;
        delay.array += self.delay_model().params().per_column * planes as f64;
        Ok(delay)
    }

    /// Energy of one packed shift-add read on a tiled fabric: the per-tile
    /// driver pricing of [`SensingChain::fabric_energy`], plus one
    /// bitline-driver switch per merged row per plane for the shift-add
    /// accumulators, plus `cell_bits` ladder comparisons per activated cell
    /// across all tiles for the multi-level sensing refinement.
    ///
    /// # Errors
    ///
    /// Same as [`SensingChain::fabric_energy`], plus
    /// [`CircuitError::InvalidParameter`] for a zero plane or cell-bit
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub fn shift_add_fabric_energy(
        &self,
        merged_currents: &[f64],
        mirrored_currents: &[f64],
        tiles: &[TileGeometry],
        col_tiles: usize,
        planes: usize,
        cell_bits: usize,
        duration: f64,
    ) -> Result<InferenceEnergy> {
        check_planes(planes)?;
        check_cell_bits(cell_bits)?;
        let mut energy = self.fabric_energy(
            merged_currents,
            mirrored_currents,
            tiles,
            col_tiles,
            duration,
        )?;
        energy.array += (planes * merged_currents.len()) as f64
            * self.energy_model().params().bitline_driver_energy;
        let activated: usize = tiles.iter().map(|tile| tile.activated_columns).sum();
        energy.sensing +=
            (cell_bits * activated) as f64 * self.energy_model().params().level_refine_energy;
        Ok(energy)
    }

    /// Senses one packed shift-add read on a tiled fabric without
    /// allocating — the fabric counterpart of
    /// [`SensingChain::sense_shift_add_into`], pricing delay and energy with
    /// the fabric variants.
    ///
    /// # Errors
    ///
    /// Propagates merge, mirror, WTA (including
    /// [`CircuitError::AmbiguousWinner`] for tied integer scores), delay and
    /// energy errors.
    #[allow(clippy::too_many_arguments)]
    pub fn sense_shift_add_fabric_into(
        &self,
        plane_sums: &[f64],
        planes: usize,
        cell_bits: usize,
        lsb_current: f64,
        floor_current: f64,
        tiles: &[TileGeometry],
        col_tiles: usize,
        merged_scratch: &mut Vec<f64>,
        mirrored_scratch: &mut Vec<f64>,
    ) -> Result<SenseReadout> {
        merge_plane_sums_into(
            plane_sums,
            planes,
            lsb_current,
            floor_current,
            merged_scratch,
        )?;
        self.mirror()
            .copy_all_into(merged_scratch, mirrored_scratch)?;
        let decision = self.wta().resolve(mirrored_scratch)?;
        let delay = self.shift_add_fabric_delay(tiles, col_tiles, merged_scratch.len(), planes)?;
        let energy = self.shift_add_fabric_energy(
            merged_scratch,
            mirrored_scratch,
            tiles,
            col_tiles,
            planes,
            cell_bits,
            delay.total(),
        )?;
        Ok(SenseReadout {
            winner: decision.winner,
            decision,
            delay,
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SensingChain {
        SensingChain::febim_calibrated()
    }

    const LSB: f64 = 0.1e-6;

    #[test]
    fn merge_weighs_planes_by_powers_of_two() {
        // Two rows, three planes: scores 1·1 + 2·2 + 4·3 = 17 and
        // 1·4 + 2·0 + 4·1 = 8.
        let sums = [1.0, 2.0, 3.0, 4.0, 0.0, 1.0];
        let mut merged = vec![9.9; 1];
        merge_plane_sums_into(&sums, 3, LSB, 0.0, &mut merged).unwrap();
        assert_eq!(merged, vec![17.0 * LSB, 8.0 * LSB]);
        // A floor offsets every row equally.
        merge_plane_sums_into(&sums, 3, LSB, 0.05e-6, &mut merged).unwrap();
        assert_eq!(merged, vec![0.05e-6 + 17.0 * LSB, 0.05e-6 + 8.0 * LSB]);
    }

    #[test]
    fn merge_validates_its_inputs() {
        let mut merged = Vec::new();
        assert!(matches!(
            merge_plane_sums_into(&[], 2, LSB, 0.0, &mut merged),
            Err(CircuitError::EmptyInput)
        ));
        assert!(merge_plane_sums_into(&[1.0, 2.0], 0, LSB, 0.0, &mut merged).is_err());
        assert!(merge_plane_sums_into(&[1.0, 2.0, 3.0], 2, LSB, 0.0, &mut merged).is_err());
        assert!(merge_plane_sums_into(&[1.0, 2.0], 2, 0.0, 0.0, &mut merged).is_err());
        assert!(merge_plane_sums_into(&[1.0, 2.0], 2, LSB, -1.0, &mut merged).is_err());
        assert!(matches!(
            merge_plane_sums_into(&[1.0, f64::NAN], 2, LSB, 0.0, &mut merged),
            Err(CircuitError::InvalidCurrent { index: 1, .. })
        ));
    }

    #[test]
    fn shift_add_read_picks_the_largest_merged_score() {
        let chain = chain();
        // Scores: 5, 14, 9 over two planes.
        let sums = [1.0, 2.0, 4.0, 5.0, 1.0, 4.0];
        let mut merged = Vec::new();
        let mut mirrored = Vec::new();
        let readout = chain
            .sense_shift_add_into(&sums, 2, 2, LSB, 0.0, 8, &mut merged, &mut mirrored)
            .unwrap();
        assert_eq!(readout.winner, 1);
        assert_eq!(merged, vec![5.0 * LSB, 14.0 * LSB, 9.0 * LSB]);
        assert_eq!(mirrored.len(), 3);
        assert!(readout.delay.total() > 0.0);
        assert!(readout.energy.total() > 0.0);
    }

    #[test]
    fn tied_integer_scores_surface_as_ambiguous() {
        let chain = chain();
        // Both rows merge to score 6.
        let sums = [2.0, 2.0, 0.0, 3.0];
        let mut merged = Vec::new();
        let mut mirrored = Vec::new();
        assert!(matches!(
            chain.sense_shift_add_into(&sums, 2, 2, LSB, 0.0, 4, &mut merged, &mut mirrored),
            Err(CircuitError::AmbiguousWinner { .. })
        ));
        // The tie fallback can still price the read via the public helpers.
        let delay = chain.shift_add_delay(merged.len(), 4, 2).unwrap();
        let energy = chain
            .shift_add_energy(&merged, &mirrored, 4, 2, 2, delay.total())
            .unwrap();
        assert!(delay.total() > 0.0 && energy.total() > 0.0);
    }

    #[test]
    fn shift_add_pricing_adds_the_merge_pass_on_top_of_the_base_read() {
        let chain = chain();
        let merged = [0.5e-6, 1.4e-6, 0.9e-6];
        let mirrored = chain.mirror().copy_all(&merged).unwrap();
        let planes = 2;
        let cell_bits = 4;
        let base_delay = chain
            .delay_model()
            .worst_case(3, 8, chain.wta(), chain.mirror().gain)
            .unwrap();
        let packed_delay = chain.shift_add_delay(3, 8, planes).unwrap();
        let per_column = chain.delay_model().params().per_column;
        assert!((packed_delay.array - base_delay.array - per_column * planes as f64).abs() < 1e-24);
        assert_eq!(packed_delay.sensing, base_delay.sensing);

        let duration = packed_delay.total();
        let base_energy = chain
            .energy_model()
            .inference(&merged, 8, duration, chain.mirror(), chain.wta())
            .unwrap();
        let packed_energy = chain
            .shift_add_energy(&merged, &mirrored, 8, planes, cell_bits, duration)
            .unwrap();
        let per_driver = chain.energy_model().params().bitline_driver_energy;
        assert!(
            (packed_energy.array - base_energy.array - (planes * 3) as f64 * per_driver).abs()
                < 1e-24
        );
        // Multi-level refinement: `cell_bits` ladder comparisons for each of
        // the 8 activated multi-bit cells, priced on the sensing side.
        let per_refine = chain.energy_model().params().level_refine_energy;
        assert!(per_refine > 0.0);
        assert!(
            (packed_energy.sensing - base_energy.sensing - (cell_bits * 8) as f64 * per_refine)
                .abs()
                < 1e-24
        );
    }

    #[test]
    fn fabric_shift_add_matches_the_monolithic_decision() {
        let chain = chain();
        let sums = [1.0, 2.0, 4.0, 5.0, 1.0, 4.0];
        let tiles = vec![
            TileGeometry {
                rows: 2,
                columns: 4,
                activated_columns: 3,
            },
            TileGeometry {
                rows: 1,
                columns: 4,
                activated_columns: 3,
            },
        ];
        let mut merged = Vec::new();
        let mut mirrored = Vec::new();
        let fabric = chain
            .sense_shift_add_fabric_into(
                &sums,
                2,
                2,
                LSB,
                0.0,
                &tiles,
                1,
                &mut merged,
                &mut mirrored,
            )
            .unwrap();
        let mut merged_mono = Vec::new();
        let mut mirrored_mono = Vec::new();
        let monolithic = chain
            .sense_shift_add_into(
                &sums,
                2,
                2,
                LSB,
                0.0,
                6,
                &mut merged_mono,
                &mut mirrored_mono,
            )
            .unwrap();
        assert_eq!(fabric.winner, monolithic.winner);
        assert_eq!(merged, merged_mono);
        // Fabric pricing layers the per-plane merge pass on the fabric base.
        let base = chain.fabric_delay(&tiles, 1, 3).unwrap();
        assert!(
            (fabric.delay.array - base.array - chain.delay_model().params().per_column * 2.0).abs()
                < 1e-24
        );
        // Zero planes and zero cell bits are rejected everywhere.
        assert!(chain.shift_add_delay(3, 8, 0).is_err());
        assert!(chain.shift_add_fabric_delay(&tiles, 1, 3, 0).is_err());
        assert!(chain
            .shift_add_energy(&merged, &mirrored, 6, 0, 2, 1e-9)
            .is_err());
        assert!(chain
            .shift_add_energy(&merged, &mirrored, 6, 2, 0, 1e-9)
            .is_err());
        assert!(chain
            .shift_add_fabric_energy(&merged, &mirrored, &tiles, 1, 0, 2, 1e-9)
            .is_err());
        assert!(chain
            .shift_add_fabric_energy(&merged, &mirrored, &tiles, 1, 2, 0, 1e-9)
            .is_err());
    }

    #[test]
    fn fabric_refinement_charges_every_activated_tile_column() {
        let chain = chain();
        let merged = [0.5e-6, 1.4e-6, 0.9e-6];
        let mirrored = chain.mirror().copy_all(&merged).unwrap();
        let tiles = vec![
            TileGeometry {
                rows: 2,
                columns: 4,
                activated_columns: 3,
            },
            TileGeometry {
                rows: 1,
                columns: 4,
                activated_columns: 2,
            },
        ];
        let base = chain
            .fabric_energy(&merged, &mirrored, &tiles, 1, 1e-9)
            .unwrap();
        let cell_bits = 3;
        let packed = chain
            .shift_add_fabric_energy(&merged, &mirrored, &tiles, 1, 2, cell_bits, 1e-9)
            .unwrap();
        let params = *chain.energy_model().params();
        // 5 activated cells across both tiles × 3 refinement comparisons.
        assert!(
            (packed.sensing - base.sensing - (cell_bits * 5) as f64 * params.level_refine_energy)
                .abs()
                < 1e-24
        );
        assert!(
            (packed.array - base.array - (2 * merged.len()) as f64 * params.bitline_driver_energy)
                .abs()
                < 1e-24
        );
    }
}
