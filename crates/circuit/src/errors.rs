//! Error types for the analog circuit substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the behavioural circuit models.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The winner-take-all stage received no input currents.
    EmptyInput,
    /// An input current is negative or non-finite.
    InvalidCurrent {
        /// Index of the offending input.
        index: usize,
        /// The offending value in amperes.
        value: f64,
    },
    /// A circuit parameter is outside its meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The transient simulation did not settle within the allotted time.
    DidNotSettle {
        /// Simulated time budget in seconds.
        time_budget: f64,
    },
    /// Two or more inputs tie exactly, so no unique winner exists.
    AmbiguousWinner {
        /// The indices that share the maximum current.
        indices: Vec<usize>,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::EmptyInput => write!(f, "winner-take-all requires at least one input"),
            CircuitError::InvalidCurrent { index, value } => {
                write!(f, "input current #{index} is invalid: {value}")
            }
            CircuitError::InvalidParameter { name, reason } => {
                write!(f, "invalid circuit parameter `{name}`: {reason}")
            }
            CircuitError::DidNotSettle { time_budget } => {
                write!(f, "transient did not settle within {time_budget:.3e} s")
            }
            CircuitError::AmbiguousWinner { indices } => {
                write!(f, "inputs {indices:?} tie for the maximum current")
            }
        }
    }
}

impl Error for CircuitError {}

/// Convenience result alias used throughout the circuit crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        assert!(CircuitError::EmptyInput
            .to_string()
            .contains("at least one"));
        assert!(CircuitError::InvalidCurrent {
            index: 3,
            value: -1.0
        }
        .to_string()
        .contains("#3"));
        assert!(CircuitError::InvalidParameter {
            name: "load_capacitance",
            reason: "must be positive".to_string()
        }
        .to_string()
        .contains("load_capacitance"));
        assert!(CircuitError::DidNotSettle { time_budget: 1e-9 }
            .to_string()
            .contains("settle"));
        assert!(CircuitError::AmbiguousWinner {
            indices: vec![0, 1]
        }
        .to_string()
        .contains("[0, 1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
