//! Online recalibration scheduling.
//!
//! Retention drift and read disturb degrade a programmed crossbar over
//! time (see [`febim_device`]'s non-ideality stack); the paper's remedy is
//! a periodic refresh that reprograms only the cells that have drifted past
//! a tolerance. This module provides the policy/scheduler pair the engine
//! and the serving pool share:
//!
//! * [`RecalibrationPolicy`] — how often to check and how much effective
//!   threshold shift to tolerate;
//! * [`RecalibrationScheduler`] — a small state machine driven by
//!   [`RecalibrationScheduler::tick`]: it ages the engine, counts down the
//!   check interval, and when a check is due decides between three
//!   outcomes: *skip* (the backend's state epoch has not moved since the
//!   last check, so no conductance can have changed and the drift scan is
//!   pointless), *pass* (the worst effective shift is within tolerance),
//!   or *recalibrate* (reprogram the drifted cells and merge the refresh
//!   counters into the running [`RecalibrationReport`]).
//!
//! The epoch-based skip is what makes background recalibration cheap
//! enough to interleave with serving: an idle engine costs one integer
//! compare per check, not an O(cells) drift scan.

use serde::{Deserialize, Serialize};

use febim_crossbar::RefreshOutcome;

use crate::backend::InferenceBackend;
use crate::engine::FebimEngine;
use crate::errors::{CoreError, Result};
use crate::scheduler::EpochScheduler;

/// When and how aggressively to recalibrate a drifting backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecalibrationPolicy {
    /// Ticks between drift checks (the scheduler's countdown period).
    pub check_interval_ticks: u64,
    /// Largest effective threshold-voltage shift (volts) tolerated before a
    /// cell is reprogrammed.
    pub max_vth_shift: f64,
}

impl RecalibrationPolicy {
    /// A policy checking every `check_interval_ticks` and reprogramming
    /// cells shifted by more than `max_vth_shift` volts.
    pub fn new(check_interval_ticks: u64, max_vth_shift: f64) -> Self {
        Self {
            check_interval_ticks,
            max_vth_shift,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero check interval or a
    /// negative / non-finite shift tolerance.
    pub fn validate(&self) -> Result<()> {
        if self.check_interval_ticks == 0 {
            return Err(CoreError::InvalidConfig {
                name: "recalibration",
                reason: "check interval must be at least one tick".to_string(),
            });
        }
        if !self.max_vth_shift.is_finite() || self.max_vth_shift < 0.0 {
            return Err(CoreError::InvalidConfig {
                name: "recalibration",
                reason: format!(
                    "shift tolerance must be finite and non-negative, got {}",
                    self.max_vth_shift
                ),
            });
        }
        Ok(())
    }
}

/// Running totals of a scheduler's activity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecalibrationReport {
    /// Drift scans actually run.
    pub checks: u64,
    /// Due checks skipped because the state epoch had not moved.
    pub skipped_checks: u64,
    /// Checks that found at least one cell beyond tolerance and refreshed.
    pub passes: u64,
    /// Merged refresh counters (cells checked/refreshed, pulses, energy).
    pub outcome: RefreshOutcome,
}

/// Drives periodic drift checks and recalibration passes over one engine.
///
/// The scheduler owns no engine state — it watches the backend's clock and
/// state epoch through the [`FebimEngine`] it is handed, so the same
/// scheduler value works standalone (explicit [`RecalibrationScheduler::tick`]
/// calls in a simulation loop) and inside a serving worker (ticked between
/// batches).
#[derive(Debug, Clone)]
pub struct RecalibrationScheduler {
    policy: RecalibrationPolicy,
    epoch: EpochScheduler,
    report: RecalibrationReport,
}

impl RecalibrationScheduler {
    /// Creates a scheduler with a full countdown until the first check.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the policy is invalid.
    pub fn new(policy: RecalibrationPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(Self {
            policy,
            epoch: EpochScheduler::new(policy.check_interval_ticks),
            report: RecalibrationReport::default(),
        })
    }

    /// The policy this scheduler enforces.
    pub fn policy(&self) -> &RecalibrationPolicy {
        &self.policy
    }

    /// Running totals of checks, skips, passes and refresh work.
    pub fn report(&self) -> &RecalibrationReport {
        &self.report
    }

    /// Advances the engine's physical clock by `ticks` and runs every drift
    /// check that falls due in that window (one per elapsed interval, so a
    /// large jump cannot silently swallow checks — though consecutive due
    /// checks with an unchanged epoch collapse into skips). Returns the
    /// merged outcome when at least one recalibration pass refreshed cells,
    /// `None` otherwise.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from the recalibration pass.
    pub fn tick<B: InferenceBackend>(
        &mut self,
        engine: &mut FebimEngine<B>,
        ticks: u64,
    ) -> Result<Option<RefreshOutcome>> {
        engine.advance_time(ticks);
        let mut merged: Option<RefreshOutcome> = None;
        for _ in 0..self.epoch.due_checks(ticks) {
            if let Some(outcome) = self.check(engine)? {
                merged
                    .get_or_insert_with(RefreshOutcome::default)
                    .merge(&outcome);
            }
        }
        Ok(merged)
    }

    /// Runs one drift check immediately, regardless of the countdown.
    ///
    /// Skips the scan entirely when the backend's state epoch has not moved
    /// since the previous check (nothing can have drifted); otherwise scans
    /// for the worst effective shift and recalibrates if it exceeds the
    /// policy tolerance. Returns the refresh outcome when cells were
    /// reprogrammed.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from the recalibration pass.
    pub fn check<B: InferenceBackend>(
        &mut self,
        engine: &mut FebimEngine<B>,
    ) -> Result<Option<RefreshOutcome>> {
        let epoch = engine.state_epoch();
        if self.epoch.is_unmoved(epoch) {
            self.report.skipped_checks += 1;
            return Ok(None);
        }
        self.report.checks += 1;
        if engine.worst_effective_shift() <= self.policy.max_vth_shift {
            self.epoch.record(epoch);
            return Ok(None);
        }
        let outcome = engine.recalibrate(self.policy.max_vth_shift)?;
        // Record the post-refresh epoch so the pass itself does not force
        // the next check to rescan an untouched array.
        self.epoch.record(engine.state_epoch());
        if outcome.cells_refreshed > 0 {
            self.report.passes += 1;
            self.report.outcome.merge(&outcome);
            Ok(Some(outcome))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use febim_device::{NonIdealityStack, RetentionDrift};
    use febim_quant::QuantConfig;

    use crate::backend::CrossbarBackend;
    use crate::config::EngineConfig;

    fn drifting_engine() -> (FebimEngine<CrossbarBackend>, febim_data::Dataset) {
        let dataset = iris_like(90).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(90)).unwrap();
        let config = EngineConfig::febim_default()
            .with_quant(QuantConfig::febim_optimal())
            .with_non_idealities(
                NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.05, 100)),
            );
        let engine = FebimEngine::fit(&split.train, config).unwrap();
        (engine, split.test)
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(RecalibrationScheduler::new(RecalibrationPolicy::new(0, 0.01)).is_err());
        assert!(RecalibrationScheduler::new(RecalibrationPolicy::new(10, -0.01)).is_err());
        assert!(RecalibrationScheduler::new(RecalibrationPolicy::new(10, f64::NAN)).is_err());
        RecalibrationScheduler::new(RecalibrationPolicy::new(10, 0.01)).unwrap();
    }

    #[test]
    fn scheduler_recalibrates_once_drift_exceeds_tolerance() {
        let (mut engine, _) = drifting_engine();
        let mut scheduler =
            RecalibrationScheduler::new(RecalibrationPolicy::new(100, 2e-2)).unwrap();
        // Early ticks: drift is still below tolerance.
        assert!(scheduler.tick(&mut engine, 100).unwrap().is_none());
        assert_eq!(scheduler.report().checks, 1);
        assert_eq!(scheduler.report().passes, 0);
        // Age far enough that log-time drift clears one millivolt.
        let outcome = loop {
            if let Some(outcome) = scheduler.tick(&mut engine, 100).unwrap() {
                break outcome;
            }
            assert!(engine.clock() < 1_000_000, "drift never exceeded tolerance");
        };
        assert!(outcome.cells_refreshed > 0);
        assert!(outcome.pulses_applied > 0);
        assert!(outcome.energy_joules > 0.0);
        assert_eq!(scheduler.report().passes, 1);
        assert!(engine.worst_effective_shift() <= 2e-2);
    }

    #[test]
    fn tick_runs_every_check_that_falls_due() {
        let (mut engine, _) = drifting_engine();
        let mut scheduler = RecalibrationScheduler::new(RecalibrationPolicy::new(10, 1e3)).unwrap();
        // One jump spanning five intervals runs five due checks; the first
        // scans (epoch moved during the jump), the rest collapse into
        // epoch-unchanged skips.
        scheduler.tick(&mut engine, 50).unwrap();
        let report = *scheduler.report();
        assert_eq!(report.checks + report.skipped_checks, 5);
        assert_eq!(report.checks, 1);
        // Sub-interval ticks accumulate across calls.
        scheduler.tick(&mut engine, 4).unwrap();
        scheduler.tick(&mut engine, 5).unwrap();
        let report = *scheduler.report();
        assert_eq!(report.checks + report.skipped_checks, 5);
        scheduler.tick(&mut engine, 1).unwrap();
        let report = *scheduler.report();
        assert_eq!(report.checks + report.skipped_checks, 6);
    }

    #[test]
    fn unchanged_epoch_skips_the_drift_scan() {
        let (mut engine, _) = drifting_engine();
        let mut scheduler = RecalibrationScheduler::new(RecalibrationPolicy::new(10, 1e3)).unwrap();
        scheduler.check(&mut engine).unwrap();
        assert_eq!(scheduler.report().checks, 1);
        // No aging, no reads: the epoch is unchanged, so repeated checks
        // cost an integer compare and never rescan.
        for _ in 0..5 {
            scheduler.check(&mut engine).unwrap();
        }
        assert_eq!(scheduler.report().checks, 1);
        assert_eq!(scheduler.report().skipped_checks, 5);
        // Aging bumps the epoch and re-arms the scan.
        engine.advance_time(10);
        scheduler.check(&mut engine).unwrap();
        assert_eq!(scheduler.report().checks, 2);
    }

    #[test]
    fn software_engine_never_needs_recalibration() {
        let dataset = iris_like(60).unwrap();
        let engine_config = EngineConfig::febim_default();
        let mut engine = FebimEngine::fit_software(&dataset, engine_config).unwrap();
        let mut scheduler = RecalibrationScheduler::new(RecalibrationPolicy::new(10, 0.0)).unwrap();
        for _ in 0..3 {
            assert!(scheduler.tick(&mut engine, 25).unwrap().is_none());
        }
        assert_eq!(scheduler.report().passes, 0);
        assert_eq!(scheduler.report().outcome, RefreshOutcome::default());
    }

    /// A recalibrated engine predicts bit-identically to a freshly
    /// programmed one: the scheduler restores accuracy, not just currents.
    #[test]
    fn recalibration_restores_fresh_predictions() {
        let (mut engine, test) = drifting_engine();
        let (fresh_engine, _) = drifting_engine();
        let mut fresh_scratch = fresh_engine.make_scratch();
        let mut scratch = engine.make_scratch();
        engine.advance_time(2_000_000);
        let mut scheduler = RecalibrationScheduler::new(RecalibrationPolicy::new(1, 1e-4)).unwrap();
        let outcome = scheduler.check(&mut engine).unwrap().expect("drifted");
        assert!(outcome.cells_refreshed > 0);
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let recalibrated = engine.infer_into(sample, &mut scratch).unwrap();
            let fresh = fresh_engine.infer_into(sample, &mut fresh_scratch).unwrap();
            assert_eq!(recalibrated.prediction, fresh.prediction);
            assert_eq!(
                scratch.wordline_currents(),
                fresh_scratch.wordline_currents()
            );
        }
    }
}
