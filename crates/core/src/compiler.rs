//! Compilation of a quantized Bayesian model into a crossbar program, either
//! monolithic (one array holds the whole model) or tiled (the model is
//! sharded across a grid of fixed-size physical tiles).

use serde::{Deserialize, Serialize};

use febim_crossbar::{CrossbarLayout, TilePlan, TileShape};
use febim_quant::{pack_feature_levels, Encoding, QuantizedGnbc};

use crate::errors::Result;

/// A complete crossbar programming plan: the array geometry plus the target
/// multi-level state of every cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarProgram {
    layout: CrossbarLayout,
    /// `levels[row][column]`: target level, or `None` for cells left erased.
    levels: Vec<Vec<Option<usize>>>,
    /// Number of FeFET states used by the program (`2^Q_l` for one-hot,
    /// `2^bits` for bit-plane cells).
    state_count: usize,
    /// Column encoding the levels were emitted under.
    #[serde(default)]
    encoding: Encoding,
}

impl CrossbarProgram {
    /// The crossbar geometry.
    pub fn layout(&self) -> &CrossbarLayout {
        &self.layout
    }

    /// The per-cell target levels.
    pub fn levels(&self) -> &[Vec<Option<usize>>] {
        &self.levels
    }

    /// Number of distinct FeFET states the program uses.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of programmed (non-erased) cells.
    pub fn programmed_cells(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|row| row.iter())
            .filter(|level| level.is_some())
            .count()
    }

    /// Number of bits stored per cell (`log2` of the state count).
    pub fn bits_per_cell(&self) -> f64 {
        (self.state_count as f64).log2()
    }

    /// The column encoding the program was compiled for.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }
}

/// Compiles a quantized GNBC into a crossbar program.
///
/// The prior column is emitted only when the model's prior is non-uniform or
/// `force_prior_column` is set, matching the paper's choice of omitting the
/// prior block for the balanced iris dataset (Fig. 8(b)).
///
/// Under [`Encoding::OneHot`] every `(feature, bin)` pair gets its own
/// column. Under [`Encoding::BitPlane`] each feature's per-bin level row is
/// packed `digits_per_cell` bins at a time into multi-bit cells, shrinking
/// the likelihood block by that factor; the prior column (when emitted)
/// stores its level raw in the lowest digit slot.
///
/// # Errors
///
/// Propagates layout-construction, level-lookup, and digit-packing errors,
/// and rejects an encoding too narrow for the model's likelihood precision.
pub fn compile(
    quantized: &QuantizedGnbc,
    force_prior_column: bool,
    encoding: Encoding,
) -> Result<CrossbarProgram> {
    let likelihood_bits = quantized.config().likelihood_bits;
    encoding.validate(likelihood_bits)?;
    let include_prior = force_prior_column || !quantized.has_uniform_prior();
    let bins = quantized.discretizer().bins();
    let digits_per_cell = encoding.digits_per_cell(likelihood_bits);
    let layout = CrossbarLayout::new(
        quantized.n_classes(),
        quantized.n_features(),
        encoding.columns_per_feature(bins, likelihood_bits),
        include_prior,
    )?;
    let mut levels = vec![vec![None; layout.columns()]; layout.rows()];
    for (class, row) in levels.iter_mut().enumerate() {
        if let Some(prior_column) = layout.prior_column() {
            row[prior_column] = Some(quantized.prior_level(class)?);
        }
        for feature in 0..quantized.n_features() {
            let bin_levels = (0..bins)
                .map(|bin| quantized.likelihood_level(class, feature, bin))
                .collect::<febim_quant::Result<Vec<usize>>>()?;
            let cell_values = if encoding.is_packed() {
                pack_feature_levels(&bin_levels, digits_per_cell, likelihood_bits)?
            } else {
                bin_levels
            };
            for (slot, value) in cell_values.into_iter().enumerate() {
                let column = layout.likelihood_column(feature, slot)?;
                row[column] = Some(value);
            }
        }
    }
    Ok(CrossbarProgram {
        layout,
        levels,
        state_count: encoding.state_count(quantized.quantizer().levels()),
        encoding,
    })
}

/// A crossbar program together with its placement on a tiled fabric: the
/// same per-cell level matrix as the monolithic [`CrossbarProgram`], plus the
/// [`TilePlan`] that shards it row-wise over event tiles and column-wise over
/// evidence tiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledProgram {
    program: CrossbarProgram,
    plan: TilePlan,
}

impl TiledProgram {
    /// The underlying (tile-agnostic) crossbar program.
    pub fn program(&self) -> &CrossbarProgram {
        &self.program
    }

    /// The tile placement plan.
    pub fn plan(&self) -> &TilePlan {
        &self.plan
    }

    /// The logical crossbar geometry.
    pub fn layout(&self) -> &CrossbarLayout {
        self.program.layout()
    }

    /// Number of distinct FeFET states the program uses.
    pub fn state_count(&self) -> usize {
        self.program.state_count()
    }

    /// The column encoding the program was compiled for.
    pub fn encoding(&self) -> Encoding {
        self.program.encoding()
    }

    /// The level block one tile must be programmed with (local row-major
    /// order, edge tiles smaller than the physical tile shape).
    ///
    /// # Errors
    ///
    /// Returns a crossbar error for a tile outside the grid.
    pub fn tile_levels(&self, tile_row: usize, tile_col: usize) -> Result<Vec<Vec<Option<usize>>>> {
        let rows = self.plan.tile_row_range(tile_row)?;
        let columns = self.plan.tile_column_range(tile_col)?;
        Ok(rows
            .map(|row| self.program.levels()[row][columns.clone()].to_vec())
            .collect())
    }
}

/// Compiles a quantized GNBC onto a tiled fabric of fixed-size crossbar
/// tiles: the monolithic program is planned onto the smallest grid of
/// `shape`-sized tiles that covers it.
///
/// The prior-column policy matches [`compile`].
///
/// # Errors
///
/// Propagates layout/level errors from [`compile`] and tile-plan errors
/// (zero-dimension tile shapes).
pub fn compile_tiled(
    quantized: &QuantizedGnbc,
    force_prior_column: bool,
    shape: TileShape,
    encoding: Encoding,
) -> Result<TiledProgram> {
    let program = compile(quantized, force_prior_column, encoding)?;
    let plan = TilePlan::new(*program.layout(), shape)?;
    Ok(TiledProgram { program, plan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_bayes::GaussianNaiveBayes;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::{cancer_like, iris_like};
    use febim_data::Dataset;
    use febim_quant::QuantConfig;

    fn iris_quantized() -> QuantizedGnbc {
        let dataset = iris_like(30).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(30)).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        QuantizedGnbc::quantize(&model, &split.train, QuantConfig::febim_optimal()).unwrap()
    }

    #[test]
    fn iris_program_matches_figure_8b_geometry() {
        let program = compile(&iris_quantized(), false, Encoding::OneHot).unwrap();
        // 3 classes x 64 bitlines, no prior column, 2-bit cells.
        assert_eq!(program.layout().rows(), 3);
        assert_eq!(program.layout().columns(), 64);
        assert!(!program.layout().has_prior());
        assert_eq!(program.state_count(), 4);
        assert!((program.bits_per_cell() - 2.0).abs() < 1e-12);
        assert_eq!(program.programmed_cells(), 192);
    }

    #[test]
    fn forcing_the_prior_column_adds_one_column() {
        let program = compile(&iris_quantized(), true, Encoding::OneHot).unwrap();
        assert_eq!(program.layout().columns(), 65);
        assert!(program.layout().has_prior());
        assert_eq!(program.programmed_cells(), 195);
    }

    #[test]
    fn non_uniform_prior_always_gets_a_column() {
        let dataset = cancer_like(31).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(31)).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        assert!(!model.has_uniform_prior());
        let quantized =
            QuantizedGnbc::quantize(&model, &split.train, QuantConfig::new(3, 3)).unwrap();
        let program = compile(&quantized, false, Encoding::OneHot).unwrap();
        assert!(program.layout().has_prior());
        assert_eq!(program.layout().rows(), 2);
        assert_eq!(program.layout().columns(), 1 + 30 * 8);
    }

    #[test]
    fn every_level_is_within_the_state_count() {
        let program = compile(&iris_quantized(), false, Encoding::OneHot).unwrap();
        for row in program.levels() {
            for level in row.iter().flatten() {
                assert!(*level < program.state_count());
            }
        }
    }

    #[test]
    fn levels_match_the_quantized_tables() {
        let quantized = iris_quantized();
        let program = compile(&quantized, false, Encoding::OneHot).unwrap();
        for class in 0..quantized.n_classes() {
            for feature in 0..quantized.n_features() {
                for bin in 0..quantized.discretizer().bins() {
                    let column = program.layout().likelihood_column(feature, bin).unwrap();
                    assert_eq!(
                        program.levels()[class][column],
                        Some(quantized.likelihood_level(class, feature, bin).unwrap())
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_compile_covers_the_iris_program_with_a_2x2_grid() {
        let quantized = iris_quantized();
        let tiled = compile_tiled(
            &quantized,
            false,
            TileShape::new(2, 48).unwrap(),
            Encoding::OneHot,
        )
        .unwrap();
        // 3×64 on 2×48 tiles → 2 tile rows × 2 tile columns.
        assert_eq!(tiled.plan().row_tiles(), 2);
        assert_eq!(tiled.plan().col_tiles(), 2);
        assert!(tiled.plan().is_multi_tile());
        assert_eq!(tiled.layout(), tiled.program().layout());
        assert_eq!(tiled.state_count(), 4);
        assert_eq!(
            tiled.program(),
            &compile(&quantized, false, Encoding::OneHot).unwrap(),
            "tiling must not change the compiled levels"
        );
        assert!(
            compile_tiled(
                &quantized,
                false,
                TileShape::new(64, 64).unwrap(),
                Encoding::OneHot
            )
            .unwrap()
            .plan()
            .tile_count()
                == 1
        );
    }

    #[test]
    fn tile_level_blocks_match_the_quantized_tables() {
        let quantized = iris_quantized();
        let tiled = compile_tiled(
            &quantized,
            false,
            TileShape::new(2, 24).unwrap(),
            Encoding::OneHot,
        )
        .unwrap();
        for tile_row in 0..tiled.plan().row_tiles() {
            for tile_col in 0..tiled.plan().col_tiles() {
                let block = tiled.tile_levels(tile_row, tile_col).unwrap();
                let classes = tiled.plan().tile_row_range(tile_row).unwrap();
                let columns = tiled.plan().tile_column_range(tile_col).unwrap();
                let expected = quantized
                    .level_matrix_block(tiled.layout().has_prior(), classes, columns)
                    .unwrap();
                let unwrapped: Vec<Vec<usize>> = block
                    .iter()
                    .map(|row| row.iter().map(|level| level.unwrap()).collect())
                    .collect();
                assert_eq!(unwrapped, expected);
            }
        }
        assert!(tiled.tile_levels(9, 0).is_err());
    }

    #[test]
    fn packed_iris_program_halves_the_columns_at_four_bits() {
        use febim_quant::{digit_slot_of, packed_column_of, unpack_digit};
        let quantized = iris_quantized();
        let encoding = Encoding::BitPlane { bits: 4 };
        let packed = compile(&quantized, false, encoding).unwrap();
        // 4-bit cells pack two 2-bit bins: 3 classes x 32 bitlines.
        assert_eq!(packed.layout().rows(), 3);
        assert_eq!(packed.layout().columns(), 32);
        assert_eq!(packed.state_count(), 16);
        assert_eq!(packed.encoding(), encoding);
        assert!((packed.bits_per_cell() - 4.0).abs() < 1e-12);
        assert_eq!(packed.programmed_cells(), 96);
        // Every bin level survives the packing bit for bit.
        let r = encoding.digits_per_cell(2);
        for class in 0..quantized.n_classes() {
            for feature in 0..quantized.n_features() {
                for bin in 0..quantized.discretizer().bins() {
                    let column = packed
                        .layout()
                        .likelihood_column(feature, packed_column_of(bin, r))
                        .unwrap();
                    let cell = packed.levels()[class][column].unwrap();
                    assert_eq!(
                        unpack_digit(cell, digit_slot_of(bin, r), 2),
                        quantized.likelihood_level(class, feature, bin).unwrap()
                    );
                }
            }
        }
        // An 8-bit cell packs four bins: 16 columns for the same model.
        let wide = compile(&quantized, false, Encoding::BitPlane { bits: 8 }).unwrap();
        assert_eq!(wide.layout().columns(), 16);
        assert_eq!(wide.state_count(), 256);
    }

    #[test]
    fn packed_prior_column_stores_the_raw_level() {
        let quantized = iris_quantized();
        let packed = compile(&quantized, true, Encoding::BitPlane { bits: 4 }).unwrap();
        let prior_column = packed.layout().prior_column().unwrap();
        for class in 0..quantized.n_classes() {
            assert_eq!(
                packed.levels()[class][prior_column],
                Some(quantized.prior_level(class).unwrap())
            );
        }
    }

    #[test]
    fn narrow_cells_are_rejected_at_compile_time() {
        // A 1-bit cell cannot hold one Q_l = 2 digit.
        assert!(compile(&iris_quantized(), false, Encoding::BitPlane { bits: 1 }).is_err());
    }

    #[test]
    fn packed_tiled_program_matches_the_monolithic_packing() {
        let quantized = iris_quantized();
        let encoding = Encoding::BitPlane { bits: 4 };
        let tiled =
            compile_tiled(&quantized, false, TileShape::new(2, 16).unwrap(), encoding).unwrap();
        assert_eq!(tiled.encoding(), encoding);
        assert_eq!(tiled.plan().row_tiles(), 2);
        assert_eq!(tiled.plan().col_tiles(), 2);
        assert_eq!(
            tiled.program(),
            &compile(&quantized, false, encoding).unwrap(),
            "tiling must not change the packed levels"
        );
    }

    #[test]
    fn degenerate_single_class_still_compiles() {
        let dataset = Dataset::new(
            "single",
            vec!["x".to_string()],
            1,
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![0, 0, 0],
        )
        .unwrap();
        let model = GaussianNaiveBayes::fit(&dataset).unwrap();
        let quantized = QuantizedGnbc::quantize(&model, &dataset, QuantConfig::new(2, 2)).unwrap();
        let program = compile(&quantized, false, Encoding::OneHot).unwrap();
        assert_eq!(program.layout().rows(), 1);
    }
}
