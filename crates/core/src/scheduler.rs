//! The generic epoch-skip countdown shared by the maintenance schedulers.
//!
//! [`RecalibrationScheduler`](crate::RecalibrationScheduler) and
//! [`ScrubScheduler`](crate::ScrubScheduler) drive different maintenance
//! passes (drift refresh vs fault scrub) but share the same two pieces of
//! clockwork:
//!
//! * a **countdown** that converts an arbitrary tick advance into the exact
//!   number of due checks — one per elapsed interval, so a large jump can
//!   never silently swallow a check;
//! * an **epoch gate** that compares the backend's state epoch against the
//!   snapshot taken after the previous pass, so a due check on an untouched
//!   array collapses into a single integer compare instead of an O(cells)
//!   scan.
//!
//! [`EpochScheduler`] owns exactly that clockwork and nothing else: the
//! wrappers keep their own policies, reports and health machines, which is
//! why their public APIs (and pinned check/skip counts) are unchanged by
//! the extraction.

/// Countdown + epoch-skip state machine driving one periodic maintenance
/// pass.
///
/// The scheduler is deliberately dumb: it counts ticks, answers "how many
/// checks fell due", and remembers the last verified state epoch. What a
/// check *does* — scan for drift, scrub for faults — belongs to the caller.
#[derive(Debug, Clone)]
pub struct EpochScheduler {
    interval_ticks: u64,
    ticks_until_check: u64,
    last_epoch: Option<u64>,
}

impl EpochScheduler {
    /// Creates a scheduler with a full countdown until the first check.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval — callers validate their policies before
    /// constructing the scheduler, so a zero here is a programming error.
    pub fn new(interval_ticks: u64) -> Self {
        assert!(interval_ticks > 0, "check interval must be at least 1 tick");
        Self {
            interval_ticks,
            ticks_until_check: interval_ticks,
            last_epoch: None,
        }
    }

    /// Ticks between due checks.
    pub fn interval_ticks(&self) -> u64 {
        self.interval_ticks
    }

    /// Ticks left before the next check falls due.
    pub fn ticks_until_check(&self) -> u64 {
        self.ticks_until_check
    }

    /// Counts `ticks` against the countdown and returns how many checks
    /// fell due in that window — one per elapsed interval. Sub-interval
    /// remainders carry over to the next call, so split advances accumulate
    /// exactly like one large advance.
    pub fn due_checks(&mut self, ticks: u64) -> u64 {
        if ticks < self.ticks_until_check {
            self.ticks_until_check -= ticks;
            return 0;
        }
        let past_first = ticks - self.ticks_until_check;
        let extra = past_first / self.interval_ticks;
        self.ticks_until_check = self.interval_ticks - past_first % self.interval_ticks;
        1 + extra
    }

    /// Whether the backend still sits at the last verified epoch — in which
    /// case nothing can have changed and the caller should skip its scan.
    pub fn is_unmoved(&self, epoch: u64) -> bool {
        self.last_epoch == Some(epoch)
    }

    /// Records the epoch the array was just verified (or repaired) at, so
    /// the next due check on an untouched array skips.
    pub fn record(&mut self, epoch: u64) {
        self.last_epoch = Some(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_interval_ticks_accumulate_across_calls() {
        let mut scheduler = EpochScheduler::new(10);
        assert_eq!(scheduler.due_checks(4), 0);
        assert_eq!(scheduler.due_checks(5), 0);
        assert_eq!(scheduler.ticks_until_check(), 1);
        assert_eq!(scheduler.due_checks(1), 1);
        assert_eq!(scheduler.ticks_until_check(), 10);
    }

    #[test]
    fn one_large_jump_owes_one_check_per_elapsed_interval() {
        let mut scheduler = EpochScheduler::new(10);
        assert_eq!(scheduler.due_checks(50), 5);
        assert_eq!(scheduler.ticks_until_check(), 10);
        // A remainder re-arms a partial countdown.
        assert_eq!(scheduler.due_checks(23), 2);
        assert_eq!(scheduler.ticks_until_check(), 7);
        assert_eq!(scheduler.due_checks(0), 0);
        assert_eq!(scheduler.ticks_until_check(), 7);
    }

    #[test]
    fn closed_form_matches_the_reference_loop() {
        for interval in 1u64..8 {
            let mut fast = EpochScheduler::new(interval);
            let mut remaining = interval;
            for ticks in [0u64, 1, 3, 7, 12, 100, 2, interval, interval * 3] {
                let mut elapsed = ticks;
                let mut due = 0u64;
                while elapsed >= remaining {
                    elapsed -= remaining;
                    remaining = interval;
                    due += 1;
                }
                remaining -= elapsed;
                assert_eq!(fast.due_checks(ticks), due);
                assert_eq!(fast.ticks_until_check(), remaining);
            }
        }
    }

    #[test]
    fn epoch_gate_skips_only_the_recorded_epoch() {
        let mut scheduler = EpochScheduler::new(1);
        // No pass has run yet: the first check always scans.
        assert!(!scheduler.is_unmoved(0));
        scheduler.record(7);
        assert!(scheduler.is_unmoved(7));
        assert!(!scheduler.is_unmoved(8));
        scheduler.record(8);
        assert!(scheduler.is_unmoved(8));
        assert!(!scheduler.is_unmoved(7));
    }

    #[test]
    #[should_panic(expected = "at least 1 tick")]
    fn zero_intervals_are_rejected() {
        let _ = EpochScheduler::new(0);
    }
}
