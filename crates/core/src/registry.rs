//! Multi-tenant model registry: compiled/tiled programs registered under
//! model ids, placed onto a fleet of tile-grid banks by a capacity-aware
//! placer, and served through the routed [`ServingPool`] with per-request
//! model routing.
//!
//! Each bank is one routed worker hosting its own [`TileGrid`]-backed
//! engines (one per resident tenant), budgeted in *tiles*. Registering a
//! model compiles and programs it; when a bank runs out of tiles the
//! least-recently-served tenants are evicted and the freed tiles hot-swap
//! reprogrammed in place — the erase and programming pulse trains are
//! priced through the Preisach programmer, and the swap runs strictly
//! between batches on the target bank only, so other tenants never stall.
//! Evicted models stay in the registry's catalog and fault back in
//! transparently on their next request. [`ModelRegistry::snapshot`] /
//! [`ModelRegistry::restore`] round-trip a tenant's compiled program (the
//! trained model, the quantized tables and the tiled program) through JSON,
//! so a model can be reloaded from bytes without its training data.
//!
//! [`TileGrid`]: febim_crossbar::TileGrid

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

use serde::{json, Deserialize, Serialize};

use febim_bayes::GaussianNaiveBayes;
use febim_crossbar::TileShape;
use febim_data::Dataset;
use febim_quant::QuantizedGnbc;

use crate::backend::TiledFabricBackend;
use crate::compiler::TiledProgram;
use crate::config::EngineConfig;
use crate::engine::FebimEngine;
use crate::errors::CoreError;
use crate::serving::{
    PoolStats, ServeOutcome, ServingConfig, ServingError, ServingPool, SwapReport, SwapTicket,
    Ticket,
};

/// Requests that race a concurrent eviction of their model retry the
/// fault-in this many times before giving up.
const FAULT_IN_ATTEMPTS: usize = 4;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed errors of the model registry.
#[derive(Debug)]
pub enum RegistryError {
    /// The model id is not in the catalog.
    UnknownModel {
        /// The unknown id.
        model: u64,
    },
    /// The model id is already registered.
    DuplicateModel {
        /// The duplicated id.
        model: u64,
    },
    /// The program needs more tiles than one bank's entire budget.
    Capacity {
        /// Tiles the program needs.
        tiles: usize,
        /// Tiles one bank offers.
        budget: usize,
    },
    /// A configuration field failed validation.
    InvalidConfig {
        /// The offending field.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The serving pool reported a typed error.
    Serving(ServingError),
    /// Building or programming an engine failed.
    Core(CoreError),
    /// A snapshot could not be encoded or decoded.
    Snapshot(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel { model } => {
                write!(f, "model {model} is not registered")
            }
            Self::DuplicateModel { model } => {
                write!(f, "model {model} is already registered")
            }
            Self::Capacity { tiles, budget } => write!(
                f,
                "program needs {tiles} tiles but a bank holds at most {budget}"
            ),
            Self::InvalidConfig { name, reason } => {
                write!(f, "invalid registry config `{name}`: {reason}")
            }
            Self::Serving(err) => write!(f, "serving failed: {err}"),
            Self::Core(err) => write!(f, "engine build failed: {err}"),
            Self::Snapshot(reason) => write!(f, "snapshot failed: {reason}"),
        }
    }
}

impl Error for RegistryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Serving(err) => Some(err),
            Self::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ServingError> for RegistryError {
    fn from(err: ServingError) -> Self {
        Self::Serving(err)
    }
}

impl From<CoreError> for RegistryError {
    fn from(err: CoreError) -> Self {
        Self::Core(err)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of a [`ModelRegistry`]: the bank fleet and its serving
/// knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryConfig {
    /// Routed workers (banks), each hosting its own tile grids.
    pub banks: usize,
    /// Tile budget of one bank; a tenant's tiled program must fit within
    /// it, and residents beyond it are evicted least-recently-served first.
    pub tiles_per_bank: usize,
    /// Serving configuration of the underlying routed pool.
    pub serving: ServingConfig,
}

impl RegistryConfig {
    /// A registry of `banks` banks holding `tiles_per_bank` tiles each,
    /// with default serving knobs.
    pub fn new(banks: usize, tiles_per_bank: usize) -> Self {
        Self {
            banks,
            tiles_per_bank,
            serving: ServingConfig::default(),
        }
    }

    /// Replaces the serving configuration.
    #[must_use]
    pub fn with_serving(mut self, serving: ServingConfig) -> Self {
        self.serving = serving;
        self
    }

    /// Validates the registry-specific fields (the serving fields validate
    /// when the pool is built).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), RegistryError> {
        if self.banks == 0 {
            return Err(RegistryError::InvalidConfig {
                name: "banks",
                reason: "at least one bank is required".to_string(),
            });
        }
        if self.tiles_per_bank == 0 {
            return Err(RegistryError::InvalidConfig {
                name: "tiles_per_bank",
                reason: "a bank must hold at least one tile".to_string(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Catalog and placement state
// ---------------------------------------------------------------------------

/// Everything needed to rebuild a tenant's engine without its training
/// data: the trained model, the quantized tables, the engine configuration
/// and the compiled tiled program.
struct StoredModel {
    config: EngineConfig,
    model: Arc<GaussianNaiveBayes>,
    quantized: Arc<QuantizedGnbc>,
    program: TiledProgram,
    tiles: usize,
}

/// Where a resident tenant lives.
#[derive(Debug, Clone, Copy)]
struct Placement {
    bank: usize,
    tiles: usize,
    /// Logical LRU stamp (bumped on every serve and install).
    last_used: u64,
}

struct RegistryState {
    catalog: HashMap<u64, StoredModel>,
    resident: HashMap<u64, Placement>,
    /// Tiles used per bank.
    used: Vec<usize>,
    /// Monotonic logical clock backing the LRU stamps.
    clock: u64,
}

impl RegistryState {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// Where a model ended up after a register/restore/fault-in, including the
/// hot-swap cost when tiles had to be reprogrammed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantPlacement {
    /// The placed model.
    pub model: u64,
    /// Bank (routed worker) hosting it.
    pub bank: usize,
    /// Tiles its program occupies.
    pub tiles: usize,
    /// Tenants evicted to make room, least-recently-served first.
    pub evicted: Vec<u64>,
    /// The serviced swap (erase + programming pulse trains priced through
    /// the Preisach programmer); `None` when the model was already
    /// resident.
    pub swap: Option<SwapReport>,
}

/// Occupancy snapshot of the registry, serializable for benches.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RegistryReport {
    /// Banks in the fleet.
    pub banks: usize,
    /// Tile budget of one bank.
    pub tiles_per_bank: usize,
    /// Models in the catalog (resident or evicted).
    pub registered: usize,
    /// Models currently resident on a bank.
    pub resident: usize,
    /// Tiles used per bank.
    pub tiles_used: Vec<usize>,
}

/// A tenant's compiled program serialized for [`ModelRegistry::snapshot`] /
/// [`ModelRegistry::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ModelSnapshot {
    id: u64,
    config: EngineConfig,
    model: GaussianNaiveBayes,
    quantized: QuantizedGnbc,
    program: TiledProgram,
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// Multi-tenant registry over a routed [`ServingPool`] of tile-grid banks.
/// See the [module docs](self) for the placement and hot-swap semantics.
pub struct ModelRegistry {
    config: RegistryConfig,
    pool: ServingPool,
    state: Mutex<RegistryState>,
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ModelRegistry {
    /// Builds an empty registry: `config.banks` routed workers, each with
    /// an empty tenant bank and a `config.tiles_per_bank` tile budget.
    ///
    /// # Errors
    ///
    /// Configuration validation and pool construction errors.
    pub fn new(config: RegistryConfig) -> Result<Self, RegistryError> {
        config.validate()?;
        let banks: Vec<Vec<(u64, FebimEngine<TiledFabricBackend>)>> =
            (0..config.banks).map(|_| Vec::new()).collect();
        let pool = ServingPool::new_routed(banks, config.serving)?;
        let used = vec![0; config.banks];
        Ok(Self {
            config,
            pool,
            state: Mutex::new(RegistryState {
                catalog: HashMap::new(),
                resident: HashMap::new(),
                used,
                clock: 0,
            }),
        })
    }

    /// The registry configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Trains, compiles and registers a model under `id`, then places and
    /// programs it onto a bank (possibly evicting colder tenants).
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateModel`] for a reused id,
    /// [`RegistryError::Capacity`] when the program cannot fit even an
    /// empty bank, plus engine build and serving errors.
    pub fn register(
        &self,
        id: u64,
        train_data: &Dataset,
        config: EngineConfig,
        shape: TileShape,
    ) -> Result<TenantPlacement, RegistryError> {
        let engine = FebimEngine::fit_tiled(train_data, config, shape)?;
        self.admit(id, engine)
    }

    /// Registers a pre-built tiled engine under `id` and places it.
    ///
    /// # Errors
    ///
    /// Same as [`ModelRegistry::register`] minus the training errors.
    pub fn register_engine(
        &self,
        id: u64,
        engine: FebimEngine<TiledFabricBackend>,
    ) -> Result<TenantPlacement, RegistryError> {
        self.admit(id, engine)
    }

    fn admit(
        &self,
        id: u64,
        engine: FebimEngine<TiledFabricBackend>,
    ) -> Result<TenantPlacement, RegistryError> {
        let program = engine.tiled_program().clone();
        let tiles = program.plan().tile_count();
        if tiles > self.config.tiles_per_bank {
            return Err(RegistryError::Capacity {
                tiles,
                budget: self.config.tiles_per_bank,
            });
        }
        let stored = StoredModel {
            config: engine.config().clone(),
            model: engine.shared_model(),
            quantized: engine.shared_quantized(),
            program,
            tiles,
        };
        let mut state = self.lock_state();
        if state.catalog.contains_key(&id) {
            return Err(RegistryError::DuplicateModel { model: id });
        }
        state.catalog.insert(id, stored);
        let result = self.install(&mut state, id, Some(engine));
        Self::finish_install(state, result)
    }

    /// Drops the state lock, then waits out the posted swap (if any): the
    /// swap is serviced by the target bank's worker between batches and
    /// needs no registry state, so other tenants' serves proceed while it
    /// completes.
    fn finish_install(
        guard: std::sync::MutexGuard<'_, RegistryState>,
        result: Result<(TenantPlacement, Option<SwapTicket>), RegistryError>,
    ) -> Result<TenantPlacement, RegistryError> {
        drop(guard);
        let (mut placement, ticket) = result?;
        if let Some(ticket) = ticket {
            placement.swap = Some(ticket.wait()?);
        }
        Ok(placement)
    }

    /// Serves one routed request, transparently faulting the model back in
    /// (hot-swap reprogramming a bank) when it was evicted.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered id, plus
    /// serving/inference errors.
    pub fn serve(&self, model: u64, sample: &[f64]) -> Result<ServeOutcome, RegistryError> {
        for _ in 0..FAULT_IN_ATTEMPTS {
            self.ensure_resident(model)?;
            match self
                .pool
                .submit_routed_blocking(model, sample.to_vec())
                .and_then(Ticket::wait)
            {
                Ok(outcome) => return Ok(outcome),
                // The model was evicted between the fault-in and the
                // dispatch (another tenant's install raced it): fault it
                // back in and retry.
                Err(ServingError::ModelUnavailable { .. }) => continue,
                Err(err) => return Err(RegistryError::Serving(err)),
            }
        }
        Err(RegistryError::Serving(ServingError::ModelUnavailable {
            model,
        }))
    }

    /// Serves every sample against `model`, in order.
    pub fn serve_many(
        &self,
        model: u64,
        samples: &[Vec<f64>],
    ) -> Vec<Result<ServeOutcome, RegistryError>> {
        samples
            .iter()
            .map(|sample| self.serve(model, sample))
            .collect()
    }

    /// Explicitly evicts a resident model: its tiles are erased (the swap
    /// is priced and serviced between the bank's batches) and the model
    /// stays in the catalog for later fault-in.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered id. Evicting a
    /// model that is not resident is a no-op returning `None`.
    pub fn evict(&self, model: u64) -> Result<Option<SwapReport>, RegistryError> {
        let mut state = self.lock_state();
        if !state.catalog.contains_key(&model) {
            return Err(RegistryError::UnknownModel { model });
        }
        let Some(placement) = state.resident.remove(&model) else {
            return Ok(None);
        };
        state.used[placement.bank] -= placement.tiles;
        let ticket = self.pool.post_swap(
            placement.bank,
            vec![model],
            None::<(u64, FebimEngine<TiledFabricBackend>)>,
        );
        drop(state);
        Ok(Some(ticket.wait()?))
    }

    /// Serializes a registered model's compiled program (trained model,
    /// quantized tables, engine config, tiled program) to JSON.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for an unregistered id.
    pub fn snapshot(&self, model: u64) -> Result<String, RegistryError> {
        let state = self.lock_state();
        let stored = state
            .catalog
            .get(&model)
            .ok_or(RegistryError::UnknownModel { model })?;
        let snapshot = ModelSnapshot {
            id: model,
            config: stored.config.clone(),
            model: (*stored.model).clone(),
            quantized: (*stored.quantized).clone(),
            program: stored.program.clone(),
        };
        Ok(json::to_string(&snapshot))
    }

    /// Restores a model from a [`ModelRegistry::snapshot`] JSON string —
    /// no training data needed — registering it under its embedded id and
    /// placing it onto a bank.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Snapshot`] for undecodable bytes,
    /// [`RegistryError::DuplicateModel`] when the embedded id is already
    /// registered, plus placement errors.
    pub fn restore(&self, text: &str) -> Result<TenantPlacement, RegistryError> {
        let snapshot: ModelSnapshot =
            json::from_str(text).map_err(|err| RegistryError::Snapshot(err.to_string()))?;
        let tiles = snapshot.program.plan().tile_count();
        if tiles > self.config.tiles_per_bank {
            return Err(RegistryError::Capacity {
                tiles,
                budget: self.config.tiles_per_bank,
            });
        }
        let id = snapshot.id;
        let stored = StoredModel {
            config: snapshot.config,
            model: Arc::new(snapshot.model),
            quantized: Arc::new(snapshot.quantized),
            program: snapshot.program,
            tiles,
        };
        let mut state = self.lock_state();
        if state.catalog.contains_key(&id) {
            return Err(RegistryError::DuplicateModel { model: id });
        }
        state.catalog.insert(id, stored);
        let result = self.install(&mut state, id, None);
        Self::finish_install(state, result)
    }

    /// Occupancy snapshot (banks, budgets, residents).
    pub fn report(&self) -> RegistryReport {
        let state = self.lock_state();
        RegistryReport {
            banks: self.config.banks,
            tiles_per_bank: self.config.tiles_per_bank,
            registered: state.catalog.len(),
            resident: state.resident.len(),
            tiles_used: state.used.clone(),
        }
    }

    /// Bank currently hosting `model`, if it is resident.
    pub fn residence_of(&self, model: u64) -> Option<usize> {
        self.lock_state().resident.get(&model).map(|p| p.bank)
    }

    /// Shuts the underlying pool down gracefully and returns its serving
    /// statistics (hot-swap pulse and energy totals included).
    pub fn shutdown(self) -> PoolStats {
        self.pool.shutdown()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, RegistryState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Makes `model` resident, faulting it in from the catalog (rebuilding
    /// and reprogramming its engine) if it was evicted.
    fn ensure_resident(&self, model: u64) -> Result<TenantPlacement, RegistryError> {
        let mut state = self.lock_state();
        if !state.catalog.contains_key(&model) {
            return Err(RegistryError::UnknownModel { model });
        }
        let result = self.install(&mut state, model, None);
        Self::finish_install(state, result)
    }

    /// Places `model` onto a bank — already-resident models just refresh
    /// their LRU stamp — evicting least-recently-served tenants when the
    /// chosen bank is over budget, and posts the hot swap to the bank's
    /// worker, returning its ticket for the caller to await *after*
    /// releasing the state lock (see [`ModelRegistry::finish_install`]).
    /// `engine` carries the pre-built engine of a fresh registration; on a
    /// fault-in it is rebuilt from the catalog through
    /// [`TiledFabricBackend::with_program`] (the real model-load-from-parts
    /// path).
    fn install(
        &self,
        state: &mut RegistryState,
        model: u64,
        engine: Option<FebimEngine<TiledFabricBackend>>,
    ) -> Result<(TenantPlacement, Option<SwapTicket>), RegistryError> {
        let stamp = state.tick();
        if let Some(placement) = state.resident.get_mut(&model) {
            placement.last_used = stamp;
            let placement = *placement;
            return Ok((
                TenantPlacement {
                    model,
                    bank: placement.bank,
                    tiles: placement.tiles,
                    evicted: Vec::new(),
                    swap: None,
                },
                None,
            ));
        }
        let Some(stored) = state.catalog.get(&model) else {
            return Err(RegistryError::UnknownModel { model });
        };
        let tiles = stored.tiles;
        let budget = self.config.tiles_per_bank;
        if tiles > budget {
            return Err(RegistryError::Capacity { tiles, budget });
        }
        let engine = match engine {
            Some(engine) => engine,
            None => {
                // Fault-in: rebuild the engine from the catalog's compiled
                // program (the snapshot/restore path exercises the same
                // constructor, so a restored model is bit-identical to a
                // freshly fitted one).
                let program = stored.program.clone();
                FebimEngine::from_parts(
                    Arc::clone(&stored.model),
                    Arc::clone(&stored.quantized),
                    stored.config.clone(),
                    |quantized, config| {
                        TiledFabricBackend::with_program(quantized, config, program)
                    },
                )?
            }
        };
        // Best fit: the serving bank with the least free budget that still
        // fits, so large future tenants keep a roomy bank available.
        let bank = (0..self.config.banks)
            .filter(|&bank| budget - state.used[bank] >= tiles)
            .min_by_key(|&bank| budget - state.used[bank]);
        let (bank, evicted) = match bank {
            Some(bank) => (bank, Vec::new()),
            None => {
                // Every bank is over budget for this program: evict the
                // least-recently-served tenants from the bank hosting the
                // globally coldest one until the program fits.
                let Some(coldest) = state
                    .resident
                    .values()
                    .min_by_key(|placement| placement.last_used)
                    .map(|placement| placement.bank)
                else {
                    // No residents yet means every bank is empty, so the
                    // filter above must have matched; keep the error typed
                    // rather than panicking if it ever does not.
                    return Err(RegistryError::Capacity { tiles, budget });
                };
                let mut tenants: Vec<(u64, u64, usize)> = state
                    .resident
                    .iter()
                    .filter(|(_, placement)| placement.bank == coldest)
                    .map(|(&id, placement)| (placement.last_used, id, placement.tiles))
                    .collect();
                tenants.sort_unstable();
                let mut evicted = Vec::new();
                for (_, id, freed) in tenants {
                    if budget - state.used[coldest] >= tiles {
                        break;
                    }
                    state.resident.remove(&id);
                    state.used[coldest] -= freed;
                    evicted.push(id);
                }
                if budget - state.used[coldest] < tiles {
                    return Err(RegistryError::Capacity { tiles, budget });
                }
                (coldest, evicted)
            }
        };
        state.used[bank] += tiles;
        state.resident.insert(
            model,
            Placement {
                bank,
                tiles,
                last_used: stamp,
            },
        );
        let ticket = self
            .pool
            .post_swap(bank, evicted.clone(), Some((model, engine)));
        Ok((
            TenantPlacement {
                model,
                bank,
                tiles,
                evicted,
                swap: None,
            },
            Some(ticket),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InferenceStep;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use proptest::prelude::*;

    fn split_for(seed: u64) -> (Dataset, Dataset) {
        let dataset = iris_like(seed).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
        (split.train, split.test)
    }

    fn samples_of(test: &Dataset) -> Vec<Vec<f64>> {
        (0..test.n_samples())
            .map(|index| test.sample(index).unwrap().to_vec())
            .collect()
    }

    fn shape() -> TileShape {
        TileShape::new(2, 24).unwrap()
    }

    /// (engine, its test samples, its sequential per-sample reference).
    fn tenant(
        seed: u64,
    ) -> (
        FebimEngine<TiledFabricBackend>,
        Vec<Vec<f64>>,
        Vec<InferenceStep>,
    ) {
        let (train, test) = split_for(seed);
        let engine =
            FebimEngine::fit_tiled(&train, EngineConfig::febim_default(), shape()).unwrap();
        let samples = samples_of(&test);
        let mut scratch = engine.make_scratch();
        let sequential = samples
            .iter()
            .map(|sample| engine.infer_into(sample, &mut scratch).unwrap())
            .collect();
        (engine, samples, sequential)
    }

    fn assert_bit_identical(
        answers: &[Result<ServeOutcome, RegistryError>],
        reference: &[InferenceStep],
    ) {
        assert_eq!(answers.len(), reference.len());
        for (answer, step) in answers.iter().zip(reference) {
            let outcome = answer.as_ref().unwrap();
            assert_eq!(outcome.prediction, step.prediction);
            assert_eq!(outcome.tie_broken, step.tie_broken);
            assert_eq!(outcome.delay, step.delay);
            assert_eq!(outcome.energy, step.energy);
        }
    }

    #[test]
    fn config_validation_and_error_display() {
        assert!(RegistryConfig::new(0, 4).validate().is_err());
        assert!(RegistryConfig::new(2, 0).validate().is_err());
        assert!(RegistryConfig::new(2, 4).validate().is_ok());
        assert!(RegistryError::UnknownModel { model: 9 }
            .to_string()
            .contains('9'));
        assert!(RegistryError::Capacity {
            tiles: 8,
            budget: 4
        }
        .to_string()
        .contains('8'));
        assert!(RegistryError::Serving(ServingError::ShutDown)
            .source()
            .is_some());
    }

    /// Tentpole acceptance: three tenants registered onto a two-bank fleet
    /// route by model id and answer bit-identically to their own
    /// single-tenant engines.
    #[test]
    fn registry_serves_three_tenants_bit_identically() {
        let (engine_a, samples_a, reference_a) = tenant(950);
        let (engine_b, samples_b, reference_b) = tenant(951);
        let (engine_c, samples_c, reference_c) = tenant(952);
        let tiles = engine_a.tiled_program().plan().tile_count();
        let registry = ModelRegistry::new(RegistryConfig::new(2, 2 * tiles)).unwrap();
        let placed = registry.register_engine(1, engine_a).unwrap();
        assert_eq!(placed.model, 1);
        assert!(placed.evicted.is_empty());
        let swap = placed.swap.unwrap();
        assert!(swap.program.pulses > 0);
        assert!(swap.program.energy_j > 0.0);
        registry.register_engine(2, engine_b).unwrap();
        registry.register_engine(3, engine_c).unwrap();
        let report = registry.report();
        assert_eq!(report.registered, 3);
        assert_eq!(report.resident, 3);
        assert_bit_identical(&registry.serve_many(1, &samples_a), &reference_a);
        assert_bit_identical(&registry.serve_many(2, &samples_b), &reference_b);
        assert_bit_identical(&registry.serve_many(3, &samples_c), &reference_c);
        assert!(matches!(
            registry.serve(99, &samples_a[0]),
            Err(RegistryError::UnknownModel { model: 99 })
        ));
        let stats = registry.shutdown();
        assert_eq!(stats.swaps, 3);
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.unrouted, 0);
    }

    #[test]
    fn duplicate_and_oversized_registrations_are_rejected() {
        let (engine, _, _) = tenant(953);
        let tiles = engine.tiled_program().plan().tile_count();
        let registry = ModelRegistry::new(RegistryConfig::new(1, tiles)).unwrap();
        registry.register_engine(1, engine.clone()).unwrap();
        assert!(matches!(
            registry.register_engine(1, engine.clone()),
            Err(RegistryError::DuplicateModel { model: 1 })
        ));
        let small = ModelRegistry::new(RegistryConfig::new(1, tiles - 1)).unwrap();
        assert!(matches!(
            small.register_engine(2, engine),
            Err(RegistryError::Capacity { .. })
        ));
    }

    /// Cold tenants are evicted least-recently-served first, their tiles
    /// erased in place, and they fault back in transparently on the next
    /// request — still bit-identical to a freshly programmed grid.
    #[test]
    fn lru_eviction_and_transparent_fault_in() {
        let (engine_a, samples_a, reference_a) = tenant(954);
        let (engine_b, samples_b, reference_b) = tenant(955);
        let (engine_c, samples_c, reference_c) = tenant(956);
        let tiles = engine_a.tiled_program().plan().tile_count();
        // Each bank holds exactly one tenant: the third registration must
        // evict the least-recently-served of the first two.
        let registry = ModelRegistry::new(RegistryConfig::new(2, tiles)).unwrap();
        registry.register_engine(1, engine_a).unwrap();
        registry.register_engine(2, engine_b).unwrap();
        let placed = registry.register_engine(3, engine_c).unwrap();
        assert_eq!(placed.evicted, vec![1]);
        let swap = placed.swap.unwrap();
        assert!(swap.erase.pulses > 0, "eviction must erase in place");
        assert!(swap.erase.energy_j > 0.0);
        assert_eq!(registry.residence_of(1), None);
        assert!(registry.residence_of(2).is_some());
        assert!(registry.residence_of(3).is_some());
        // Survivors read bit-identically after the swap.
        assert_bit_identical(&registry.serve_many(2, &samples_b), &reference_b);
        assert_bit_identical(&registry.serve_many(3, &samples_c), &reference_c);
        // The evicted tenant faults back in on its next request (evicting
        // the now-coldest resident) and reads bit-identically too.
        assert_bit_identical(&registry.serve_many(1, &samples_a), &reference_a);
        assert!(registry.residence_of(1).is_some());
        let report = registry.report();
        assert_eq!(report.registered, 3);
        assert_eq!(report.resident, 2);
        let stats = registry.shutdown();
        assert!(stats.swaps >= 4, "3 installs + ≥1 fault-in, got {stats:?}");
        assert!(stats.swap_pulses > 0);
        assert!(stats.swap_energy_j > 0.0);
        assert_eq!(stats.failed_requests, 0);
    }

    /// An explicit evict prices the erase and leaves the model reloadable.
    #[test]
    fn explicit_evict_is_priced_and_reversible() {
        let (engine, samples, reference) = tenant(957);
        let tiles = engine.tiled_program().plan().tile_count();
        let registry = ModelRegistry::new(RegistryConfig::new(1, tiles)).unwrap();
        registry.register_engine(1, engine).unwrap();
        let swap = registry.evict(1).unwrap().unwrap();
        assert!(swap.erase.pulses > 0);
        assert_eq!(registry.residence_of(1), None);
        // Evicting a non-resident model is a no-op; unknown ids are typed.
        assert!(registry.evict(1).unwrap().is_none());
        assert!(matches!(
            registry.evict(42),
            Err(RegistryError::UnknownModel { model: 42 })
        ));
        assert_bit_identical(&registry.serve_many(1, &samples), &reference);
    }

    /// Satellite: a model snapshot round-trips through the JSON serde shim
    /// — restore on a fresh registry rebuilds the engine from bytes (no
    /// training data) and serves bit-identically to the original.
    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let (engine, samples, reference) = tenant(958);
        let tiles = engine.tiled_program().plan().tile_count();
        let registry = ModelRegistry::new(RegistryConfig::new(1, tiles)).unwrap();
        registry.register_engine(7, engine).unwrap();
        let snapshot = registry.snapshot(7).unwrap();
        assert!(snapshot.contains("\"program\""));
        assert!(matches!(
            registry.snapshot(8),
            Err(RegistryError::UnknownModel { model: 8 })
        ));
        let restored = ModelRegistry::new(RegistryConfig::new(1, tiles)).unwrap();
        let placed = restored.restore(&snapshot).unwrap();
        assert_eq!(placed.model, 7);
        assert!(placed.swap.unwrap().program.pulses > 0);
        assert_bit_identical(&restored.serve_many(7, &samples), &reference);
        // A second restore of the same id is a duplicate; garbage is typed.
        assert!(matches!(
            restored.restore(&snapshot),
            Err(RegistryError::DuplicateModel { model: 7 })
        ));
        assert!(matches!(
            restored.restore("{not json"),
            Err(RegistryError::Snapshot(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite pin: after an arbitrary evict/install churn, surviving
        /// tenants read bit-identically to freshly programmed grids — the
        /// region-scoped erase of a departing neighbour never corrupts (or
        /// even invalidates) a survivor's tiles.
        #[test]
        fn post_swap_reads_match_freshly_programmed_grids(seed in 0u64..12) {
            let (engine_a, samples_a, reference_a) = tenant(seed);
            let (engine_b, samples_b, reference_b) = tenant(seed + 100);
            let tiles = engine_a.tiled_program().plan().tile_count();
            let registry = ModelRegistry::new(RegistryConfig::new(1, tiles)).unwrap();
            registry.register_engine(1, engine_a).unwrap();
            // B evicts A; A's next serve evicts B; then B faults back in.
            let placed = registry.register_engine(2, engine_b).unwrap();
            prop_assert_eq!(&placed.evicted, &vec![1u64]);
            for (index, sample) in samples_a.iter().enumerate().take(3) {
                let outcome = registry.serve(1, sample).unwrap();
                prop_assert_eq!(outcome.prediction, reference_a[index].prediction);
                prop_assert_eq!(outcome.delay, reference_a[index].delay);
                prop_assert_eq!(outcome.energy, reference_a[index].energy);
            }
            for (index, sample) in samples_b.iter().enumerate().take(3) {
                let outcome = registry.serve(2, sample).unwrap();
                prop_assert_eq!(outcome.prediction, reference_b[index].prediction);
                prop_assert_eq!(outcome.delay, reference_b[index].delay);
                prop_assert_eq!(outcome.energy, reference_b[index].energy);
            }
            let stats = registry.shutdown();
            prop_assert_eq!(stats.failed_requests, 0);
            prop_assert!(stats.swaps >= 4);
        }
    }
}
