//! Pluggable inference backends.
//!
//! The engine's physics is behind the [`InferenceBackend`] trait: a backend
//! owns whatever state it needs to answer "which class wins for this
//! sample?" and exposes the scratch-based inference contract the engine's
//! batched paths are built on. Three implementations ship with the crate:
//!
//! * [`SoftwareBackend`] — the exact FP64 [`GaussianNaiveBayes`] reference:
//!   no quantization, no devices, zero delay/energy. The ground truth every
//!   physical backend is compared against.
//! * [`CrossbarBackend`] — the paper's single-array engine: one
//!   conductance-cached [`CrossbarArray`] plus the current-mirror / WTA
//!   [`SensingChain`].
//! * [`TiledFabricBackend`] — a model sharded across a grid of fixed-size
//!   crossbar tiles ([`TileGrid`]): row-wise class sharding × column-wise
//!   evidence splitting, per-tile conductance caches, and a partial-sum
//!   aggregator that merges per-tile wordline currents before the fabric WTA.
//!   Reads are bit-identical to the monolithic backend holding the same
//!   program; only delay and energy reflect the tiling.
//!
//! `FebimEngine<B>` dispatches through the trait, so swapping the physics —
//! or serving a model bigger than one physical array — is a type parameter,
//! not a rewrite.

use std::sync::Arc;

use febim_bayes::{argmax, GaussianNaiveBayes};
use febim_circuit::{
    fabric_wordline_driver_energy, wordline_driver_energy, CircuitError, DelayBreakdown,
    InferenceEnergy, ReadGroup, SensingChain, TileGeometry,
};
use febim_crossbar::{
    apply_scheduled_fault, apply_scheduled_grid_fault, Activation, CrossbarArray, CrossbarLayout,
    FaultSchedule, LevelLadder, ProgrammingMode, RefreshOutcome, ScrubOutcome, TileGrid, TileShape,
};
use febim_device::{LevelProgrammer, VariationModel};
use febim_quant::{bit_offset_of, QuantizedGnbc};
use serde::{Deserialize, Serialize};

use crate::compiler::{compile, compile_tiled, CrossbarProgram, TiledProgram};
use crate::config::EngineConfig;
use crate::engine::{EvalScratch, InferenceStep};
use crate::errors::{CoreError, Result};

/// Which family of physics a backend implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Exact FP64 software evaluation (no devices).
    Software,
    /// One monolithic FeFET crossbar array.
    Crossbar,
    /// A grid of fixed-size FeFET crossbar tiles.
    TiledFabric,
}

/// Descriptive metadata of an inference backend.
///
/// Serialize-only: the `name` is a `&'static str` picked by the backend, so
/// the type is reporting output, never decoded back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BackendInfo {
    /// Backend family.
    pub kind: BackendKind,
    /// Stable human-readable backend name.
    pub name: &'static str,
    /// Events (classes) the backend decides between.
    pub events: usize,
    /// Evidence columns driven per read (0 for the software backend).
    pub columns: usize,
    /// Physical tiles backing the model (0 for the software backend).
    pub tiles: usize,
}

/// Per-batch telemetry of one grouped inference: how the batch prices as a
/// read group versus the same reads issued sequentially.
///
/// Per-sample [`InferenceStep`]s of a batch are always bit-identical to
/// sequential inference; the telemetry is where batching shows up. Backends
/// that support grouped reads (`amortized == true`) settle the array once
/// and hold the wordline bias across the group, so `delay`/`energy` price
/// below the `sequential_*` baselines; the default implementation simply
/// sums the per-read figures (`amortized == false`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Number of inferences in the batch.
    pub reads: usize,
    /// Modeled delay of the whole batch.
    pub delay: DelayBreakdown,
    /// Modeled energy of the whole batch.
    pub energy: InferenceEnergy,
    /// Σ per-read total delays (what the batch costs issued one by one).
    pub sequential_delay: f64,
    /// Σ per-read total energies of the sequential baseline.
    pub sequential_energy: f64,
    /// Whether the backend amortized settling/drivers across the group.
    pub amortized: bool,
}

impl BatchTelemetry {
    /// Telemetry of an empty batch.
    pub fn empty(amortized: bool) -> Self {
        Self {
            reads: 0,
            delay: DelayBreakdown {
                array: 0.0,
                sensing: 0.0,
            },
            energy: InferenceEnergy {
                array: 0.0,
                sensing: 0.0,
            },
            sequential_delay: 0.0,
            sequential_energy: 0.0,
            amortized,
        }
    }

    /// Telemetry of an amortized read group.
    pub(crate) fn from_group(group: &ReadGroup) -> Self {
        Self {
            reads: group.reads(),
            delay: group.delay(),
            energy: group.energy(),
            sequential_delay: group.sequential_delay(),
            sequential_energy: group.sequential_energy(),
            amortized: true,
        }
    }

    /// Batched-over-sequential delay ratio (≤ 1 for amortized groups; 1.0
    /// for an empty or cost-free batch).
    pub fn delay_ratio(&self) -> f64 {
        if self.sequential_delay > 0.0 {
            self.delay.total() / self.sequential_delay
        } else {
            1.0
        }
    }

    /// Batched-over-sequential energy ratio (≤ 1 for amortized groups; 1.0
    /// for an empty or cost-free batch).
    pub fn energy_ratio(&self) -> f64 {
        if self.sequential_energy > 0.0 {
            self.energy.total() / self.sequential_energy
        } else {
            1.0
        }
    }
}

/// Write-pulse cost of moving a model on or off a physical backend: the
/// Preisach pulse-train length and the programming energy of either
/// programming a compiled model onto erased cells
/// ([`InferenceBackend::program_cost`]) or erasing its region back to the
/// blank state ([`InferenceBackend::decommission`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SwapCost {
    /// Σ write/erase pulses applied (or required).
    pub pulses: u64,
    /// Σ programming energy in joules.
    pub energy_j: f64,
}

impl SwapCost {
    /// Adds another cost into this one.
    pub fn absorb(&mut self, other: SwapCost) {
        self.pulses += other.pulses;
        self.energy_j += other.energy_j;
    }
}

/// A pluggable inference engine core.
///
/// Implementations own their full physical (or mathematical) state; the
/// engine wraps one and adds dataset-level bookkeeping. The scratch-based
/// contract mirrors the engine API: [`InferenceBackend::make_scratch`] once,
/// then any number of allocation-free [`InferenceBackend::infer_into`] calls.
pub trait InferenceBackend {
    /// Descriptive metadata (kind, name, geometry).
    fn info(&self) -> BackendInfo;

    /// Creates a scratch sized for this backend's geometry.
    fn make_scratch(&self) -> EvalScratch;

    /// Runs one inference for a continuous sample, reusing the caller's
    /// scratch buffers. The per-class scores of the decision remain available
    /// through [`EvalScratch::wordline_currents`].
    ///
    /// # Errors
    ///
    /// Propagates discretization, read and sensing errors.
    fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> Result<InferenceStep>;

    /// Runs one inference per sample of a batch, writing one
    /// [`InferenceStep`] per sample into `steps` (cleared first) and
    /// returning the batch-level telemetry.
    ///
    /// The contract every implementation must honor: per-sample steps (and
    /// the final [`EvalScratch::wordline_currents`], which reflect the last
    /// sample of the batch) are **bit-identical** to sequential
    /// [`InferenceBackend::infer_into`] calls on the same backend — batching
    /// may only change *how the group is priced*, never what it decides.
    ///
    /// The default implementation loops `infer_into` and sums the per-read
    /// telemetry; backends with grouped-read support specialize it to
    /// amortize array settling and wordline drivers across the batch.
    ///
    /// # Errors
    ///
    /// Propagates per-sample inference errors (the batch stops at the first
    /// failing sample; `steps` holds the completed prefix).
    fn infer_batch_into(
        &self,
        samples: &[Vec<f64>],
        scratch: &mut EvalScratch,
        steps: &mut Vec<InferenceStep>,
    ) -> Result<BatchTelemetry> {
        steps.clear();
        let mut telemetry = BatchTelemetry::empty(false);
        for sample in samples {
            let step = self.infer_into(sample, scratch)?;
            telemetry.reads += 1;
            telemetry.delay.array += step.delay.array;
            telemetry.delay.sensing += step.delay.sensing;
            telemetry.energy.array += step.energy.array;
            telemetry.energy.sensing += step.energy.sensing;
            steps.push(step);
        }
        telemetry.sequential_delay = telemetry.delay.total();
        telemetry.sequential_energy = telemetry.energy.total();
        Ok(telemetry)
    }

    /// Re-establishes the backend's physical state from its compiled model
    /// (programming the cells and re-applying the configured device
    /// variation). A no-op for stateless backends.
    ///
    /// # Errors
    ///
    /// Propagates programming errors.
    fn reprogram(&mut self) -> Result<()>;

    /// Read-current state map of the backend's cells, flattened row-major
    /// into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedOperation`] for backends without
    /// physical state.
    fn current_map_into(&self, out: &mut Vec<f64>) -> Result<()>;

    /// Advances the backend's physical clock by `ticks`, aging every cell
    /// under the configured retention-drift model. A no-op for backends
    /// without time-varying state.
    fn advance_time(&mut self, _ticks: u64) {}

    /// The backend's physical clock in ticks (0 for stateless backends).
    fn clock(&self) -> u64 {
        0
    }

    /// Monotone version counter of the backend's physical state. Any event
    /// that can change a cached conductance — programming, variation,
    /// aging, accumulated read disturb, recalibration — bumps it, so a
    /// scheduler can skip drift scans while the epoch is unchanged.
    fn state_epoch(&self) -> u64 {
        0
    }

    /// The largest effective threshold-voltage shift (drift plus disturb,
    /// in volts) currently degrading any programmed cell. Stateless
    /// backends report 0.
    fn worst_effective_shift(&self) -> f64 {
        0.0
    }

    /// Reprograms every cell whose effective threshold shift exceeds
    /// `max_vth_shift` volts back to its target level, resetting the cell's
    /// age and disturb counters. Returns the work done (pulses, energy,
    /// rows refreshed); stateless backends return an all-zero outcome.
    ///
    /// # Errors
    ///
    /// Propagates programming errors.
    fn recalibrate(&mut self, _max_vth_shift: f64) -> Result<RefreshOutcome> {
        Ok(RefreshOutcome::default())
    }

    /// BIST-style scrub pass: read-verifies every programmed cell against
    /// its target signature, repairs transient defects by reprogramming in
    /// place and — on tiled fabrics — remaps rows holding stuck cells onto
    /// spare physical rows. Unrepairable defects come back flagged in the
    /// outcome's reports so the owner (e.g. a serving pool) can quarantine
    /// the replica. Stateless backends have nothing to scrub and return a
    /// clean all-zero outcome.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from repair writes.
    fn scrub(&mut self, _max_vth_shift: f64) -> Result<ScrubOutcome> {
        Ok(ScrubOutcome::default())
    }

    /// Installs a deterministic chaos schedule: as
    /// [`InferenceBackend::advance_time`] moves the physical clock past an
    /// event's strike tick, the event corrupts its cell (and latches it
    /// stuck when permanent). Replaces any previously installed schedule;
    /// a no-op for stateless backends.
    fn set_fault_schedule(&mut self, _schedule: FaultSchedule) {}

    /// Scheduled chaos events not yet delivered (0 for stateless backends
    /// or when no schedule is installed).
    fn pending_faults(&self) -> usize {
        0
    }

    /// Preisach-priced cost of programming this backend's compiled model
    /// onto erased cells: the pulse-train length and programming energy the
    /// registry charges when the model is hot-swapped onto a fleet region.
    /// `None` for backends without a physical program (software, mocks).
    fn program_cost(&self) -> Option<SwapCost> {
        None
    }

    /// Erases the backend's programmed region back to the blank state —
    /// the tear-down half of a hot swap: one nominal erase pulse per
    /// occupied cell, priced like write pulses, with cache invalidation
    /// scoped to the touched tiles. Returns the erase cost, or `Ok(None)`
    /// for backends without physical state.
    ///
    /// # Errors
    ///
    /// Propagates erase/programming errors.
    fn decommission(&mut self) -> Result<Option<SwapCost>> {
        Ok(None)
    }
}

/// Discretizes every sample of a batch into one activation per read,
/// reusing (and growing on demand) the scratch's activation pool. Shared by
/// the grouped-read paths of the physical backends.
fn fill_batch_activations(
    quantized: &QuantizedGnbc,
    layout: &CrossbarLayout,
    samples: &[Vec<f64>],
    scratch: &mut EvalScratch,
) -> Result<()> {
    if scratch.batch_activations.len() < samples.len() {
        let template = Activation::empty(layout);
        scratch.batch_activations.resize(samples.len(), template);
    }
    for (index, sample) in samples.iter().enumerate() {
        quantized.discretize_sample_into(sample, &mut scratch.evidence)?;
        scratch.batch_activations[index].set_observation(layout, &scratch.evidence)?;
    }
    Ok(())
}

/// Builds the level programmer shared by the physical backends.
fn level_programmer(config: &EngineConfig, state_count: usize) -> Result<LevelProgrammer> {
    Ok(LevelProgrammer::new(
        config.device.clone(),
        state_count,
        febim_device::programming::DEFAULT_MIN_READ_CURRENT,
        febim_device::programming::DEFAULT_MAX_READ_CURRENT,
    )?)
}

/// Precomputed geometry of the bit-plane read path, shared by both physical
/// backends. `None` on a backend means it reads one-hot.
#[derive(Debug, Clone)]
struct PackedRead {
    /// Bins packed into one multi-bit cell (`r = bits / Q_l`).
    digits_per_cell: usize,
    /// Bits per likelihood digit (`Q_l`).
    digit_bits: u32,
    /// Bit planes sensed per read (`Q_l`).
    planes: usize,
    /// Flash-ADC ladder digitizing cell on-currents back into stored values.
    ladder: LevelLadder,
    /// Current step of one merged-score unit on the shift-add bus.
    lsb_current: f64,
    /// Shared per-row current offset of the merged read.
    floor_current: f64,
}

impl PackedRead {
    /// Builds the packed-read geometry for a configuration, or `None` for
    /// one-hot encodings. `state_count` is the compiled program's state
    /// count (`2^bits` for packed programs), which sizes the ladder.
    fn for_config(config: &EngineConfig, state_count: usize) -> Result<Option<Self>> {
        if !config.encoding.is_packed() {
            return Ok(None);
        }
        let digit_bits = config.quant.likelihood_bits;
        Ok(Some(Self {
            digits_per_cell: config.encoding.digits_per_cell(digit_bits),
            digit_bits,
            planes: config.encoding.planes(digit_bits),
            ladder: LevelLadder::new(
                febim_device::programming::DEFAULT_MIN_READ_CURRENT,
                febim_device::programming::DEFAULT_MAX_READ_CURRENT,
                state_count,
            )?,
            lsb_current: febim_device::programming::DEFAULT_MIN_READ_CURRENT,
            floor_current: 0.0,
        }))
    }

    /// Total stored bits per multi-bit cell (`log2` of the cell's state
    /// count) — the number of multi-level sensing refinement steps one
    /// activated cell needs during a packed read.
    fn cell_bits(&self) -> usize {
        self.digits_per_cell * self.digit_bits as usize
    }

    /// Maps one read's discretized per-feature bins onto packed columns
    /// (written into `packed_evidence`, cleared first) and appends the
    /// activated columns' digit bit offsets to `bit_offsets` in activation
    /// order: the prior column first (offset zero) when the layout has one,
    /// then one packed column per feature.
    fn fill_observation(
        &self,
        evidence: &[usize],
        has_prior: bool,
        packed_evidence: &mut Vec<usize>,
        bit_offsets: &mut Vec<u8>,
    ) {
        packed_evidence.clear();
        if has_prior {
            bit_offsets.push(0);
        }
        for &bin in evidence {
            packed_evidence.push(bin / self.digits_per_cell);
            bit_offsets.push(bit_offset_of(bin, self.digits_per_cell, self.digit_bits) as u8);
        }
    }
}

/// The exact FP64 software reference backend.
///
/// Scores are unnormalized log posteriors (written into the scratch's score
/// buffer), the winner is their argmax, and delay/energy are zero — software
/// has no circuit to price.
#[derive(Debug, Clone)]
pub struct SoftwareBackend {
    model: Arc<GaussianNaiveBayes>,
}

impl SoftwareBackend {
    /// Wraps a trained model (shared with the engine by `Arc`).
    pub fn new(model: Arc<GaussianNaiveBayes>) -> Self {
        Self { model }
    }

    /// Borrow the wrapped model.
    pub fn model(&self) -> &GaussianNaiveBayes {
        self.model.as_ref()
    }
}

impl InferenceBackend for SoftwareBackend {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::Software,
            name: "software-gnbc",
            events: self.model.n_classes(),
            columns: 0,
            tiles: 0,
        }
    }

    fn make_scratch(&self) -> EvalScratch {
        EvalScratch {
            currents: Vec::with_capacity(self.model.n_classes()),
            ..EvalScratch::default()
        }
    }

    fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> Result<InferenceStep> {
        self.model
            .log_posteriors_into(sample, &mut scratch.currents)?;
        let winner = argmax(&scratch.currents).expect("at least one class");
        let best = scratch.currents[winner];
        let tie_broken = scratch
            .currents
            .iter()
            .filter(|&&score| score == best)
            .count()
            > 1;
        Ok(InferenceStep {
            prediction: winner,
            delay: DelayBreakdown {
                array: 0.0,
                sensing: 0.0,
            },
            energy: InferenceEnergy {
                array: 0.0,
                sensing: 0.0,
            },
            tie_broken,
        })
    }

    fn reprogram(&mut self) -> Result<()> {
        Ok(())
    }

    fn current_map_into(&self, _out: &mut Vec<f64>) -> Result<()> {
        Err(CoreError::UnsupportedOperation {
            backend: "software-gnbc",
            operation: "current_map",
        })
    }
}

/// The paper's single-array in-memory backend: one conductance-cached
/// crossbar plus the current-mirror / WTA sensing chain.
#[derive(Debug, Clone)]
pub struct CrossbarBackend {
    quantized: Arc<QuantizedGnbc>,
    program: CrossbarProgram,
    array: CrossbarArray,
    sensing: SensingChain,
    programming_mode: ProgrammingMode,
    variation: VariationModel,
    variation_seed: u64,
    /// Bit-plane read geometry (`None` for one-hot programs).
    packed: Option<PackedRead>,
    /// Pending chaos events delivered by [`InferenceBackend::advance_time`].
    fault_schedule: Option<FaultSchedule>,
}

impl CrossbarBackend {
    /// Compiles the quantized model into a crossbar program and programs a
    /// (possibly variation-affected) array.
    ///
    /// # Errors
    ///
    /// Propagates compilation and programming errors.
    pub fn new(quantized: Arc<QuantizedGnbc>, config: &EngineConfig) -> Result<Self> {
        let program = compile(&quantized, config.force_prior_column, config.encoding)?;
        let programmer = level_programmer(config, program.state_count())?;
        let packed = PackedRead::for_config(config, program.state_count())?;
        let array = CrossbarArray::with_non_idealities(
            *program.layout(),
            programmer,
            config.non_idealities,
        )?;
        let mut backend = Self {
            quantized,
            program,
            array,
            sensing: SensingChain::febim_calibrated(),
            programming_mode: config.programming_mode,
            variation: config.variation,
            variation_seed: config.variation_seed,
            packed,
            fault_schedule: None,
        };
        backend.reprogram()?;
        Ok(backend)
    }

    /// The compiled crossbar program.
    pub fn program(&self) -> &CrossbarProgram {
        &self.program
    }

    /// The programmed crossbar array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// The sensing chain (mirrors, WTA, delay and energy models).
    pub fn sensing(&self) -> &SensingChain {
        &self.sensing
    }

    /// Replaces the sensing chain (e.g. to study mirror mismatch).
    pub fn set_sensing(&mut self, sensing: SensingChain) {
        self.sensing = sensing;
    }

    /// Resolves one read whose wordline currents are already in the scratch:
    /// the shared tail of the sequential and grouped inference paths, so
    /// both decide (and price a single read) identically.
    fn sense_step(&self, activated: usize, scratch: &mut EvalScratch) -> Result<InferenceStep> {
        match self
            .sensing
            .sense_into(&scratch.currents, activated, &mut scratch.mirrored)
        {
            Ok(readout) => Ok(InferenceStep {
                prediction: readout.winner,
                delay: readout.delay,
                energy: readout.energy,
                tie_broken: false,
            }),
            Err(CircuitError::AmbiguousWinner { .. }) => {
                // Quantized posteriors can tie exactly; physical mismatch
                // would break the tie, we do it deterministically instead.
                let winner = argmax(&scratch.currents).expect("at least one wordline");
                let delay = self.sensing.delay_model().worst_case(
                    scratch.currents.len(),
                    activated.max(1),
                    self.sensing.wta(),
                    self.sensing.mirror().gain,
                )?;
                // `sense_into` leaves the scratch unspecified on error, so
                // re-mirror the currents before pricing the energy.
                self.sensing
                    .mirror()
                    .copy_all_into(&scratch.currents, &mut scratch.mirrored)?;
                let energy = self.sensing.energy_model().inference_with_mirrored(
                    &scratch.currents,
                    &scratch.mirrored,
                    activated,
                    delay.total(),
                    self.sensing.mirror(),
                    self.sensing.wta(),
                )?;
                Ok(InferenceStep {
                    prediction: winner,
                    delay,
                    energy,
                    tie_broken: true,
                })
            }
            Err(err) => Err(err.into()),
        }
    }

    /// Resolves one packed read whose plane partial sums are already in the
    /// scratch: merges them on the shift-add bus into `scratch.currents`
    /// (so [`EvalScratch::wordline_currents`] reports the merged scores as
    /// currents, exactly like a one-hot read) and prices the packed read.
    /// Integer packed scores tie far more often than analog sums, so the
    /// deterministic argmax tie-break is part of the expected path here.
    fn sense_packed_step(
        &self,
        packed: &PackedRead,
        activated: usize,
        scratch: &mut EvalScratch,
    ) -> Result<InferenceStep> {
        match self.sensing.sense_shift_add_into(
            &scratch.plane_sums,
            packed.planes,
            packed.cell_bits(),
            packed.lsb_current,
            packed.floor_current,
            activated,
            &mut scratch.currents,
            &mut scratch.mirrored,
        ) {
            Ok(readout) => Ok(InferenceStep {
                prediction: readout.winner,
                delay: readout.delay,
                energy: readout.energy,
                tie_broken: false,
            }),
            Err(CircuitError::AmbiguousWinner { .. }) => {
                // The merge ran before the WTA, so `scratch.currents` holds
                // the merged currents; break the tie deterministically and
                // price the read with the packed helpers.
                let winner = argmax(&scratch.currents).expect("at least one wordline");
                let delay = self.sensing.shift_add_delay(
                    scratch.currents.len(),
                    activated,
                    packed.planes,
                )?;
                self.sensing
                    .mirror()
                    .copy_all_into(&scratch.currents, &mut scratch.mirrored)?;
                let energy = self.sensing.shift_add_energy(
                    &scratch.currents,
                    &scratch.mirrored,
                    activated,
                    packed.planes,
                    packed.cell_bits(),
                    delay.total(),
                )?;
                Ok(InferenceStep {
                    prediction: winner,
                    delay,
                    energy,
                    tie_broken: true,
                })
            }
            Err(err) => Err(err.into()),
        }
    }
}

impl InferenceBackend for CrossbarBackend {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::Crossbar,
            name: "crossbar-single-array",
            events: self.array.layout().rows(),
            columns: self.array.layout().columns(),
            tiles: 1,
        }
    }

    fn make_scratch(&self) -> EvalScratch {
        EvalScratch {
            evidence: Vec::with_capacity(self.quantized.n_features()),
            activation: Some(Activation::empty(self.array.layout())),
            currents: Vec::with_capacity(self.array.layout().rows()),
            mirrored: Vec::with_capacity(self.array.layout().rows()),
            ..EvalScratch::default()
        }
    }

    fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> Result<InferenceStep> {
        self.quantized
            .discretize_sample_into(sample, &mut scratch.evidence)?;
        if let Some(packed) = &self.packed {
            let activated;
            {
                let EvalScratch {
                    evidence,
                    activation,
                    packed_evidence,
                    bit_offsets,
                    plane_sums,
                    level_scratch,
                    ..
                } = scratch;
                let activation =
                    activation.get_or_insert_with(|| Activation::empty(self.array.layout()));
                bit_offsets.clear();
                packed.fill_observation(
                    evidence,
                    self.array.layout().has_prior(),
                    packed_evidence,
                    bit_offsets,
                );
                activation.set_observation(self.array.layout(), packed_evidence)?;
                self.array.plane_partial_sums_into(
                    activation,
                    bit_offsets,
                    packed.planes,
                    &packed.ladder,
                    level_scratch,
                    plane_sums,
                )?;
                activated = activation.len();
            }
            return self.sense_packed_step(packed, activated, scratch);
        }
        let activation = scratch
            .activation
            .get_or_insert_with(|| Activation::empty(self.array.layout()));
        activation.set_observation(self.array.layout(), &scratch.evidence)?;
        self.array
            .wordline_currents_into(activation, &mut scratch.currents)?;
        let activated = activation.len();
        self.sense_step(activated, scratch)
    }

    fn infer_batch_into(
        &self,
        samples: &[Vec<f64>],
        scratch: &mut EvalScratch,
        steps: &mut Vec<InferenceStep>,
    ) -> Result<BatchTelemetry> {
        steps.clear();
        if samples.is_empty() {
            return Ok(BatchTelemetry::empty(true));
        }
        if let [sample] = samples {
            // Singleton fall-through: skip the batch scratch machinery and
            // price the plain sequential read as a group of one, so batching
            // is never slower than sequential at `max_batch == 1`.
            let step = self.infer_into(sample, scratch)?;
            let share = wordline_driver_energy(
                self.sensing.energy_model().params(),
                self.array.layout().rows(),
            );
            let mut group = ReadGroup::new();
            group.add(&step.delay, &step.energy, share)?;
            steps.push(step);
            return Ok(BatchTelemetry::from_group(&group));
        }
        if let Some(packed) = &self.packed {
            // Packed grouped read: one batched bit-plane kernel pass, then
            // per-read shift-add sensing — bit-identical to sequential
            // packed reads, priced as one amortized group.
            let layout = self.array.layout();
            if scratch.batch_activations.len() < samples.len() {
                let template = Activation::empty(layout);
                scratch.batch_activations.resize(samples.len(), template);
            }
            scratch.bit_offsets.clear();
            for (index, sample) in samples.iter().enumerate() {
                self.quantized
                    .discretize_sample_into(sample, &mut scratch.evidence)?;
                let EvalScratch {
                    evidence,
                    packed_evidence,
                    bit_offsets,
                    batch_activations,
                    ..
                } = scratch;
                packed.fill_observation(evidence, layout.has_prior(), packed_evidence, bit_offsets);
                batch_activations[index].set_observation(layout, packed_evidence)?;
            }
            {
                let EvalScratch {
                    bit_offsets,
                    batch_activations,
                    batch_currents,
                    level_scratch,
                    ..
                } = scratch;
                self.array.plane_partial_sums_batch_into(
                    &batch_activations[..samples.len()],
                    bit_offsets,
                    packed.planes,
                    &packed.ladder,
                    level_scratch,
                    batch_currents,
                )?;
            }
            let rows = layout.rows();
            let stride = rows * packed.planes;
            let share = wordline_driver_energy(self.sensing.energy_model().params(), rows);
            let mut group = ReadGroup::new();
            for read in 0..samples.len() {
                scratch.plane_sums.clear();
                scratch
                    .plane_sums
                    .extend_from_slice(&scratch.batch_currents[read * stride..(read + 1) * stride]);
                let activated = scratch.batch_activations[read].len();
                let step = self.sense_packed_step(packed, activated, scratch)?;
                group.add(&step.delay, &step.energy, share)?;
                steps.push(step);
            }
            return Ok(BatchTelemetry::from_group(&group));
        }
        fill_batch_activations(&self.quantized, self.array.layout(), samples, scratch)?;
        self.array.wordline_currents_batch_into(
            &scratch.batch_activations[..samples.len()],
            &mut scratch.batch_currents,
        )?;
        let rows = self.array.layout().rows();
        let share = wordline_driver_energy(self.sensing.energy_model().params(), rows);
        let mut group = ReadGroup::new();
        for read in 0..samples.len() {
            scratch.currents.clear();
            scratch
                .currents
                .extend_from_slice(&scratch.batch_currents[read * rows..(read + 1) * rows]);
            let activated = scratch.batch_activations[read].len();
            let step = self.sense_step(activated, scratch)?;
            group.add(&step.delay, &step.energy, share)?;
            steps.push(step);
        }
        Ok(BatchTelemetry::from_group(&group))
    }

    fn reprogram(&mut self) -> Result<()> {
        self.array
            .program_matrix(self.program.levels(), self.programming_mode)?;
        if self.variation.sigma_vth > 0.0 {
            let mut rng = VariationModel::seeded_rng(self.variation_seed);
            self.array.apply_variation(&self.variation, &mut rng);
        }
        Ok(())
    }

    fn current_map_into(&self, out: &mut Vec<f64>) -> Result<()> {
        self.array.current_map_into(out);
        Ok(())
    }

    fn advance_time(&mut self, ticks: u64) {
        self.array.advance_time(ticks);
        if let Some(schedule) = self.fault_schedule.as_mut() {
            let now = self.array.clock();
            for event in schedule.take_due(now) {
                // A schedule drawn for a different geometry can carry
                // out-of-range coordinates; dropping those events beats
                // panicking mid-serving.
                let _ = apply_scheduled_fault(
                    &mut self.array,
                    event.row,
                    event.column,
                    event.kind,
                    event.permanent,
                );
            }
        }
    }

    fn clock(&self) -> u64 {
        self.array.clock()
    }

    fn state_epoch(&self) -> u64 {
        self.array.state_epoch()
    }

    fn worst_effective_shift(&self) -> f64 {
        self.array.worst_effective_shift()
    }

    fn recalibrate(&mut self, max_vth_shift: f64) -> Result<RefreshOutcome> {
        Ok(self
            .array
            .recalibrate(max_vth_shift, self.programming_mode)?)
    }

    fn scrub(&mut self, max_vth_shift: f64) -> Result<ScrubOutcome> {
        Ok(self.array.scrub(max_vth_shift, self.programming_mode)?)
    }

    fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.fault_schedule = Some(schedule);
    }

    fn pending_faults(&self) -> usize {
        self.fault_schedule
            .as_ref()
            .map_or(0, FaultSchedule::pending)
    }
}

/// The tiled multi-array fabric backend: the compiled program sharded across
/// a [`TileGrid`] of fixed-size tiles, read through the fabric partial-sum
/// aggregation of the sensing chain.
#[derive(Debug, Clone)]
pub struct TiledFabricBackend {
    quantized: Arc<QuantizedGnbc>,
    tiled: TiledProgram,
    grid: TileGrid,
    sensing: SensingChain,
    /// Occupied geometry of every tile (grid row-major), with
    /// `activated_columns` zeroed; cloned into the scratch and filled per
    /// read.
    base_tiles: Vec<TileGeometry>,
    programming_mode: ProgrammingMode,
    variation: VariationModel,
    variation_seed: u64,
    /// Bit-plane read geometry (`None` for one-hot programs).
    packed: Option<PackedRead>,
    /// Pending chaos events delivered by [`InferenceBackend::advance_time`].
    fault_schedule: Option<FaultSchedule>,
}

impl TiledFabricBackend {
    /// Compiles the quantized model onto a grid of `shape`-sized tiles and
    /// programs the fabric.
    ///
    /// # Errors
    ///
    /// Propagates compilation, tile-planning and programming errors.
    pub fn new(
        quantized: Arc<QuantizedGnbc>,
        config: &EngineConfig,
        shape: TileShape,
    ) -> Result<Self> {
        let tiled = compile_tiled(
            &quantized,
            config.force_prior_column,
            shape,
            config.encoding,
        )?;
        Self::with_program(quantized, config, tiled)
    }

    /// Builds the fabric around an **already compiled** tiled program — the
    /// snapshot-restore path: a program deserialized from bytes is
    /// programmed straight onto a fresh grid, no recompilation (and no
    /// training data) required. The caller owns the contract that `tiled`
    /// was compiled from `quantized` under the same encoding as `config`.
    ///
    /// # Errors
    ///
    /// Propagates grid-construction and programming errors.
    pub fn with_program(
        quantized: Arc<QuantizedGnbc>,
        config: &EngineConfig,
        tiled: TiledProgram,
    ) -> Result<Self> {
        let programmer = level_programmer(config, tiled.state_count())?;
        let packed = PackedRead::for_config(config, tiled.state_count())?;
        let grid = TileGrid::with_non_idealities(*tiled.plan(), programmer, config.non_idealities)?;
        let plan = tiled.plan();
        let mut base_tiles = Vec::with_capacity(plan.tile_count());
        for tile_row in 0..plan.row_tiles() {
            for tile_col in 0..plan.col_tiles() {
                let (rows, columns) = plan.tile_dims(tile_row, tile_col)?;
                base_tiles.push(TileGeometry {
                    rows,
                    columns,
                    activated_columns: 0,
                });
            }
        }
        let mut backend = Self {
            quantized,
            tiled,
            grid,
            sensing: SensingChain::febim_calibrated(),
            base_tiles,
            programming_mode: config.programming_mode,
            variation: config.variation,
            variation_seed: config.variation_seed,
            packed,
            fault_schedule: None,
        };
        backend.reprogram()?;
        Ok(backend)
    }

    /// The compiled tiled program.
    pub fn tiled_program(&self) -> &TiledProgram {
        &self.tiled
    }

    /// The programmed tile grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The sensing chain (mirrors, WTA, delay and energy models).
    pub fn sensing(&self) -> &SensingChain {
        &self.sensing
    }

    /// Replaces the sensing chain (e.g. to study mirror mismatch).
    pub fn set_sensing(&mut self, sensing: SensingChain) {
        self.sensing = sensing;
    }

    /// Fills the caller's tile-geometry buffers with the activated-bitline
    /// counts of one read: per-tile-column counts first, then one
    /// [`TileGeometry`] per tile in grid row-major order.
    fn fill_tile_geometries(
        &self,
        activation: &Activation,
        tiles: &mut Vec<TileGeometry>,
        tile_activated: &mut Vec<usize>,
    ) {
        let plan = self.tiled.plan();
        let tile_columns = plan.shape().columns;
        tile_activated.clear();
        tile_activated.resize(plan.col_tiles(), 0);
        for &column in activation.active_columns() {
            tile_activated[column / tile_columns] += 1;
        }
        tiles.clear();
        tiles.extend_from_slice(&self.base_tiles);
        for (index, tile) in tiles.iter_mut().enumerate() {
            tile.activated_columns = tile_activated[index % plan.col_tiles()];
        }
    }

    /// Resolves one fabric read whose merged currents and tile geometries
    /// are already in the scratch: the shared tail of the sequential and
    /// grouped inference paths.
    fn sense_fabric_step(&self, scratch: &mut EvalScratch) -> Result<InferenceStep> {
        let col_tiles = self.tiled.plan().col_tiles();
        match self.sensing.sense_fabric_into(
            &scratch.currents,
            &scratch.tiles,
            col_tiles,
            &mut scratch.mirrored,
        ) {
            Ok(readout) => Ok(InferenceStep {
                prediction: readout.winner,
                delay: readout.delay,
                energy: readout.energy,
                tie_broken: false,
            }),
            Err(CircuitError::AmbiguousWinner { .. }) => {
                // Same deterministic tie-break as the monolithic backend: the
                // merged currents are bit-identical to a single array's, so
                // the broken tie lands on the same winner.
                let winner = argmax(&scratch.currents).expect("at least one wordline");
                let delay =
                    self.sensing
                        .fabric_delay(&scratch.tiles, col_tiles, scratch.currents.len())?;
                self.sensing
                    .mirror()
                    .copy_all_into(&scratch.currents, &mut scratch.mirrored)?;
                let energy = self.sensing.fabric_energy(
                    &scratch.currents,
                    &scratch.mirrored,
                    &scratch.tiles,
                    col_tiles,
                    delay.total(),
                )?;
                Ok(InferenceStep {
                    prediction: winner,
                    delay,
                    energy,
                    tie_broken: true,
                })
            }
            Err(err) => Err(err.into()),
        }
    }

    /// Resolves one packed fabric read whose plane partial sums and tile
    /// geometries are already in the scratch: the fabric counterpart of the
    /// monolithic backend's packed sense step, with the same deterministic
    /// tie-break over the merged currents.
    fn sense_packed_fabric_step(
        &self,
        packed: &PackedRead,
        scratch: &mut EvalScratch,
    ) -> Result<InferenceStep> {
        let col_tiles = self.tiled.plan().col_tiles();
        match self.sensing.sense_shift_add_fabric_into(
            &scratch.plane_sums,
            packed.planes,
            packed.cell_bits(),
            packed.lsb_current,
            packed.floor_current,
            &scratch.tiles,
            col_tiles,
            &mut scratch.currents,
            &mut scratch.mirrored,
        ) {
            Ok(readout) => Ok(InferenceStep {
                prediction: readout.winner,
                delay: readout.delay,
                energy: readout.energy,
                tie_broken: false,
            }),
            Err(CircuitError::AmbiguousWinner { .. }) => {
                let winner = argmax(&scratch.currents).expect("at least one wordline");
                let delay = self.sensing.shift_add_fabric_delay(
                    &scratch.tiles,
                    col_tiles,
                    scratch.currents.len(),
                    packed.planes,
                )?;
                self.sensing
                    .mirror()
                    .copy_all_into(&scratch.currents, &mut scratch.mirrored)?;
                let energy = self.sensing.shift_add_fabric_energy(
                    &scratch.currents,
                    &scratch.mirrored,
                    &scratch.tiles,
                    col_tiles,
                    packed.planes,
                    packed.cell_bits(),
                    delay.total(),
                )?;
                Ok(InferenceStep {
                    prediction: winner,
                    delay,
                    energy,
                    tie_broken: true,
                })
            }
            Err(err) => Err(err.into()),
        }
    }
}

impl InferenceBackend for TiledFabricBackend {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::TiledFabric,
            name: "tiled-fabric",
            events: self.grid.layout().rows(),
            columns: self.grid.layout().columns(),
            tiles: self.tiled.plan().tile_count(),
        }
    }

    fn make_scratch(&self) -> EvalScratch {
        EvalScratch {
            evidence: Vec::with_capacity(self.quantized.n_features()),
            activation: Some(Activation::empty(self.grid.layout())),
            currents: Vec::with_capacity(self.grid.layout().rows()),
            mirrored: Vec::with_capacity(self.grid.layout().rows()),
            tiles: Vec::with_capacity(self.base_tiles.len()),
            tile_activated: Vec::with_capacity(self.tiled.plan().col_tiles()),
            ..EvalScratch::default()
        }
    }

    fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> Result<InferenceStep> {
        self.quantized
            .discretize_sample_into(sample, &mut scratch.evidence)?;
        if let Some(packed) = &self.packed {
            {
                let EvalScratch {
                    evidence,
                    activation,
                    packed_evidence,
                    bit_offsets,
                    plane_sums,
                    level_scratch,
                    tiles,
                    tile_activated,
                    ..
                } = scratch;
                let activation =
                    activation.get_or_insert_with(|| Activation::empty(self.grid.layout()));
                bit_offsets.clear();
                packed.fill_observation(
                    evidence,
                    self.grid.layout().has_prior(),
                    packed_evidence,
                    bit_offsets,
                );
                activation.set_observation(self.grid.layout(), packed_evidence)?;
                self.grid.plane_partial_sums_into(
                    activation,
                    bit_offsets,
                    packed.planes,
                    &packed.ladder,
                    level_scratch,
                    plane_sums,
                )?;
                self.fill_tile_geometries(activation, tiles, tile_activated);
            }
            return self.sense_packed_fabric_step(packed, scratch);
        }
        {
            let EvalScratch {
                evidence,
                activation,
                currents,
                tiles,
                tile_activated,
                ..
            } = scratch;
            let activation =
                activation.get_or_insert_with(|| Activation::empty(self.grid.layout()));
            activation.set_observation(self.grid.layout(), evidence)?;
            self.grid.wordline_currents_into(activation, currents)?;
            self.fill_tile_geometries(activation, tiles, tile_activated);
        }
        self.sense_fabric_step(scratch)
    }

    fn infer_batch_into(
        &self,
        samples: &[Vec<f64>],
        scratch: &mut EvalScratch,
        steps: &mut Vec<InferenceStep>,
    ) -> Result<BatchTelemetry> {
        steps.clear();
        if samples.is_empty() {
            return Ok(BatchTelemetry::empty(true));
        }
        if let [sample] = samples {
            // Singleton fall-through: same contract as the monolithic
            // backend — a group of one read prices exactly like the read
            // itself, with none of the batch-scratch copies.
            let step = self.infer_into(sample, scratch)?;
            let share = fabric_wordline_driver_energy(
                self.sensing.energy_model().params(),
                &self.base_tiles,
            );
            let mut group = ReadGroup::new();
            group.add(&step.delay, &step.energy, share)?;
            steps.push(step);
            return Ok(BatchTelemetry::from_group(&group));
        }
        if let Some(packed) = &self.packed {
            // Packed grouped fabric read: same shape as the monolithic
            // packed batch, with the fabric kernel and fabric pricing.
            let layout = self.grid.layout();
            if scratch.batch_activations.len() < samples.len() {
                let template = Activation::empty(layout);
                scratch.batch_activations.resize(samples.len(), template);
            }
            scratch.bit_offsets.clear();
            for (index, sample) in samples.iter().enumerate() {
                self.quantized
                    .discretize_sample_into(sample, &mut scratch.evidence)?;
                let EvalScratch {
                    evidence,
                    packed_evidence,
                    bit_offsets,
                    batch_activations,
                    ..
                } = scratch;
                packed.fill_observation(evidence, layout.has_prior(), packed_evidence, bit_offsets);
                batch_activations[index].set_observation(layout, packed_evidence)?;
            }
            {
                let EvalScratch {
                    bit_offsets,
                    batch_activations,
                    batch_currents,
                    level_scratch,
                    ..
                } = scratch;
                self.grid.plane_partial_sums_batch_into(
                    &batch_activations[..samples.len()],
                    bit_offsets,
                    packed.planes,
                    &packed.ladder,
                    level_scratch,
                    batch_currents,
                )?;
            }
            let rows = layout.rows();
            let stride = rows * packed.planes;
            let share = fabric_wordline_driver_energy(
                self.sensing.energy_model().params(),
                &self.base_tiles,
            );
            let mut group = ReadGroup::new();
            for read in 0..samples.len() {
                scratch.plane_sums.clear();
                scratch
                    .plane_sums
                    .extend_from_slice(&scratch.batch_currents[read * stride..(read + 1) * stride]);
                {
                    let EvalScratch {
                        batch_activations,
                        tiles,
                        tile_activated,
                        ..
                    } = scratch;
                    self.fill_tile_geometries(&batch_activations[read], tiles, tile_activated);
                }
                let step = self.sense_packed_fabric_step(packed, scratch)?;
                group.add(&step.delay, &step.energy, share)?;
                steps.push(step);
            }
            return Ok(BatchTelemetry::from_group(&group));
        }
        fill_batch_activations(&self.quantized, self.grid.layout(), samples, scratch)?;
        self.grid.wordline_currents_batch_into(
            &scratch.batch_activations[..samples.len()],
            &mut scratch.batch_currents,
        )?;
        let rows = self.grid.layout().rows();
        let share =
            fabric_wordline_driver_energy(self.sensing.energy_model().params(), &self.base_tiles);
        let mut group = ReadGroup::new();
        for read in 0..samples.len() {
            scratch.currents.clear();
            scratch
                .currents
                .extend_from_slice(&scratch.batch_currents[read * rows..(read + 1) * rows]);
            {
                let EvalScratch {
                    batch_activations,
                    tiles,
                    tile_activated,
                    ..
                } = scratch;
                self.fill_tile_geometries(&batch_activations[read], tiles, tile_activated);
            }
            let step = self.sense_fabric_step(scratch)?;
            group.add(&step.delay, &step.energy, share)?;
            steps.push(step);
        }
        Ok(BatchTelemetry::from_group(&group))
    }

    fn reprogram(&mut self) -> Result<()> {
        self.grid
            .program_matrix(self.tiled.program().levels(), self.programming_mode)?;
        if self.variation.sigma_vth > 0.0 {
            let mut rng = VariationModel::seeded_rng(self.variation_seed);
            self.grid.apply_variation(&self.variation, &mut rng);
        }
        Ok(())
    }

    fn program_cost(&self) -> Option<SwapCost> {
        let programmer = self.grid.programmer();
        let mut cost = SwapCost::default();
        for row in self.tiled.program().levels() {
            for level in row.iter().flatten() {
                let state = programmer.state_for_level(*level).ok()?;
                cost.pulses += u64::from(state.write_config.pulse_count) + 1;
                cost.energy_j += programmer.write_energy(*level).ok()?;
            }
        }
        Some(cost)
    }

    fn decommission(&mut self) -> Result<Option<SwapCost>> {
        let layout = *self.tiled.plan().layout();
        let outcome = self
            .grid
            .erase_region(0..layout.rows(), 0..layout.columns())?;
        Ok(Some(SwapCost {
            pulses: outcome.pulses_applied,
            energy_j: outcome.energy_joules,
        }))
    }

    fn current_map_into(&self, out: &mut Vec<f64>) -> Result<()> {
        self.grid.current_map_into(out);
        Ok(())
    }

    fn advance_time(&mut self, ticks: u64) {
        self.grid.advance_time(ticks);
        if let Some(schedule) = self.fault_schedule.as_mut() {
            let now = self.grid.clock();
            for event in schedule.take_due(now) {
                // Same out-of-range tolerance as the monolithic backend.
                let _ = apply_scheduled_grid_fault(
                    &mut self.grid,
                    event.row,
                    event.column,
                    event.kind,
                    event.permanent,
                );
            }
        }
    }

    fn clock(&self) -> u64 {
        self.grid.clock()
    }

    fn state_epoch(&self) -> u64 {
        self.grid.state_epoch()
    }

    fn worst_effective_shift(&self) -> f64 {
        self.grid.worst_effective_shift()
    }

    fn recalibrate(&mut self, max_vth_shift: f64) -> Result<RefreshOutcome> {
        Ok(self
            .grid
            .recalibrate(max_vth_shift, self.programming_mode)?)
    }

    fn scrub(&mut self, max_vth_shift: f64) -> Result<ScrubOutcome> {
        Ok(self.grid.scrub(max_vth_shift, self.programming_mode)?)
    }

    fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.fault_schedule = Some(schedule);
    }

    fn pending_faults(&self) -> usize {
        self.fault_schedule
            .as_ref()
            .map_or(0, FaultSchedule::pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use febim_device::NonIdealityStack;
    use febim_quant::{Encoding, QuantConfig};

    fn trained() -> (
        Arc<GaussianNaiveBayes>,
        Arc<QuantizedGnbc>,
        febim_data::Dataset,
    ) {
        let dataset = iris_like(90).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(90)).unwrap();
        let model = GaussianNaiveBayes::fit(&split.train).unwrap();
        let quantized =
            QuantizedGnbc::quantize(&model, &split.train, QuantConfig::febim_optimal()).unwrap();
        (Arc::new(model), Arc::new(quantized), split.test)
    }

    #[test]
    fn software_backend_matches_the_model_exactly() {
        let (model, _, test) = trained();
        let backend = SoftwareBackend::new(Arc::clone(&model));
        let mut scratch = backend.make_scratch();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let step = backend.infer_into(sample, &mut scratch).unwrap();
            assert_eq!(step.prediction, model.predict(sample).unwrap());
            assert_eq!(
                scratch.wordline_currents(),
                &model.log_posteriors(sample).unwrap()[..]
            );
            assert_eq!(step.delay.total(), 0.0);
            assert_eq!(step.energy.total(), 0.0);
        }
        let info = backend.info();
        assert_eq!(info.kind, BackendKind::Software);
        assert_eq!(info.events, 3);
        assert_eq!(info.tiles, 0);
        let mut out = Vec::new();
        assert!(matches!(
            backend.current_map_into(&mut out),
            Err(CoreError::UnsupportedOperation { .. })
        ));
    }

    #[test]
    fn crossbar_and_fabric_backends_agree_bit_for_bit() {
        let (_, quantized, test) = trained();
        let config = EngineConfig::febim_default();
        let crossbar = CrossbarBackend::new(quantized.clone(), &config).unwrap();
        let fabric =
            TiledFabricBackend::new(quantized, &config, TileShape::new(2, 24).unwrap()).unwrap();
        assert!(fabric.tiled_program().plan().is_multi_tile());
        let mut crossbar_scratch = crossbar.make_scratch();
        let mut fabric_scratch = fabric.make_scratch();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let a = crossbar.infer_into(sample, &mut crossbar_scratch).unwrap();
            let b = fabric.infer_into(sample, &mut fabric_scratch).unwrap();
            assert_eq!(a.prediction, b.prediction);
            assert_eq!(a.tie_broken, b.tie_broken);
            assert_eq!(
                crossbar_scratch.wordline_currents(),
                fabric_scratch.wordline_currents()
            );
        }
        // State maps agree cell for cell as well.
        let mut flat_array = Vec::new();
        let mut flat_grid = Vec::new();
        crossbar.current_map_into(&mut flat_array).unwrap();
        fabric.current_map_into(&mut flat_grid).unwrap();
        assert_eq!(flat_array, flat_grid);
    }

    #[test]
    fn backend_info_reports_the_grid() {
        let (_, quantized, _) = trained();
        let config = EngineConfig::febim_default();
        let fabric =
            TiledFabricBackend::new(quantized, &config, TileShape::new(2, 48).unwrap()).unwrap();
        let info = fabric.info();
        assert_eq!(info.kind, BackendKind::TiledFabric);
        assert_eq!(info.events, 3);
        assert_eq!(info.columns, 64);
        assert_eq!(info.tiles, 4);
        assert_eq!(fabric.tiled_program().plan().row_tiles(), 2);
        assert_eq!(fabric.tiled_program().plan().col_tiles(), 2);
    }

    fn batch_of(test: &febim_data::Dataset) -> Vec<Vec<f64>> {
        (0..test.n_samples())
            .map(|index| test.sample(index).unwrap().to_vec())
            .collect()
    }

    /// Batched inference must be bit-identical to sequential inference —
    /// same steps (prediction, tie, delay, energy) and same final wordline
    /// currents — on every backend; only the batch telemetry may improve.
    fn assert_batch_matches_sequential<B: InferenceBackend>(backend: &B, batch: &[Vec<f64>]) {
        let mut sequential_scratch = backend.make_scratch();
        let sequential: Vec<InferenceStep> = batch
            .iter()
            .map(|sample| backend.infer_into(sample, &mut sequential_scratch).unwrap())
            .collect();
        let mut scratch = backend.make_scratch();
        let mut steps = Vec::new();
        let telemetry = backend
            .infer_batch_into(batch, &mut scratch, &mut steps)
            .unwrap();
        assert_eq!(steps, sequential);
        assert_eq!(
            scratch.wordline_currents(),
            sequential_scratch.wordline_currents()
        );
        assert_eq!(telemetry.reads, batch.len());
        let sequential_delay: f64 = sequential.iter().map(|s| s.delay.total()).sum();
        let sequential_energy: f64 = sequential.iter().map(|s| s.energy.total()).sum();
        assert!((telemetry.sequential_delay - sequential_delay).abs() <= sequential_delay * 1e-12);
        assert!(
            (telemetry.sequential_energy - sequential_energy).abs() <= sequential_energy * 1e-12
        );
        if telemetry.amortized && batch.len() > 1 && sequential_delay > 0.0 {
            assert!(telemetry.delay.total() < telemetry.sequential_delay);
            assert!(telemetry.energy.total() < telemetry.sequential_energy);
            assert!(telemetry.delay_ratio() < 1.0);
            assert!(telemetry.energy_ratio() < 1.0);
        }
    }

    #[test]
    fn batched_inference_is_bit_identical_on_every_backend() {
        let (model, quantized, test) = trained();
        let config = EngineConfig::febim_default();
        let batch = batch_of(&test);
        assert_batch_matches_sequential(&SoftwareBackend::new(model), &batch);
        let crossbar = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        assert_batch_matches_sequential(&crossbar, &batch);
        let fabric =
            TiledFabricBackend::new(quantized, &config, TileShape::new(2, 24).unwrap()).unwrap();
        assert_batch_matches_sequential(&fabric, &batch);
        // The physical backends amortize; the software default path does not.
        let mut scratch = crossbar.make_scratch();
        let mut steps = Vec::new();
        let telemetry = crossbar
            .infer_batch_into(&batch, &mut scratch, &mut steps)
            .unwrap();
        assert!(telemetry.amortized);
    }

    /// The packed crossbar read must reproduce the software oracle exactly:
    /// unpacking the quantized tables and summing the observed bins' levels
    /// gives an integer score per class, and the merged shift-add current is
    /// that score times the LSB current, bit for bit.
    #[test]
    fn packed_crossbar_matches_the_level_sum_oracle() {
        let (_, quantized, test) = trained();
        let config = EngineConfig::febim_default().with_encoding(Encoding::BitPlane { bits: 4 });
        let backend = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        // 4-bit cells pack two 2-bit bins: half the one-hot columns.
        assert_eq!(backend.program().layout().columns(), 32);
        assert_eq!(backend.program().state_count(), 16);
        let lsb = febim_device::programming::DEFAULT_MIN_READ_CURRENT;
        let mut scratch = backend.make_scratch();
        let mut evidence = Vec::new();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            backend.infer_into(sample, &mut scratch).unwrap();
            quantized
                .discretize_sample_into(sample, &mut evidence)
                .unwrap();
            for class in 0..quantized.n_classes() {
                let score: usize = evidence
                    .iter()
                    .enumerate()
                    .map(|(feature, &bin)| quantized.likelihood_level(class, feature, bin).unwrap())
                    .sum();
                assert_eq!(scratch.wordline_currents()[class], lsb * score as f64);
            }
        }
    }

    /// At sigma = 0 the packed read ranks classes by the same integer level
    /// sums the one-hot read accumulates in the analog domain, so untied
    /// predictions agree sample for sample and the accuracy is identical.
    #[test]
    fn packed_predictions_match_one_hot_at_zero_sigma() {
        let (_, quantized, test) = trained();
        let one_hot =
            CrossbarBackend::new(Arc::clone(&quantized), &EngineConfig::febim_default()).unwrap();
        for bits in [4u32, 8] {
            let config = EngineConfig::febim_default().with_encoding(Encoding::BitPlane { bits });
            let packed = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
            let mut one_hot_scratch = one_hot.make_scratch();
            let mut packed_scratch = packed.make_scratch();
            let mut agreements = 0usize;
            for index in 0..test.n_samples() {
                let sample = test.sample(index).unwrap();
                let a = one_hot.infer_into(sample, &mut one_hot_scratch).unwrap();
                let b = packed.infer_into(sample, &mut packed_scratch).unwrap();
                // Integer scores tie more often than analog sums; whenever
                // neither read tie-broke, the winners must coincide.
                if !a.tie_broken && !b.tie_broken {
                    assert_eq!(a.prediction, b.prediction);
                    agreements += 1;
                }
                // Packed reads price the narrower column count plus the
                // merge bus; both stay finite and positive.
                assert!(b.delay.total() > 0.0 && b.energy.total() > 0.0);
            }
            assert!(agreements > 0, "no untied sample to compare");
        }
    }

    /// Packed reads on the tiled fabric are bit-identical to the monolithic
    /// packed backend: same integer partials, same merged currents, same
    /// decisions.
    #[test]
    fn packed_fabric_matches_the_monolithic_packed_backend() {
        let (_, quantized, test) = trained();
        let config = EngineConfig::febim_default().with_encoding(Encoding::BitPlane { bits: 4 });
        let crossbar = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        let fabric =
            TiledFabricBackend::new(quantized, &config, TileShape::new(2, 12).unwrap()).unwrap();
        assert!(fabric.tiled_program().plan().is_multi_tile());
        assert_eq!(fabric.info().columns, 32);
        let mut crossbar_scratch = crossbar.make_scratch();
        let mut fabric_scratch = fabric.make_scratch();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let a = crossbar.infer_into(sample, &mut crossbar_scratch).unwrap();
            let b = fabric.infer_into(sample, &mut fabric_scratch).unwrap();
            assert_eq!(a.prediction, b.prediction);
            assert_eq!(a.tie_broken, b.tie_broken);
            assert_eq!(
                crossbar_scratch.wordline_currents(),
                fabric_scratch.wordline_currents()
            );
        }
    }

    /// The grouped packed read path obeys the same bit-identity contract as
    /// the one-hot batch paths, on both physical backends.
    #[test]
    fn packed_batched_inference_is_bit_identical() {
        let (_, quantized, test) = trained();
        let config = EngineConfig::febim_default().with_encoding(Encoding::BitPlane { bits: 4 });
        let batch = batch_of(&test);
        let crossbar = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        assert_batch_matches_sequential(&crossbar, &batch);
        let fabric =
            TiledFabricBackend::new(quantized, &config, TileShape::new(2, 12).unwrap()).unwrap();
        assert_batch_matches_sequential(&fabric, &batch);
    }

    #[test]
    fn empty_batches_are_free() {
        let (model, quantized, _) = trained();
        let config = EngineConfig::febim_default();
        let crossbar = CrossbarBackend::new(quantized, &config).unwrap();
        let software = SoftwareBackend::new(model);
        for (telemetry, amortized) in [
            (
                {
                    let mut scratch = crossbar.make_scratch();
                    let mut steps = vec![InferenceStep {
                        prediction: 9,
                        delay: DelayBreakdown {
                            array: 1.0,
                            sensing: 1.0,
                        },
                        energy: InferenceEnergy {
                            array: 1.0,
                            sensing: 1.0,
                        },
                        tie_broken: false,
                    }];
                    let telemetry = crossbar
                        .infer_batch_into(&[], &mut scratch, &mut steps)
                        .unwrap();
                    assert!(steps.is_empty(), "steps must be cleared");
                    telemetry
                },
                true,
            ),
            (
                {
                    let mut scratch = software.make_scratch();
                    let mut steps = Vec::new();
                    software
                        .infer_batch_into(&[], &mut scratch, &mut steps)
                        .unwrap()
                },
                false,
            ),
        ] {
            assert_eq!(telemetry.reads, 0);
            assert_eq!(telemetry.delay.total(), 0.0);
            assert_eq!(telemetry.energy.total(), 0.0);
            assert_eq!(telemetry.amortized, amortized);
            assert_eq!(telemetry.delay_ratio(), 1.0);
            assert_eq!(telemetry.energy_ratio(), 1.0);
        }
    }

    #[test]
    fn stateless_backend_time_surface_is_inert() {
        let (model, _, _) = trained();
        let mut software = SoftwareBackend::new(model);
        assert_eq!(software.clock(), 0);
        assert_eq!(software.state_epoch(), 0);
        assert_eq!(software.worst_effective_shift(), 0.0);
        software.advance_time(1_000_000);
        assert_eq!(software.clock(), 0);
        let outcome = software.recalibrate(0.0).unwrap();
        assert_eq!(outcome, RefreshOutcome::default());
    }

    /// Aging drifts both physical backends off their programmed state and a
    /// recalibration pass restores the freshly programmed current map bit
    /// for bit, on the monolithic array and the tiled grid alike.
    #[test]
    fn physical_backends_age_and_recalibrate() {
        let (_, quantized, test) = trained();
        let stack = NonIdealityStack::ideal()
            .with_drift(febim_device::RetentionDrift::new(0.04, 50))
            .with_disturb(febim_device::ReadDisturb::new(64, 0.002));
        let config = EngineConfig::febim_default().with_non_idealities(stack);
        let crossbar = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        let fabric = TiledFabricBackend::new(
            Arc::clone(&quantized),
            &config,
            TileShape::new(2, 24).unwrap(),
        )
        .unwrap();
        let sample = test.sample(0).unwrap().to_vec();
        for mut backend in [
            Box::new(crossbar) as Box<dyn InferenceBackend>,
            Box::new(fabric) as Box<dyn InferenceBackend>,
        ] {
            let mut fresh = Vec::new();
            backend.current_map_into(&mut fresh).unwrap();
            let epoch = backend.state_epoch();
            assert_eq!(backend.worst_effective_shift(), 0.0);

            backend.advance_time(5_000);
            assert_eq!(backend.clock(), 5_000);
            assert!(backend.state_epoch() > epoch, "aging must bump the epoch");
            assert!(backend.worst_effective_shift() > 0.0);
            let mut aged = Vec::new();
            backend.current_map_into(&mut aged).unwrap();
            assert_ne!(fresh, aged, "drift must move the read currents");
            // Reads keep flowing against the aged state.
            let mut scratch = backend.make_scratch();
            backend.infer_into(&sample, &mut scratch).unwrap();

            let outcome = backend.recalibrate(1e-6).unwrap();
            assert!(outcome.cells_refreshed > 0);
            assert!(outcome.rows_refreshed > 0);
            assert_eq!(backend.worst_effective_shift(), 0.0);
            let mut restored = Vec::new();
            backend.current_map_into(&mut restored).unwrap();
            assert_eq!(fresh, restored, "recalibration must restore bit-exact");

            // Nothing drifted ⇒ a second pass finds no work.
            let idle = backend.recalibrate(1e-6).unwrap();
            assert_eq!(idle.cells_refreshed, 0);
            assert_eq!(idle.pulses_applied, 0);
        }
    }

    /// The chaos surface end to end on both physical backends: scheduled
    /// faults strike as the clock advances past their tick, a scrub pass
    /// detects every defect, heals the transients in place, and — on the
    /// tiled fabric with spare rows — remaps the permanent defect onto a
    /// spare so the restored current map is bit-identical to fresh.
    #[test]
    fn scheduled_faults_strike_on_advance_and_scrub_heals() {
        use febim_crossbar::{FaultKind, ScheduledFault};
        let (_, quantized, _) = trained();
        let config = EngineConfig::febim_default();
        let crossbar = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        let fabric = TiledFabricBackend::new(
            Arc::clone(&quantized),
            &config,
            TileShape::new(2, 24).unwrap().with_spare_rows(1),
        )
        .unwrap();
        let schedule = || {
            FaultSchedule::new(vec![
                ScheduledFault {
                    at_tick: 10,
                    row: 0,
                    column: 0,
                    kind: FaultKind::StuckErased,
                    permanent: false,
                },
                ScheduledFault {
                    at_tick: 20,
                    row: 1,
                    column: 5,
                    kind: FaultKind::StuckErased,
                    permanent: true,
                },
            ])
        };
        for (mut backend, has_spares) in [
            (Box::new(crossbar) as Box<dyn InferenceBackend>, false),
            (Box::new(fabric) as Box<dyn InferenceBackend>, true),
        ] {
            let mut fresh = Vec::new();
            backend.current_map_into(&mut fresh).unwrap();
            assert_eq!(backend.pending_faults(), 0);
            backend.set_fault_schedule(schedule());
            assert_eq!(backend.pending_faults(), 2);

            // Nothing strikes before its tick.
            backend.advance_time(9);
            assert_eq!(backend.pending_faults(), 2);
            let mut map = Vec::new();
            backend.current_map_into(&mut map).unwrap();
            assert_eq!(fresh, map, "no fault may strike before its tick");

            // The transient strikes at tick 10, the permanent at tick 20.
            backend.advance_time(6);
            assert_eq!(backend.pending_faults(), 1);
            backend.advance_time(10);
            assert_eq!(backend.pending_faults(), 0);
            backend.current_map_into(&mut map).unwrap();
            assert_ne!(fresh, map, "struck faults must corrupt the reads");

            let outcome = backend.scrub(1e-6).unwrap();
            assert_eq!(outcome.reports.len(), 2, "scrub must find both defects");
            if has_spares {
                // Transient healed in place + stuck cell healed by remap.
                assert_eq!(outcome.cells_repaired, 2);
                assert!(outcome.fully_repaired());
                assert_eq!(outcome.rows_remapped, 1);
                assert_eq!(outcome.stuck_cells, 0);
                backend.current_map_into(&mut map).unwrap();
                assert_eq!(fresh, map, "spare-row repair must restore bit-exact");
            } else {
                // Only the transient heals; the stuck cell has no spare.
                assert_eq!(outcome.cells_repaired, 1);
                assert!(!outcome.fully_repaired());
                assert_eq!(outcome.stuck_cells, 1);
                assert_eq!(outcome.unrepaired().count(), 1);
            }
            assert!(outcome.pulses_applied > 0);

            // A follow-up pass finds nothing new to repair.
            let idle = backend.scrub(1e-6).unwrap();
            assert_eq!(idle.cells_repaired, 0);
            assert_eq!(idle.rows_remapped, 0);
        }
    }

    /// Spare-row repair composes with bit-plane packing: after a permanent
    /// stuck fault strikes a packed fabric and a scrub remaps the row onto a
    /// spare, packed reads are again bit-identical to a pristine monolithic
    /// packed backend.
    #[test]
    fn packed_fabric_reads_survive_faults_and_scrub() {
        use febim_crossbar::{FaultKind, ScheduledFault};
        let (_, quantized, test) = trained();
        let config = EngineConfig::febim_default().with_encoding(Encoding::BitPlane { bits: 4 });
        let pristine = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        // Strike a cell that actually stores a nonzero packed value, so the
        // stuck-erased fault is observable and forces a remap.
        let column = (0..pristine.program().layout().columns())
            .find(|&column| pristine.program().levels()[1][column].unwrap_or(0) != 0)
            .expect("a programmed packed cell");
        let mut fabric = TiledFabricBackend::new(
            quantized,
            &config,
            TileShape::new(2, 12).unwrap().with_spare_rows(1),
        )
        .unwrap();
        fabric.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
            at_tick: 5,
            row: 1,
            column,
            kind: FaultKind::StuckErased,
            permanent: true,
        }]));
        fabric.advance_time(10);
        let outcome = fabric.scrub(1e-6).unwrap();
        assert!(outcome.fully_repaired());
        assert_eq!(outcome.rows_remapped, 1);
        let mut pristine_scratch = pristine.make_scratch();
        let mut fabric_scratch = fabric.make_scratch();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let a = pristine.infer_into(sample, &mut pristine_scratch).unwrap();
            let b = fabric.infer_into(sample, &mut fabric_scratch).unwrap();
            assert_eq!(a.prediction, b.prediction);
            assert_eq!(
                pristine_scratch.wordline_currents(),
                fabric_scratch.wordline_currents()
            );
        }
    }

    /// The software backend's self-healing surface is inert.
    #[test]
    fn stateless_backend_fault_surface_is_inert() {
        let (model, _, _) = trained();
        let mut software = SoftwareBackend::new(model);
        software.set_fault_schedule(FaultSchedule::empty());
        assert_eq!(software.pending_faults(), 0);
        let outcome = software.scrub(0.0).unwrap();
        assert!(outcome.is_clean());
        assert!(outcome.fully_repaired());
    }

    #[test]
    fn fabric_tie_path_matches_the_crossbar_tie_path() {
        // Force an exact tie by scoring a two-class model whose rows are
        // programmed identically.
        let dataset = febim_data::Dataset::new(
            "tie",
            vec!["x".to_string()],
            2,
            vec![vec![0.0], vec![1.0], vec![0.0], vec![1.0]],
            vec![0, 0, 1, 1],
        )
        .unwrap();
        let model = GaussianNaiveBayes::fit(&dataset).unwrap();
        let quantized =
            Arc::new(QuantizedGnbc::quantize(&model, &dataset, QuantConfig::new(2, 2)).unwrap());
        let config = EngineConfig::febim_default();
        let crossbar = CrossbarBackend::new(Arc::clone(&quantized), &config).unwrap();
        let fabric =
            TiledFabricBackend::new(quantized, &config, TileShape::new(1, 2).unwrap()).unwrap();
        let mut a_scratch = crossbar.make_scratch();
        let mut b_scratch = fabric.make_scratch();
        let a = crossbar.infer_into(&[0.5], &mut a_scratch).unwrap();
        let b = fabric.infer_into(&[0.5], &mut b_scratch).unwrap();
        assert_eq!(a.prediction, b.prediction);
        assert_eq!(a.tie_broken, b.tie_broken);
    }
}
