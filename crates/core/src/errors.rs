//! Error types for the FeBiM engine.

use std::error::Error;
use std::fmt;

use febim_bayes::BayesError;
use febim_circuit::CircuitError;
use febim_crossbar::CrossbarError;
use febim_data::DataError;
use febim_device::DeviceError;
use febim_quant::QuantError;

/// Errors produced by the FeBiM engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An engine configuration value is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The engine was asked to infer before the crossbar was programmed.
    NotProgrammed,
    /// A dataset shape does not match the compiled model.
    DatasetMismatch {
        /// Expected number of features.
        expected_features: usize,
        /// Found number of features.
        found_features: usize,
    },
    /// The selected inference backend does not implement an operation.
    UnsupportedOperation {
        /// Backend name (see `BackendInfo::name`).
        backend: &'static str,
        /// The operation the backend cannot perform.
        operation: &'static str,
    },
    /// Wrapped device-model error.
    Device(DeviceError),
    /// Wrapped circuit-model error.
    Circuit(CircuitError),
    /// Wrapped crossbar error.
    Crossbar(CrossbarError),
    /// Wrapped Bayesian-model error.
    Bayes(BayesError),
    /// Wrapped quantization error.
    Quant(QuantError),
    /// Wrapped dataset error.
    Data(DataError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { name, reason } => {
                write!(f, "invalid engine configuration `{name}`: {reason}")
            }
            CoreError::NotProgrammed => write!(f, "crossbar has not been programmed"),
            CoreError::DatasetMismatch {
                expected_features,
                found_features,
            } => write!(
                f,
                "dataset has {found_features} features, engine expects {expected_features}"
            ),
            CoreError::UnsupportedOperation { backend, operation } => {
                write!(f, "backend `{backend}` does not support `{operation}`")
            }
            CoreError::Device(err) => write!(f, "device error: {err}"),
            CoreError::Circuit(err) => write!(f, "circuit error: {err}"),
            CoreError::Crossbar(err) => write!(f, "crossbar error: {err}"),
            CoreError::Bayes(err) => write!(f, "bayes error: {err}"),
            CoreError::Quant(err) => write!(f, "quantization error: {err}"),
            CoreError::Data(err) => write!(f, "data error: {err}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Device(err) => Some(err),
            CoreError::Circuit(err) => Some(err),
            CoreError::Crossbar(err) => Some(err),
            CoreError::Bayes(err) => Some(err),
            CoreError::Quant(err) => Some(err),
            CoreError::Data(err) => Some(err),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($source:ty, $variant:ident) => {
        impl From<$source> for CoreError {
            fn from(err: $source) -> Self {
                CoreError::$variant(err)
            }
        }
    };
}

impl_from!(DeviceError, Device);
impl_from!(CircuitError, Circuit);
impl_from!(CrossbarError, Crossbar);
impl_from!(BayesError, Bayes);
impl_from!(QuantError, Quant);
impl_from!(DataError, Data);

/// Convenience result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::NotProgrammed.to_string().contains("programmed"));
        assert!(CoreError::InvalidConfig {
            name: "epochs",
            reason: "must be positive".to_string()
        }
        .to_string()
        .contains("epochs"));
        assert!(CoreError::DatasetMismatch {
            expected_features: 4,
            found_features: 13
        }
        .to_string()
        .contains("expects 4"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let err: CoreError = DeviceError::TooManyLevels {
            requested: 4,
            supported: 2,
        }
        .into();
        assert!(Error::source(&err).is_some());
        let err: CoreError = CircuitError::EmptyInput.into();
        assert!(err.to_string().contains("circuit error"));
        let err: CoreError = BayesError::NotTrained.into();
        assert!(err.to_string().contains("bayes error"));
        let err: CoreError = DataError::EmptyDataset.into();
        assert!(err.to_string().contains("data error"));
        let err: CoreError = QuantError::InvalidPrecision {
            kind: "feature",
            bits: 0,
        }
        .into();
        assert!(err.to_string().contains("quantization error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
