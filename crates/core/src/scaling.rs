//! Array-scalability study: inference delay and energy as a function of the
//! crossbar geometry (Fig. 6 of the paper).

use serde::{Deserialize, Serialize};

use febim_circuit::SensingChain;
use febim_crossbar::{Activation, CrossbarArray, CrossbarLayout, ProgrammingMode};
use febim_device::{FeFetParams, LevelProgrammer};

use crate::errors::Result;

/// One point of the scalability sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of wordlines (rows).
    pub rows: usize,
    /// Number of bitlines (columns).
    pub columns: usize,
    /// Worst-case inference delay in seconds.
    pub delay: f64,
    /// Array-settling part of the delay in seconds.
    pub delay_array: f64,
    /// Sensing (WTA) part of the delay in seconds.
    pub delay_sensing: f64,
    /// Array energy (drivers + cell conduction) in joules.
    pub energy_array: f64,
    /// Sensing energy (mirrors + WTA) in joules.
    pub energy_sensing: f64,
}

impl ScalingPoint {
    /// Total inference energy in joules.
    pub fn energy_total(&self) -> f64 {
        self.energy_array + self.energy_sensing
    }
}

/// Measures the worst-case delay and energy of a `rows × columns` crossbar
/// with every bitline activated, the stress pattern used in Fig. 6.
///
/// The cells are programmed with a deterministic staggered level pattern so
/// neighbouring wordlines carry slightly different currents (the worst-case
/// gap assumption is handled inside the delay model).
///
/// # Errors
///
/// Propagates layout, programming and circuit-model errors.
pub fn measure_geometry(
    rows: usize,
    columns: usize,
    sensing: &SensingChain,
    levels: usize,
) -> Result<ScalingPoint> {
    // Model the geometry as `columns` single-level evidence nodes so any
    // row/column combination is expressible.
    let layout = CrossbarLayout::new(rows, columns, 1, false)?;
    let programmer = LevelProgrammer::new(
        FeFetParams::febim_calibrated(),
        levels,
        febim_device::programming::DEFAULT_MIN_READ_CURRENT,
        febim_device::programming::DEFAULT_MAX_READ_CURRENT,
    )?;
    let mut array = CrossbarArray::new(layout, programmer);
    for row in 0..rows {
        for column in 0..columns {
            let level = (row + column) % levels;
            array.program_cell(row, column, level, ProgrammingMode::Ideal)?;
        }
    }
    let activation = Activation::all_columns(array.layout());
    let currents = array.wordline_currents(&activation)?;
    let delay =
        sensing
            .delay_model()
            .worst_case(rows, columns, sensing.wta(), sensing.mirror().gain)?;
    let energy = sensing.energy_model().inference(
        &currents,
        columns,
        delay.total(),
        sensing.mirror(),
        sensing.wta(),
    )?;
    Ok(ScalingPoint {
        rows,
        columns,
        delay: delay.total(),
        delay_array: delay.array,
        delay_sensing: delay.sensing,
        energy_array: energy.array,
        energy_sensing: energy.sensing,
    })
}

/// Sweeps the number of columns at a fixed row count (Fig. 6(a)/(b)).
///
/// # Errors
///
/// Propagates [`measure_geometry`] errors.
pub fn column_sweep(
    rows: usize,
    columns: &[usize],
    sensing: &SensingChain,
) -> Result<Vec<ScalingPoint>> {
    columns
        .iter()
        .map(|&c| measure_geometry(rows, c, sensing, 10))
        .collect()
}

/// Sweeps the number of rows at a fixed column count (Fig. 6(c)/(d)).
///
/// # Errors
///
/// Propagates [`measure_geometry`] errors.
pub fn row_sweep(
    rows: &[usize],
    columns: usize,
    sensing: &SensingChain,
) -> Result<Vec<ScalingPoint>> {
    rows.iter()
        .map(|&r| measure_geometry(r, columns, sensing, 10))
        .collect()
}

/// The column counts used in Fig. 6(a)/(b): 2 to 256.
pub fn figure6_columns() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64, 128, 256]
}

/// The row counts used in Fig. 6(c)/(d): 2 to 32.
pub fn figure6_rows() -> Vec<usize> {
    vec![2, 4, 8, 16, 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SensingChain {
        SensingChain::febim_calibrated()
    }

    #[test]
    fn figure6_geometries_are_the_paper_ones() {
        assert_eq!(figure6_columns().first(), Some(&2));
        assert_eq!(figure6_columns().last(), Some(&256));
        assert_eq!(figure6_rows(), vec![2, 4, 8, 16, 32]);
    }

    #[test]
    fn delay_grows_with_columns() {
        let points = column_sweep(2, &figure6_columns(), &chain()).unwrap();
        assert_eq!(points.len(), 8);
        for pair in points.windows(2) {
            assert!(pair[1].delay > pair[0].delay);
        }
        // Fig. 6(a): roughly 200 ps at 2 columns, roughly 800 ps at 256.
        assert!(points[0].delay > 100e-12 && points[0].delay < 350e-12);
        assert!(points[7].delay > 600e-12 && points[7].delay < 1100e-12);
    }

    #[test]
    fn energy_grows_with_columns() {
        let points = column_sweep(2, &figure6_columns(), &chain()).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].energy_total() > pair[0].energy_total());
        }
        // Fig. 6(b): tens of femtojoules at 256 columns.
        let last = points.last().unwrap();
        assert!(last.energy_total() > 10e-15 && last.energy_total() < 200e-15);
        // With only two rows the array energy dominates the sensing energy.
        assert!(last.energy_array > last.energy_sensing);
    }

    #[test]
    fn delay_grows_with_rows() {
        let points = row_sweep(&figure6_rows(), 32, &chain()).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].delay > pair[0].delay);
        }
        // Fig. 6(c): approaching a nanosecond at 32 rows.
        let last = points.last().unwrap();
        assert!(last.delay > 700e-12 && last.delay < 1500e-12);
    }

    #[test]
    fn sensing_energy_dominates_for_tall_arrays() {
        let points = row_sweep(&figure6_rows(), 32, &chain()).unwrap();
        let last = points.last().unwrap();
        // Fig. 6(d): the per-row mirrors and WTA cells dominate at 32 rows.
        assert!(last.energy_sensing > last.energy_array);
        assert!(last.energy_total() > 50e-15 && last.energy_total() < 500e-15);
    }

    #[test]
    fn delay_breakdown_is_consistent() {
        let point = measure_geometry(4, 16, &chain(), 10).unwrap();
        assert!((point.delay - (point.delay_array + point.delay_sensing)).abs() < 1e-18);
        assert!(point.energy_array > 0.0);
        assert!(point.energy_sensing > 0.0);
    }
}
