//! # febim-core
//!
//! The FeBiM engine — the paper's primary contribution: an in-memory Bayesian
//! inference engine built on a multi-level-cell FeFET crossbar.
//!
//! A trained Gaussian naive Bayes classifier is quantized
//! (`febim-quant`), compiled into a crossbar program, programmed into a
//! behavioural FeFET array (`febim-device`, `febim-crossbar`) and read out
//! through a current-mirror + winner-take-all sensing chain
//! (`febim-circuit`). The crate also provides the Monte-Carlo robustness
//! study, the array-scalability sweeps and the density/efficiency metrics
//! behind the paper's evaluation section.
//!
//! # Example
//!
//! ```
//! use febim_core::{EngineConfig, FebimEngine};
//! use febim_data::{rng::seeded_rng, split::stratified_split, synthetic::iris_like};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = iris_like(7)?;
//! let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7))?;
//! let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
//! let report = engine.evaluate(&split.test)?;
//! assert!(report.accuracy > 0.85);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod compiler;
pub mod config;
pub mod engine;
pub mod errors;
pub mod health;
pub mod metrics;
pub mod monte_carlo;
pub mod recalibration;
pub mod registry;
pub mod report;
pub mod scaling;
pub mod scheduler;
pub mod serving;

pub use backend::{
    BackendInfo, BackendKind, BatchTelemetry, CrossbarBackend, InferenceBackend, SoftwareBackend,
    SwapCost, TiledFabricBackend,
};
pub use compiler::{compile, compile_tiled, CrossbarProgram, TiledProgram};
pub use config::EngineConfig;
pub use engine::{EvalScratch, EvaluationReport, FebimEngine, InferenceOutcome, InferenceStep};
pub use errors::{CoreError, Result};
pub use health::{ReplicaHealth, ScrubPolicy, ScrubReport, ScrubScheduler};
pub use metrics::{ops_per_inference, performance_metrics, MetricsConfig, PerformanceMetrics};
pub use monte_carlo::{
    epoch_accuracy, epoch_accuracy_with_backend, epoch_accuracy_with_threads, noise_campaign,
    noise_campaign_with_backend, noise_campaign_with_threads, variation_sweep,
    variation_sweep_with_backend, variation_sweep_with_threads, EpochAccuracy, NoisePoint,
    NoiseScenario, VariationPoint,
};
pub use recalibration::{RecalibrationPolicy, RecalibrationReport, RecalibrationScheduler};
pub use registry::{ModelRegistry, RegistryConfig, RegistryError, RegistryReport, TenantPlacement};
pub use report::{default_experiment_dir, Table};
pub use scaling::{
    column_sweep, figure6_columns, figure6_rows, measure_geometry, row_sweep, ScalingPoint,
};
pub use scheduler::EpochScheduler;
/// JSON emission entry points (`to_string` / `to_string_pretty`) for every
/// `Serialize`-deriving result type (e.g. [`EvaluationReport`],
/// [`febim_crossbar::TilePlan`]) — the machinery behind `BENCH_*.json`.
pub use serde::json;
pub use serving::{
    LatencyHistogram, PoolStats, ServeOutcome, ServingConfig, ServingError, ServingPool,
    SwapReport, SwapTicket, Ticket, WorkerReport,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The in-memory prediction agrees with the quantized software model
        /// for any test sample: the crossbar is an exact analogue of the
        /// quantized sum when devices are ideal (up to exact ties).
        #[test]
        fn crossbar_matches_quantized_software(seed in 0u64..50, index in 0usize..105) {
            let dataset = iris_like(seed).unwrap();
            let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
            let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
            let sample = split.test.sample(index % split.test.n_samples()).unwrap();
            let outcome = engine.infer(sample).unwrap();
            let software = engine.quantized().predict(sample).unwrap();
            if !outcome.tie_broken {
                let scores = engine.quantized().log_posterior_scores(sample).unwrap();
                let sorted = {
                    let mut s = scores.clone();
                    s.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    s
                };
                // Only compare when the software scores are not themselves tied.
                if (sorted[0] - sorted[1]).abs() > 1e-9 {
                    prop_assert_eq!(outcome.prediction, software);
                }
            }
        }

        /// A model sharded across a tiled fabric of any tile shape infers
        /// bit-identically to the monolithic single-array backend — same
        /// wordline currents, same winners, same tie-breaks — across random
        /// programs (seeds) and device variations.
        #[test]
        fn tiled_backend_is_bit_identical_to_monolithic(
            seed in 0u64..30,
            tile_rows in 1usize..4,
            tile_columns in 1usize..80,
            sigma_mv in 0.0f64..60.0,
            variation_seed in 0u64..1000,
        ) {
            let dataset = iris_like(seed).unwrap();
            let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
            let config = EngineConfig::febim_default().with_variation(
                febim_device::VariationModel::from_millivolts(sigma_mv),
                variation_seed,
            );
            let monolithic = FebimEngine::fit(&split.train, config.clone()).unwrap();
            let shape = febim_crossbar::TileShape::new(tile_rows, tile_columns).unwrap();
            let tiled = FebimEngine::fit_tiled(&split.train, config, shape).unwrap();
            let mut mono_scratch = monolithic.make_scratch();
            let mut tiled_scratch = tiled.make_scratch();
            for index in 0..split.test.n_samples() {
                let sample = split.test.sample(index).unwrap();
                let a = monolithic.infer_into(sample, &mut mono_scratch).unwrap();
                let b = tiled.infer_into(sample, &mut tiled_scratch).unwrap();
                prop_assert_eq!(a.prediction, b.prediction);
                prop_assert_eq!(a.tie_broken, b.tie_broken);
                prop_assert_eq!(
                    mono_scratch.wordline_currents(),
                    tiled_scratch.wordline_currents()
                );
            }
        }

        /// A bit-plane-packed engine of any legal cell width infers
        /// bit-identically on the monolithic array and on any tiled fabric,
        /// and its merged shift-add scores reproduce the unpacked level-sum
        /// oracle exactly — the engine-level round-trip contract of the
        /// packed encoding.
        #[test]
        fn packed_engines_match_the_unpacked_oracle(
            seed in 0u64..20,
            bits in 2u32..9,
            tile_rows in 1usize..4,
            tile_columns in 1usize..40,
        ) {
            let dataset = iris_like(seed).unwrap();
            let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
            let config = EngineConfig::febim_default()
                .with_encoding(febim_quant::Encoding::BitPlane { bits });
            let monolithic = FebimEngine::fit(&split.train, config.clone()).unwrap();
            let shape = febim_crossbar::TileShape::new(tile_rows, tile_columns).unwrap();
            let tiled = FebimEngine::fit_tiled(&split.train, config, shape).unwrap();
            let lsb = febim_device::programming::DEFAULT_MIN_READ_CURRENT;
            let quantized = monolithic.quantized();
            let mut mono_scratch = monolithic.make_scratch();
            let mut tiled_scratch = tiled.make_scratch();
            let mut evidence = Vec::new();
            for index in 0..split.test.n_samples() {
                let sample = split.test.sample(index).unwrap();
                let a = monolithic.infer_into(sample, &mut mono_scratch).unwrap();
                let b = tiled.infer_into(sample, &mut tiled_scratch).unwrap();
                prop_assert_eq!(a.prediction, b.prediction);
                prop_assert_eq!(a.tie_broken, b.tie_broken);
                prop_assert_eq!(
                    mono_scratch.wordline_currents(),
                    tiled_scratch.wordline_currents()
                );
                quantized.discretize_sample_into(sample, &mut evidence).unwrap();
                for class in 0..quantized.n_classes() {
                    let score: usize = evidence
                        .iter()
                        .enumerate()
                        .map(|(feature, &bin)| {
                            quantized.likelihood_level(class, feature, bin).unwrap()
                        })
                        .sum();
                    prop_assert_eq!(
                        mono_scratch.wordline_currents()[class],
                        lsb * score as f64
                    );
                }
            }
        }

        /// Operation counts grow monotonically with both array dimensions.
        #[test]
        fn ops_monotone(events in 1usize..32, columns in 1usize..64) {
            let base = ops_per_inference(events, columns);
            prop_assert!(ops_per_inference(events + 1, columns) >= base);
            prop_assert!(ops_per_inference(events, columns + 1) >= base);
        }

        /// Scaling measurements stay finite and positive over a wide geometry range.
        #[test]
        fn scaling_points_are_sane(rows in 1usize..16, cols in 1usize..128) {
            let chain = febim_circuit::SensingChain::febim_calibrated();
            let point = measure_geometry(rows, cols, &chain, 10).unwrap();
            prop_assert!(point.delay > 0.0 && point.delay.is_finite());
            prop_assert!(point.energy_total() > 0.0 && point.energy_total().is_finite());
        }
    }
}
