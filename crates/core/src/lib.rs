//! # febim-core
//!
//! The FeBiM engine — the paper's primary contribution: an in-memory Bayesian
//! inference engine built on a multi-level-cell FeFET crossbar.
//!
//! A trained Gaussian naive Bayes classifier is quantized
//! (`febim-quant`), compiled into a crossbar program, programmed into a
//! behavioural FeFET array (`febim-device`, `febim-crossbar`) and read out
//! through a current-mirror + winner-take-all sensing chain
//! (`febim-circuit`). The crate also provides the Monte-Carlo robustness
//! study, the array-scalability sweeps and the density/efficiency metrics
//! behind the paper's evaluation section.
//!
//! # Example
//!
//! ```
//! use febim_core::{EngineConfig, FebimEngine};
//! use febim_data::{rng::seeded_rng, split::stratified_split, synthetic::iris_like};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = iris_like(7)?;
//! let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7))?;
//! let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
//! let report = engine.evaluate(&split.test)?;
//! assert!(report.accuracy > 0.85);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compiler;
pub mod config;
pub mod engine;
pub mod errors;
pub mod metrics;
pub mod monte_carlo;
pub mod report;
pub mod scaling;

pub use compiler::{compile, CrossbarProgram};
pub use config::EngineConfig;
pub use engine::{EvalScratch, EvaluationReport, FebimEngine, InferenceOutcome, InferenceStep};
pub use errors::{CoreError, Result};
pub use metrics::{ops_per_inference, performance_metrics, MetricsConfig, PerformanceMetrics};
pub use monte_carlo::{
    epoch_accuracy, epoch_accuracy_with_threads, variation_sweep, variation_sweep_with_threads,
    EpochAccuracy, VariationPoint,
};
pub use report::{default_experiment_dir, Table};
pub use scaling::{
    column_sweep, figure6_columns, figure6_rows, measure_geometry, row_sweep, ScalingPoint,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The in-memory prediction agrees with the quantized software model
        /// for any test sample: the crossbar is an exact analogue of the
        /// quantized sum when devices are ideal (up to exact ties).
        #[test]
        fn crossbar_matches_quantized_software(seed in 0u64..50, index in 0usize..105) {
            let dataset = iris_like(seed).unwrap();
            let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
            let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
            let sample = split.test.sample(index % split.test.n_samples()).unwrap();
            let outcome = engine.infer(sample).unwrap();
            let software = engine.quantized().predict(sample).unwrap();
            if !outcome.tie_broken {
                let scores = engine.quantized().log_posterior_scores(sample).unwrap();
                let sorted = {
                    let mut s = scores.clone();
                    s.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    s
                };
                // Only compare when the software scores are not themselves tied.
                if (sorted[0] - sorted[1]).abs() > 1e-9 {
                    prop_assert_eq!(outcome.prediction, software);
                }
            }
        }

        /// Operation counts grow monotonically with both array dimensions.
        #[test]
        fn ops_monotone(events in 1usize..32, columns in 1usize..64) {
            let base = ops_per_inference(events, columns);
            prop_assert!(ops_per_inference(events + 1, columns) >= base);
            prop_assert!(ops_per_inference(events, columns + 1) >= base);
        }

        /// Scaling measurements stay finite and positive over a wide geometry range.
        #[test]
        fn scaling_points_are_sane(rows in 1usize..16, cols in 1usize..128) {
            let chain = febim_circuit::SensingChain::febim_calibrated();
            let point = measure_geometry(rows, cols, &chain, 10).unwrap();
            prop_assert!(point.delay > 0.0 && point.delay.is_finite());
            prop_assert!(point.energy_total() > 0.0 && point.energy_total().is_finite());
        }
    }
}
