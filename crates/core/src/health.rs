//! Replica health tracking and online scrub scheduling.
//!
//! Self-healing happens in two layers. The crossbar layer detects and
//! repairs defects (`CrossbarArray::scrub` / `TileGrid::scrub`: BIST-style
//! signature reads, in-place refresh for transient faults, spare-row
//! remapping for stuck cells). This module adds the *policy* layer on top:
//!
//! * [`ReplicaHealth`] — the three-state machine a serving replica moves
//!   through: `Healthy` → `Degraded` (defects found, all repaired) →
//!   `Quarantined` (an unrepairable defect survived; terminal).
//! * [`ScrubPolicy`] — how often to scrub and how much effective threshold
//!   shift the signature check tolerates.
//! * [`ScrubScheduler`] — the countdown state machine driving periodic
//!   scrubs over one engine, mirroring `RecalibrationScheduler`: due checks
//!   with an unmoved state epoch collapse into integer-compare skips (no
//!   fault can have struck an untouched array), so background scrubbing is
//!   cheap enough to interleave with serving.
//!
//! The scheduler owns the health state so every consumer — simulation
//! loops, the serving pool's workers, the chaos tests — applies identical
//! transition rules.

use serde::{Deserialize, Serialize};

use febim_crossbar::ScrubOutcome;

use crate::backend::InferenceBackend;
use crate::engine::FebimEngine;
use crate::errors::{CoreError, Result};
use crate::scheduler::EpochScheduler;

/// Health of one serving replica, as decided by its scrub history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReplicaHealth {
    /// No outstanding defects: the last scrub found nothing.
    #[default]
    Healthy,
    /// Defects were found and fully repaired (in place or via spare rows);
    /// the replica keeps serving but its spare budget is being consumed. A
    /// clean follow-up scrub recovers it to [`ReplicaHealth::Healthy`].
    Degraded,
    /// An unrepairable defect survived a scrub: the replica must stop
    /// taking traffic. Terminal — a stuck cell without a free spare row
    /// never heals.
    Quarantined,
}

impl ReplicaHealth {
    /// Whether a replica in this state may serve traffic.
    pub fn is_serving(self) -> bool {
        !matches!(self, Self::Quarantined)
    }

    /// Compact encoding for lock-free health flags (see `ServingPool`).
    pub fn as_u8(self) -> u8 {
        match self {
            Self::Healthy => 0,
            Self::Degraded => 1,
            Self::Quarantined => 2,
        }
    }

    /// Inverse of [`ReplicaHealth::as_u8`]; unknown encodings collapse to
    /// the safe state, [`ReplicaHealth::Quarantined`].
    pub fn from_u8(value: u8) -> Self {
        match value {
            0 => Self::Healthy,
            1 => Self::Degraded,
            _ => Self::Quarantined,
        }
    }

    /// The state after absorbing one scrub outcome: any unrepaired defect
    /// quarantines, repaired defects degrade, a clean pass recovers —
    /// except out of [`ReplicaHealth::Quarantined`], which is terminal.
    pub fn after_scrub(self, outcome: &ScrubOutcome) -> Self {
        if self == Self::Quarantined {
            return Self::Quarantined;
        }
        if !outcome.fully_repaired() {
            Self::Quarantined
        } else if outcome.is_clean() {
            Self::Healthy
        } else {
            Self::Degraded
        }
    }
}

/// When and how strictly to scrub a replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrubPolicy {
    /// Ticks between scrub checks (the scheduler's countdown period).
    pub check_interval_ticks: u64,
    /// Largest effective threshold-voltage shift (volts) a cell's read
    /// signature may deviate from its programmed target before the cell is
    /// classified defective.
    pub max_vth_shift: f64,
}

impl ScrubPolicy {
    /// A policy scrubbing every `check_interval_ticks` with signature
    /// tolerance `max_vth_shift` volts.
    pub fn new(check_interval_ticks: u64, max_vth_shift: f64) -> Self {
        Self {
            check_interval_ticks,
            max_vth_shift,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero check interval or a
    /// non-positive / non-finite signature tolerance (the crossbar scrub
    /// requires a strictly positive tolerance).
    pub fn validate(&self) -> Result<()> {
        if self.check_interval_ticks == 0 {
            return Err(CoreError::InvalidConfig {
                name: "scrub",
                reason: "check interval must be at least one tick".to_string(),
            });
        }
        if !self.max_vth_shift.is_finite() || self.max_vth_shift <= 0.0 {
            return Err(CoreError::InvalidConfig {
                name: "scrub",
                reason: format!(
                    "signature tolerance must be finite and positive, got {}",
                    self.max_vth_shift
                ),
            });
        }
        Ok(())
    }
}

/// Running totals of one scheduler's scrub activity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Scrub passes actually run.
    pub checks: u64,
    /// Due checks skipped because the state epoch had not moved.
    pub skipped_checks: u64,
    /// Scrubs that found at least one defective cell.
    pub faulty_scrubs: u64,
    /// Health-state transitions applied (each change of state counts once).
    pub transitions: u64,
    /// Merged scrub counters (cells checked/repaired, remaps, pulses,
    /// energy, per-defect reports).
    pub outcome: ScrubOutcome,
}

/// Drives periodic scrub passes and the health state machine of one engine.
///
/// Like `RecalibrationScheduler`, the scheduler owns no engine state — it
/// watches the backend's clock and state epoch through the engine it is
/// handed, so the same value works standalone (explicit
/// [`ScrubScheduler::tick`] calls in a simulation loop) and inside a
/// serving worker ([`ScrubScheduler::note_ticks`] between batches, where
/// the recalibration scheduler already advances the clock).
#[derive(Debug, Clone)]
pub struct ScrubScheduler {
    policy: ScrubPolicy,
    epoch: EpochScheduler,
    health: ReplicaHealth,
    report: ScrubReport,
}

impl ScrubScheduler {
    /// Creates a healthy scheduler with a full countdown until the first
    /// check.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the policy is invalid.
    pub fn new(policy: ScrubPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(Self {
            policy,
            epoch: EpochScheduler::new(policy.check_interval_ticks),
            health: ReplicaHealth::Healthy,
            report: ScrubReport::default(),
        })
    }

    /// The policy this scheduler enforces.
    pub fn policy(&self) -> &ScrubPolicy {
        &self.policy
    }

    /// Current health of the watched replica.
    pub fn health(&self) -> ReplicaHealth {
        self.health
    }

    /// Running totals of checks, skips, defects and repair work.
    pub fn report(&self) -> &ScrubReport {
        &self.report
    }

    /// Advances the engine's physical clock by `ticks` (striking any
    /// scheduled faults that fall due) and runs every scrub check owed in
    /// that window — one per elapsed interval, so a large jump cannot
    /// silently swallow checks, though consecutive due checks with an
    /// unchanged epoch collapse into skips. Returns the merged outcome when
    /// at least one scrub found defects, `None` otherwise.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from repair writes.
    pub fn tick<B: InferenceBackend>(
        &mut self,
        engine: &mut FebimEngine<B>,
        ticks: u64,
    ) -> Result<Option<ScrubOutcome>> {
        engine.advance_time(ticks);
        self.countdown(engine, ticks)
    }

    /// Counts `ticks` against the check interval **without advancing the
    /// engine's clock** — for callers that already aged the engine (a
    /// serving worker whose recalibration scheduler owns the clock) and
    /// must not apply the same wall time twice. Runs every check that falls
    /// due, exactly like [`ScrubScheduler::tick`].
    ///
    /// # Errors
    ///
    /// Propagates programming errors from repair writes.
    pub fn note_ticks<B: InferenceBackend>(
        &mut self,
        engine: &mut FebimEngine<B>,
        ticks: u64,
    ) -> Result<Option<ScrubOutcome>> {
        self.countdown(engine, ticks)
    }

    /// Shared countdown loop of [`ScrubScheduler::tick`] and
    /// [`ScrubScheduler::note_ticks`].
    fn countdown<B: InferenceBackend>(
        &mut self,
        engine: &mut FebimEngine<B>,
        ticks: u64,
    ) -> Result<Option<ScrubOutcome>> {
        let mut merged: Option<ScrubOutcome> = None;
        for _ in 0..self.epoch.due_checks(ticks) {
            if let Some(outcome) = self.check(engine)? {
                merged
                    .get_or_insert_with(ScrubOutcome::default)
                    .merge(&outcome);
            }
        }
        Ok(merged)
    }

    /// Runs one scrub check immediately, regardless of the countdown.
    ///
    /// Skips the pass entirely when the backend's state epoch has not
    /// moved since the previous check (no programming, aging, read or
    /// chaos event touched the array, so no new defect can exist);
    /// otherwise scrubs and feeds the outcome through the health state
    /// machine. Returns the outcome when defects were found.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from repair writes.
    pub fn check<B: InferenceBackend>(
        &mut self,
        engine: &mut FebimEngine<B>,
    ) -> Result<Option<ScrubOutcome>> {
        let epoch = engine.state_epoch();
        if self.epoch.is_unmoved(epoch) {
            self.report.skipped_checks += 1;
            // The epoch snapshot was taken *after* the last repair pass, so
            // an unmoved epoch proves the array still sits in its verified
            // post-repair state: a degraded replica recovers without paying
            // for a rescan. (Quarantined stays terminal.)
            if self.health == ReplicaHealth::Degraded {
                self.health = ReplicaHealth::Healthy;
                self.report.transitions += 1;
            }
            return Ok(None);
        }
        self.report.checks += 1;
        let outcome = engine.scrub(self.policy.max_vth_shift)?;
        // Record the post-repair epoch so the pass itself does not force
        // the next check to rescan an untouched array.
        self.epoch.record(engine.state_epoch());
        let next = self.health.after_scrub(&outcome);
        if next != self.health {
            self.health = next;
            self.report.transitions += 1;
        }
        if outcome.is_clean() {
            return Ok(None);
        }
        self.report.faulty_scrubs += 1;
        self.report.outcome.merge(&outcome);
        Ok(Some(outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_crossbar::{FaultKind, FaultSchedule, ScheduledFault, TileShape};
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use febim_quant::QuantConfig;

    use crate::backend::{CrossbarBackend, TiledFabricBackend};
    use crate::config::EngineConfig;

    fn config() -> EngineConfig {
        EngineConfig::febim_default().with_quant(QuantConfig::febim_optimal())
    }

    fn crossbar_engine() -> FebimEngine<CrossbarBackend> {
        let dataset = iris_like(90).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(90)).unwrap();
        FebimEngine::fit(&split.train, config()).unwrap()
    }

    fn fabric_engine(spares: usize) -> FebimEngine<TiledFabricBackend> {
        let dataset = iris_like(90).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(90)).unwrap();
        let shape = TileShape::new(2, 24).unwrap().with_spare_rows(spares);
        FebimEngine::fit_tiled(&split.train, config(), shape).unwrap()
    }

    fn one_fault(at_tick: u64, permanent: bool) -> FaultSchedule {
        FaultSchedule::new(vec![ScheduledFault {
            at_tick,
            row: 1,
            column: 3,
            kind: FaultKind::StuckErased,
            permanent,
        }])
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(ScrubScheduler::new(ScrubPolicy::new(0, 1e-3)).is_err());
        assert!(ScrubScheduler::new(ScrubPolicy::new(10, 0.0)).is_err());
        assert!(ScrubScheduler::new(ScrubPolicy::new(10, -1e-3)).is_err());
        assert!(ScrubScheduler::new(ScrubPolicy::new(10, f64::NAN)).is_err());
        ScrubScheduler::new(ScrubPolicy::new(10, 1e-3)).unwrap();
    }

    #[test]
    fn health_encoding_round_trips_and_unknown_is_quarantined() {
        for health in [
            ReplicaHealth::Healthy,
            ReplicaHealth::Degraded,
            ReplicaHealth::Quarantined,
        ] {
            assert_eq!(ReplicaHealth::from_u8(health.as_u8()), health);
        }
        assert_eq!(ReplicaHealth::from_u8(250), ReplicaHealth::Quarantined);
        assert!(ReplicaHealth::Healthy.is_serving());
        assert!(ReplicaHealth::Degraded.is_serving());
        assert!(!ReplicaHealth::Quarantined.is_serving());
    }

    #[test]
    fn clean_scrubs_keep_the_replica_healthy_and_skip_on_unmoved_epochs() {
        let mut engine = crossbar_engine();
        let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6)).unwrap();
        assert!(scheduler.check(&mut engine).unwrap().is_none());
        assert_eq!(scheduler.health(), ReplicaHealth::Healthy);
        assert_eq!(scheduler.report().checks, 1);
        // Untouched array: follow-up checks cost one integer compare.
        for _ in 0..4 {
            assert!(scheduler.check(&mut engine).unwrap().is_none());
        }
        assert_eq!(scheduler.report().checks, 1);
        assert_eq!(scheduler.report().skipped_checks, 4);
        assert_eq!(scheduler.report().transitions, 0);
    }

    /// A transient chaos event is detected within one scrub period of its
    /// strike, healed in place, and the replica recovers on the next clean
    /// pass: Healthy → Degraded → Healthy.
    #[test]
    fn transient_fault_degrades_then_recovers() {
        let mut engine = crossbar_engine();
        engine.set_fault_schedule(one_fault(15, false));
        let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6)).unwrap();
        // First interval: nothing has struck yet.
        assert!(scheduler.tick(&mut engine, 10).unwrap().is_none());
        assert_eq!(scheduler.health(), ReplicaHealth::Healthy);
        // The fault strikes at tick 15; the tick-20 check catches it.
        let outcome = scheduler
            .tick(&mut engine, 10)
            .unwrap()
            .expect("the scrub one period after the strike must detect it");
        assert_eq!(outcome.cells_repaired, 1);
        assert!(outcome.fully_repaired());
        assert_eq!(scheduler.health(), ReplicaHealth::Degraded);
        // Next pass is clean: the replica recovers.
        assert!(scheduler.tick(&mut engine, 10).unwrap().is_none());
        assert_eq!(scheduler.health(), ReplicaHealth::Healthy);
        assert_eq!(scheduler.report().transitions, 2);
        assert_eq!(scheduler.report().faulty_scrubs, 1);
        assert_eq!(engine.worst_effective_shift(), 0.0);
    }

    /// A permanent fault on a spare-less monolithic array quarantines the
    /// replica, terminally: later clean-looking passes cannot resurrect it.
    #[test]
    fn permanent_fault_without_spares_quarantines_terminally() {
        let mut engine = crossbar_engine();
        engine.set_fault_schedule(one_fault(5, true));
        let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6)).unwrap();
        let outcome = scheduler
            .tick(&mut engine, 10)
            .unwrap()
            .expect("the stuck cell must be detected");
        assert!(!outcome.fully_repaired());
        assert_eq!(scheduler.health(), ReplicaHealth::Quarantined);
        assert!(!scheduler.health().is_serving());
        let transitions = scheduler.report().transitions;
        for _ in 0..3 {
            scheduler.tick(&mut engine, 10).unwrap();
            assert_eq!(scheduler.health(), ReplicaHealth::Quarantined);
        }
        assert_eq!(scheduler.report().transitions, transitions);
    }

    /// The same permanent fault on a fabric with spare rows is healed by a
    /// remap: the replica degrades instead of quarantining and its reads
    /// return to the fresh bit pattern.
    #[test]
    fn permanent_fault_with_spares_degrades_instead_of_quarantining() {
        let mut engine = fabric_engine(1);
        let fresh = engine.current_map();
        engine.set_fault_schedule(one_fault(5, true));
        let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6)).unwrap();
        let outcome = scheduler
            .tick(&mut engine, 10)
            .unwrap()
            .expect("the stuck cell must be detected");
        assert!(outcome.fully_repaired());
        assert_eq!(outcome.rows_remapped, 1);
        assert_eq!(scheduler.health(), ReplicaHealth::Degraded);
        assert_eq!(engine.current_map(), fresh, "remap must restore bit-exact");
        // Clean follow-up: recovered.
        scheduler.tick(&mut engine, 10).unwrap();
        assert_eq!(scheduler.health(), ReplicaHealth::Healthy);
    }

    /// `note_ticks` runs the same due checks as `tick` but never moves the
    /// engine clock — the serving-worker contract where the recalibration
    /// scheduler owns wall time.
    #[test]
    fn note_ticks_counts_down_without_aging() {
        let mut engine = crossbar_engine();
        engine.set_fault_schedule(one_fault(5, false));
        let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6)).unwrap();
        assert!(scheduler.note_ticks(&mut engine, 25).unwrap().is_none());
        assert_eq!(engine.clock(), 0, "note_ticks must not advance the clock");
        assert_eq!(engine.pending_faults(), 1, "unmoved clock, unstruck fault");
        let report = scheduler.report().clone();
        assert_eq!(report.checks + report.skipped_checks, 2);
        // The clock is advanced externally; note_ticks picks up the strike.
        engine.advance_time(10);
        let outcome = scheduler
            .note_ticks(&mut engine, 10)
            .unwrap()
            .expect("struck fault must be scrubbed");
        assert!(outcome.fully_repaired());
        assert_eq!(engine.clock(), 10);
    }

    #[test]
    fn software_engine_scrubs_are_clean_noops() {
        let dataset = iris_like(60).unwrap();
        let mut engine = FebimEngine::fit_software(&dataset, config()).unwrap();
        engine.set_fault_schedule(one_fault(1, true));
        assert_eq!(engine.pending_faults(), 0);
        let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6)).unwrap();
        for _ in 0..3 {
            assert!(scheduler.tick(&mut engine, 25).unwrap().is_none());
        }
        assert_eq!(scheduler.health(), ReplicaHealth::Healthy);
        assert_eq!(scheduler.report().faulty_scrubs, 0);
    }
}
