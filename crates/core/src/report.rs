//! Experiment reports: tabular results with CSV export, used by the benchmark
//! binaries to persist the regenerated figures and tables.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::errors::{CoreError, Result};

/// A simple tabular experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"fig6a_delay_vs_columns"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; every row must have one entry per header.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells (converted to strings).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count; experiment
    /// code constructs rows statically so a mismatch is a programming error.
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience helper to push a row of formatted floating-point values.
    ///
    /// Values with a magnitude below `1e-3` (device currents, energies,
    /// delays) are written in scientific notation so they survive the
    /// fixed-precision formatting.
    pub fn push_numeric_row(&mut self, cells: &[f64]) {
        let formatted: Vec<String> = cells
            .iter()
            .map(|&c| {
                if c != 0.0 && c.abs() < 1e-3 {
                    format!("{c:.6e}")
                } else {
                    format!("{c:.6}")
                }
            })
            .collect();
        self.push_row(&formatted);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as an aligned plain-text block for console output.
    pub fn to_pretty(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(index, h)| format!("{h:>width$}", width = widths[index]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(index, cell)| format!("{cell:>width$}", width = widths[index]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Writes the table as `<dir>/<title>.csv`, creating the directory first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] wrapping the I/O failure if the
    /// directory or file cannot be written.
    pub fn write_csv(&self, dir: &Path) -> Result<std::path::PathBuf> {
        fs::create_dir_all(dir).map_err(|err| CoreError::InvalidConfig {
            name: "output_dir",
            reason: format!("cannot create {}: {err}", dir.display()),
        })?;
        let path = dir.join(format!("{}.csv", self.title));
        let mut file = fs::File::create(&path).map_err(|err| CoreError::InvalidConfig {
            name: "output_file",
            reason: format!("cannot create {}: {err}", path.display()),
        })?;
        file.write_all(self.to_csv().as_bytes())
            .map_err(|err| CoreError::InvalidConfig {
                name: "output_file",
                reason: format!("cannot write {}: {err}", path.display()),
            })?;
        Ok(path)
    }
}

/// The default directory used by the benchmark binaries for CSV output.
pub fn default_experiment_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("target").join("experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.push_row(&["1".to_string(), "2".to_string()]);
        table.push_numeric_row(&[3.5, 4.25]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert!(lines[2].starts_with("3.5"));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells for 2 headers")]
    fn mismatched_row_panics() {
        let mut table = Table::new("demo", &["a", "b"]);
        table.push_row(&["only one".to_string()]);
    }

    #[test]
    fn pretty_rendering_contains_title_and_data() {
        let mut table = Table::new("pretty", &["metric", "value"]);
        table.push_row(&["density".to_string(), "26.32".to_string()]);
        let text = table.to_pretty();
        assert!(text.contains("== pretty =="));
        assert!(text.contains("26.32"));
    }

    #[test]
    fn csv_file_is_written() {
        let dir = std::env::temp_dir().join(format!("febim-report-test-{}", std::process::id()));
        let mut table = Table::new("written", &["x"]);
        table.push_row(&["1".to_string()]);
        let path = table.write_csv(&dir).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("x"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_dir_is_under_target() {
        assert!(default_experiment_dir().starts_with("target"));
    }
}
