//! Monte-Carlo robustness analysis against FeFET threshold-voltage variation
//! (Fig. 8(c)) and multi-epoch accuracy evaluation (Fig. 7 / Fig. 8(a)).
//!
//! All sweeps are generic over the engine's [`InferenceBackend`]: the
//! `*_with_backend` entry points accept a builder closure, so the same
//! epoch-parallel harness drives the single-array crossbar, the tiled
//! multi-array fabric (whose per-tile conductance caches are rebuilt
//! independently inside each epoch worker — tiles parallelize across the
//! epoch grid) or the exact software reference. The non-suffixed entry
//! points keep the paper's single-array default.

use serde::{Deserialize, Serialize};

use febim_crossbar::RefreshOutcome;
use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::{AccuracyStats, Dataset};
use febim_device::{NonIdealityStack, VariationModel};
use febim_quant::QuantConfig;

use crate::backend::InferenceBackend;
use crate::config::EngineConfig;
use crate::engine::FebimEngine;
use crate::errors::{CoreError, Result};

/// Accuracy statistics of one variation level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationPoint {
    /// Threshold-voltage variation in millivolts.
    pub sigma_vth_mv: f64,
    /// Accuracy statistics over the Monte-Carlo epochs.
    pub stats: AccuracyStats,
    /// Individual per-epoch accuracies (for distribution plots).
    pub accuracies: Vec<f64>,
}

/// Accuracy statistics of one epoch-averaged evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochAccuracy {
    /// Mean FP64 software-baseline accuracy over the epochs.
    pub software: AccuracyStats,
    /// Mean quantized-software accuracy over the epochs.
    pub quantized: AccuracyStats,
    /// Mean in-memory (crossbar + WTA) accuracy over the epochs.
    pub in_memory: AccuracyStats,
}

/// One non-ideality severity scenario of the noise campaign: a stack of
/// physical non-idealities plus how long the array serves before the aged
/// accuracy is measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseScenario {
    /// Human-readable severity label (e.g. `"mild-drift"`).
    pub label: String,
    /// The non-ideality stack applied to every epoch's array.
    pub stack: NonIdealityStack,
    /// Physical ticks the array ages between programming and the aged
    /// evaluation.
    pub age_ticks: u64,
}

impl NoiseScenario {
    /// Creates a scenario.
    pub fn new(label: impl Into<String>, stack: NonIdealityStack, age_ticks: u64) -> Self {
        Self {
            label: label.into(),
            stack,
            age_ticks,
        }
    }
}

/// Accuracy of one (array scale × severity) cell of the noise campaign:
/// the accuracy floor before ageing, after ageing, and after an online
/// recalibration pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoisePoint {
    /// Severity label of the scenario.
    pub label: String,
    /// Quantization configuration setting the array scale.
    pub quant: QuantConfig,
    /// Realized evidence columns of the programmed array (the scale axis).
    pub columns: usize,
    /// Ticks the array aged before the aged evaluation.
    pub age_ticks: u64,
    /// Accuracy of the freshly programmed array.
    pub fresh: AccuracyStats,
    /// Accuracy after ageing (drift plus accumulated read disturb).
    pub aged: AccuracyStats,
    /// Accuracy after the recalibration pass.
    pub recovered: AccuracyStats,
    /// Refresh work of the recalibration passes, merged over the epochs.
    pub refresh: RefreshOutcome,
}

fn check_epochs(epochs: usize) -> Result<()> {
    if epochs == 0 {
        return Err(CoreError::InvalidConfig {
            name: "epochs",
            reason: "at least one training/inference epoch is required".to_string(),
        });
    }
    Ok(())
}

/// Number of worker threads used for Monte-Carlo epochs.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `run(epoch)` for every epoch in `0..epochs` across up to `threads`
/// scoped worker threads and returns the per-epoch values **in epoch order**.
///
/// Each epoch derives its RNG state from its own index, so epochs are
/// independent; splitting them into contiguous chunks and re-concatenating
/// the chunk outputs reproduces the serial result byte for byte. On failure
/// the error of the earliest failing epoch is returned, matching the error a
/// serial loop would surface.
fn epoch_values<T, F>(epochs: usize, threads: usize, run: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let threads = threads.max(1).min(epochs.max(1));
    if threads == 1 {
        return (0..epochs).map(run).collect();
    }
    let chunk = epochs.div_ceil(threads);
    let mut per_epoch: Vec<std::result::Result<T, CoreError>> = Vec::with_capacity(epochs);
    std::thread::scope(|scope| {
        let run = &run;
        let workers: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let start = worker * chunk;
                    let end = epochs.min(start + chunk);
                    (start..end).map(run).collect::<Vec<_>>()
                })
            })
            .collect();
        for worker in workers {
            per_epoch.extend(worker.join().expect("Monte-Carlo worker panicked"));
        }
    });
    per_epoch.into_iter().collect()
}

/// Runs `epochs` train/test epochs (fresh stratified split and retraining per
/// epoch, as in the paper's 100-epoch protocol) and reports the accuracy of
/// the software baseline, the quantized software model and the in-memory
/// engine.
///
/// Epochs run in parallel across the available cores. Every epoch seeds its
/// own RNGs from the epoch index, so the returned statistics are
/// byte-identical to a serial execution of the same seeds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero epochs or an invalid test
/// ratio and propagates training/inference errors.
pub fn epoch_accuracy(
    dataset: &Dataset,
    config: &EngineConfig,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
) -> Result<EpochAccuracy> {
    epoch_accuracy_with_threads(dataset, config, test_ratio, epochs, seed, default_threads())
}

/// [`epoch_accuracy`] with an explicit worker-thread count (`1` forces the
/// serial reference execution).
///
/// # Errors
///
/// Same as [`epoch_accuracy`].
pub fn epoch_accuracy_with_threads(
    dataset: &Dataset,
    config: &EngineConfig,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
) -> Result<EpochAccuracy> {
    epoch_accuracy_with_backend(
        dataset,
        config,
        test_ratio,
        epochs,
        seed,
        threads,
        FebimEngine::fit,
    )
}

/// [`epoch_accuracy_with_threads`] generic over the inference backend:
/// `build` constructs the per-epoch engine (e.g. `FebimEngine::fit`, or a
/// closure capturing a [`febim_crossbar::TileShape`] that calls
/// [`FebimEngine::fit_tiled`]). Epochs — and with a tiled builder, every
/// tile of every epoch's fabric — run in parallel across the worker threads.
///
/// # Errors
///
/// Same as [`epoch_accuracy`], plus whatever `build` returns.
pub fn epoch_accuracy_with_backend<B, F>(
    dataset: &Dataset,
    config: &EngineConfig,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
    build: F,
) -> Result<EpochAccuracy>
where
    B: InferenceBackend,
    F: Fn(&Dataset, EngineConfig) -> Result<FebimEngine<B>> + Sync,
{
    check_epochs(epochs)?;
    let per_epoch = epoch_values(epochs, threads, |epoch| {
        let mut rng = seeded_rng(seed.wrapping_add(epoch as u64));
        let split = stratified_split(dataset, test_ratio, &mut rng)?;
        let epoch_config = EngineConfig {
            variation_seed: seed.wrapping_mul(0x9e37_79b9).wrapping_add(epoch as u64),
            ..config.clone()
        };
        let engine = build(&split.train, epoch_config)?;
        Ok((
            engine.software_model().score(&split.test)?,
            engine.quantized().score(&split.test)?,
            engine.evaluate(&split.test)?.accuracy,
        ))
    })?;
    let mut software = Vec::with_capacity(epochs);
    let mut quantized = Vec::with_capacity(epochs);
    let mut in_memory = Vec::with_capacity(epochs);
    for (software_accuracy, quantized_accuracy, in_memory_accuracy) in per_epoch {
        software.push(software_accuracy);
        quantized.push(quantized_accuracy);
        in_memory.push(in_memory_accuracy);
    }
    Ok(EpochAccuracy {
        software: AccuracyStats::from_values(&software)?,
        quantized: AccuracyStats::from_values(&quantized)?,
        in_memory: AccuracyStats::from_values(&in_memory)?,
    })
}

/// Sweeps the FeFET variation level and reports the in-memory accuracy
/// distribution at each σ_VTH (the Fig. 8(c) experiment).
///
/// The epochs of every variation level run in parallel across the available
/// cores; per-epoch seeding keeps the reported distributions byte-identical
/// to a serial execution.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero epochs and propagates
/// training/inference errors.
pub fn variation_sweep(
    dataset: &Dataset,
    config: &EngineConfig,
    sigmas_mv: &[f64],
    test_ratio: f64,
    epochs: usize,
    seed: u64,
) -> Result<Vec<VariationPoint>> {
    variation_sweep_with_threads(
        dataset,
        config,
        sigmas_mv,
        test_ratio,
        epochs,
        seed,
        default_threads(),
    )
}

/// [`variation_sweep`] with an explicit worker-thread count (`1` forces the
/// serial reference execution).
///
/// # Errors
///
/// Same as [`variation_sweep`].
pub fn variation_sweep_with_threads(
    dataset: &Dataset,
    config: &EngineConfig,
    sigmas_mv: &[f64],
    test_ratio: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<VariationPoint>> {
    variation_sweep_with_backend(
        dataset,
        config,
        sigmas_mv,
        test_ratio,
        epochs,
        seed,
        threads,
        FebimEngine::fit,
    )
}

/// [`variation_sweep_with_threads`] generic over the inference backend:
/// `build` constructs the per-epoch engine, so the Fig. 8(c) experiment can
/// run against the tiled fabric (or any other backend) unchanged.
///
/// # Errors
///
/// Same as [`variation_sweep`], plus whatever `build` returns.
#[allow(clippy::too_many_arguments)]
pub fn variation_sweep_with_backend<B, F>(
    dataset: &Dataset,
    config: &EngineConfig,
    sigmas_mv: &[f64],
    test_ratio: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
    build: F,
) -> Result<Vec<VariationPoint>>
where
    B: InferenceBackend,
    F: Fn(&Dataset, EngineConfig) -> Result<FebimEngine<B>> + Sync,
{
    check_epochs(epochs)?;
    let mut points = Vec::with_capacity(sigmas_mv.len());
    for &sigma_mv in sigmas_mv {
        let accuracies = epoch_values(epochs, threads, |epoch| {
            let mut rng = seeded_rng(seed.wrapping_add(epoch as u64));
            let split = stratified_split(dataset, test_ratio, &mut rng)?;
            let epoch_config = config.clone().with_variation(
                VariationModel::from_millivolts(sigma_mv),
                seed.wrapping_mul(31)
                    .wrapping_add((epoch as u64) << 8)
                    .wrapping_add(sigma_mv as u64),
            );
            let engine = build(&split.train, epoch_config)?;
            Ok(engine.evaluate(&split.test)?.accuracy)
        })?;
        points.push(VariationPoint {
            sigma_vth_mv: sigma_mv,
            stats: AccuracyStats::from_values(&accuracies)?,
            accuracies,
        });
    }
    Ok(points)
}

/// The time-varying non-ideality campaign: for every array scale (a
/// [`QuantConfig`]) × severity scenario, Monte-Carlo epochs measure the
/// accuracy floor of a freshly programmed array, the same array after
/// ageing under the scenario's stack (retention drift plus the read
/// disturb accumulated by the fresh evaluation itself), and after one
/// recalibration pass at `max_vth_shift` tolerance.
///
/// Epochs run in parallel across the available cores with the same
/// epoch-seeded determinism contract as [`epoch_accuracy`]: the returned
/// points are byte-identical to a serial execution.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero epochs and propagates
/// training, programming and recalibration errors.
#[allow(clippy::too_many_arguments)]
pub fn noise_campaign(
    dataset: &Dataset,
    config: &EngineConfig,
    scales: &[QuantConfig],
    scenarios: &[NoiseScenario],
    max_vth_shift: f64,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
) -> Result<Vec<NoisePoint>> {
    noise_campaign_with_backend(
        dataset,
        config,
        scales,
        scenarios,
        max_vth_shift,
        test_ratio,
        epochs,
        seed,
        default_threads(),
        FebimEngine::fit,
    )
}

/// [`noise_campaign`] with an explicit worker-thread count (`1` forces the
/// serial reference execution).
///
/// # Errors
///
/// Same as [`noise_campaign`].
#[allow(clippy::too_many_arguments)]
pub fn noise_campaign_with_threads(
    dataset: &Dataset,
    config: &EngineConfig,
    scales: &[QuantConfig],
    scenarios: &[NoiseScenario],
    max_vth_shift: f64,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<NoisePoint>> {
    noise_campaign_with_backend(
        dataset,
        config,
        scales,
        scenarios,
        max_vth_shift,
        test_ratio,
        epochs,
        seed,
        threads,
        FebimEngine::fit,
    )
}

/// [`noise_campaign`] generic over the inference backend and the worker
/// thread count (`threads == 1` forces the serial reference execution).
///
/// # Errors
///
/// Same as [`noise_campaign`], plus whatever `build` returns.
#[allow(clippy::too_many_arguments)]
pub fn noise_campaign_with_backend<B, F>(
    dataset: &Dataset,
    config: &EngineConfig,
    scales: &[QuantConfig],
    scenarios: &[NoiseScenario],
    max_vth_shift: f64,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
    threads: usize,
    build: F,
) -> Result<Vec<NoisePoint>>
where
    B: InferenceBackend,
    F: Fn(&Dataset, EngineConfig) -> Result<FebimEngine<B>> + Sync,
{
    check_epochs(epochs)?;
    let mut points = Vec::with_capacity(scales.len() * scenarios.len());
    for (scale_index, &quant) in scales.iter().enumerate() {
        for (scenario_index, scenario) in scenarios.iter().enumerate() {
            let per_epoch = epoch_values(epochs, threads, |epoch| {
                let mut rng = seeded_rng(seed.wrapping_add(epoch as u64));
                let split = stratified_split(dataset, test_ratio, &mut rng)?;
                let epoch_config = EngineConfig {
                    quant,
                    non_idealities: scenario.stack,
                    variation_seed: seed
                        .wrapping_mul(0x9e37_79b9)
                        .wrapping_add((scale_index as u64) << 24)
                        .wrapping_add((scenario_index as u64) << 16)
                        .wrapping_add(epoch as u64),
                    ..config.clone()
                };
                let mut engine = build(&split.train, epoch_config)?;
                let columns = engine.backend_info().columns;
                let fresh = engine.evaluate(&split.test)?.accuracy;
                engine.advance_time(scenario.age_ticks);
                let aged = engine.evaluate(&split.test)?.accuracy;
                let refresh = engine.recalibrate(max_vth_shift)?;
                let recovered = engine.evaluate(&split.test)?.accuracy;
                Ok((columns, fresh, aged, recovered, refresh))
            })?;
            let mut columns = 0usize;
            let mut fresh = Vec::with_capacity(epochs);
            let mut aged = Vec::with_capacity(epochs);
            let mut recovered = Vec::with_capacity(epochs);
            let mut refresh = RefreshOutcome::default();
            for (epoch_columns, f, a, r, outcome) in per_epoch {
                columns = columns.max(epoch_columns);
                fresh.push(f);
                aged.push(a);
                recovered.push(r);
                refresh.merge(&outcome);
            }
            points.push(NoisePoint {
                label: scenario.label.clone(),
                quant,
                columns,
                age_ticks: scenario.age_ticks,
                fresh: AccuracyStats::from_values(&fresh)?,
                aged: AccuracyStats::from_values(&aged)?,
                recovered: AccuracyStats::from_values(&recovered)?,
                refresh,
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::synthetic::iris_like;

    #[test]
    fn zero_epochs_rejected() {
        let dataset = iris_like(60).unwrap();
        let config = EngineConfig::febim_default();
        assert!(epoch_accuracy(&dataset, &config, 0.7, 0, 1).is_err());
        assert!(variation_sweep(&dataset, &config, &[0.0], 0.7, 0, 1).is_err());
    }

    #[test]
    fn epoch_accuracy_tracks_baseline() {
        let dataset = iris_like(61).unwrap();
        let config = EngineConfig::febim_default();
        let result = epoch_accuracy(&dataset, &config, 0.7, 5, 61).unwrap();
        assert_eq!(result.software.count, 5);
        assert!(
            result.software.mean > 0.88,
            "software {}",
            result.software.mean
        );
        assert!(
            result.software.mean - result.in_memory.mean < 0.05,
            "software {} in-memory {}",
            result.software.mean,
            result.in_memory.mean
        );
        assert!(
            (result.quantized.mean - result.in_memory.mean).abs() < 0.05,
            "quantized {} in-memory {}",
            result.quantized.mean,
            result.in_memory.mean
        );
    }

    #[test]
    fn variation_sweep_degrades_gracefully() {
        let dataset = iris_like(62).unwrap();
        let config = EngineConfig::febim_default();
        let points = variation_sweep(&dataset, &config, &[0.0, 45.0], 0.7, 4, 62).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].sigma_vth_mv, 0.0);
        assert_eq!(points[1].accuracies.len(), 4);
        // Fig. 8(c): the mean accuracy drop at 45 mV is around 5 %; allow a
        // generous bound for the small epoch count used in this test.
        let drop = points[0].stats.mean - points[1].stats.mean;
        assert!(drop < 0.20, "accuracy drop {drop}");
        assert!(points[1].stats.mean > 0.6);
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let dataset = iris_like(63).unwrap();
        let config = EngineConfig::febim_default();
        let a = epoch_accuracy(&dataset, &config, 0.7, 3, 7).unwrap();
        let b = epoch_accuracy(&dataset, &config, 0.7, 3, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_epochs_are_byte_identical_to_serial() {
        let dataset = iris_like(64).unwrap();
        let config = EngineConfig::febim_default()
            .with_variation(febim_device::VariationModel::from_millivolts(30.0), 5);
        // Five epochs across 1 (serial reference), 2 (uneven chunks), 3
        // (chunk boundary mid-range) and 8 (more workers than epochs) threads
        // must agree bit for bit, and the default-thread public entry point
        // must match the serial reference too.
        let serial = epoch_accuracy_with_threads(&dataset, &config, 0.7, 5, 11, 1).unwrap();
        for threads in [2, 3, 8] {
            let parallel =
                epoch_accuracy_with_threads(&dataset, &config, 0.7, 5, 11, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        assert_eq!(
            serial,
            epoch_accuracy(&dataset, &config, 0.7, 5, 11).unwrap()
        );
    }

    #[test]
    fn parallel_variation_sweep_is_byte_identical_to_serial() {
        let dataset = iris_like(65).unwrap();
        let config = EngineConfig::febim_default();
        let sigmas = [0.0, 45.0];
        let serial =
            variation_sweep_with_threads(&dataset, &config, &sigmas, 0.7, 4, 9, 1).unwrap();
        for threads in [2, 4, 7] {
            let parallel =
                variation_sweep_with_threads(&dataset, &config, &sigmas, 0.7, 4, 9, threads)
                    .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        assert_eq!(
            serial,
            variation_sweep(&dataset, &config, &sigmas, 0.7, 4, 9).unwrap()
        );
    }

    #[test]
    fn tiled_backend_sweeps_match_the_monolithic_backend() {
        // The tiled fabric's reads are bit-identical to the single array's,
        // so every Monte-Carlo statistic must match byte for byte — including
        // under device variation (same RNG consumption order).
        let dataset = iris_like(67).unwrap();
        let config = EngineConfig::febim_default();
        let shape = febim_crossbar::TileShape::new(2, 24).unwrap();
        let build_tiled = |train: &Dataset, epoch_config: EngineConfig| {
            FebimEngine::fit_tiled(train, epoch_config, shape)
        };
        let monolithic = epoch_accuracy_with_threads(&dataset, &config, 0.7, 3, 13, 2).unwrap();
        let tiled =
            epoch_accuracy_with_backend(&dataset, &config, 0.7, 3, 13, 2, build_tiled).unwrap();
        assert_eq!(monolithic, tiled);
        let sweep_monolithic =
            variation_sweep_with_threads(&dataset, &config, &[45.0], 0.7, 2, 5, 2).unwrap();
        let sweep_tiled =
            variation_sweep_with_backend(&dataset, &config, &[45.0], 0.7, 2, 5, 2, build_tiled)
                .unwrap();
        assert_eq!(sweep_monolithic, sweep_tiled);
    }

    fn drifted_scenarios() -> Vec<NoiseScenario> {
        use febim_device::{ReadDisturb, RetentionDrift};
        vec![
            NoiseScenario::new("ideal", NonIdealityStack::ideal(), 100_000),
            NoiseScenario::new(
                "drift+disturb",
                NonIdealityStack::ideal()
                    .with_drift(RetentionDrift::new(0.05, 100))
                    .with_disturb(ReadDisturb::new(64, 0.002)),
                100_000,
            ),
        ]
    }

    #[test]
    fn noise_campaign_recovers_fresh_accuracy_and_counts_refresh_work() {
        let dataset = iris_like(68).unwrap();
        let config = EngineConfig::febim_default();
        let scales = [QuantConfig::febim_optimal()];
        let points = noise_campaign(
            &dataset,
            &config,
            &scales,
            &drifted_scenarios(),
            1e-6,
            0.7,
            3,
            68,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        let ideal = &points[0];
        let noisy = &points[1];
        assert!(ideal.columns > 0);
        // Ideal arrays never drift, so ageing is a no-op and recalibration
        // finds nothing to refresh.
        assert_eq!(ideal.fresh, ideal.aged);
        assert_eq!(ideal.fresh, ideal.recovered);
        assert_eq!(ideal.refresh.cells_refreshed, 0);
        // The drifted scenario does real refresh work, and with σ_VTH = 0 the
        // refreshed array reproduces the fresh accuracy exactly.
        assert!(noisy.refresh.cells_refreshed > 0);
        assert!(noisy.refresh.pulses_applied > 0);
        assert!(noisy.refresh.energy_joules > 0.0);
        assert_eq!(noisy.fresh, noisy.recovered);
    }

    #[test]
    fn parallel_noise_campaign_is_byte_identical_to_serial() {
        let dataset = iris_like(69).unwrap();
        let config = EngineConfig::febim_default();
        let scales = [QuantConfig::febim_optimal()];
        let scenarios = drifted_scenarios();
        let serial = noise_campaign_with_threads(
            &dataset, &config, &scales, &scenarios, 1e-6, 0.7, 4, 69, 1,
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let parallel = noise_campaign_with_threads(
                &dataset, &config, &scales, &scenarios, 1e-6, 0.7, 4, 69, threads,
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn tiled_noise_campaign_matches_the_monolithic_backend() {
        let dataset = iris_like(70).unwrap();
        let config = EngineConfig::febim_default();
        let scales = [QuantConfig::febim_optimal()];
        let scenarios = drifted_scenarios();
        let shape = febim_crossbar::TileShape::new(2, 24).unwrap();
        let build_tiled = |train: &Dataset, epoch_config: EngineConfig| {
            FebimEngine::fit_tiled(train, epoch_config, shape)
        };
        let monolithic = noise_campaign_with_threads(
            &dataset, &config, &scales, &scenarios, 1e-6, 0.7, 3, 70, 2,
        )
        .unwrap();
        let tiled = noise_campaign_with_backend(
            &dataset,
            &config,
            &scales,
            &scenarios,
            1e-6,
            0.7,
            3,
            70,
            2,
            build_tiled,
        )
        .unwrap();
        assert_eq!(monolithic, tiled);
    }

    #[test]
    fn epoch_errors_surface_in_epoch_order() {
        // A failing epoch must report the earliest epoch's error regardless
        // of thread interleaving; here every epoch fails identically with an
        // invalid test ratio.
        let dataset = iris_like(66).unwrap();
        let config = EngineConfig::febim_default();
        let serial = epoch_accuracy_with_threads(&dataset, &config, 2.0, 4, 3, 1).unwrap_err();
        let parallel = epoch_accuracy_with_threads(&dataset, &config, 2.0, 4, 3, 4).unwrap_err();
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
