//! Monte-Carlo robustness analysis against FeFET threshold-voltage variation
//! (Fig. 8(c)) and multi-epoch accuracy evaluation (Fig. 7 / Fig. 8(a)).

use serde::{Deserialize, Serialize};

use febim_data::rng::seeded_rng;
use febim_data::split::stratified_split;
use febim_data::{AccuracyStats, Dataset};
use febim_device::VariationModel;

use crate::config::EngineConfig;
use crate::engine::FebimEngine;
use crate::errors::{CoreError, Result};

/// Accuracy statistics of one variation level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationPoint {
    /// Threshold-voltage variation in millivolts.
    pub sigma_vth_mv: f64,
    /// Accuracy statistics over the Monte-Carlo epochs.
    pub stats: AccuracyStats,
    /// Individual per-epoch accuracies (for distribution plots).
    pub accuracies: Vec<f64>,
}

/// Accuracy statistics of one epoch-averaged evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochAccuracy {
    /// Mean FP64 software-baseline accuracy over the epochs.
    pub software: AccuracyStats,
    /// Mean quantized-software accuracy over the epochs.
    pub quantized: AccuracyStats,
    /// Mean in-memory (crossbar + WTA) accuracy over the epochs.
    pub in_memory: AccuracyStats,
}

fn check_epochs(epochs: usize) -> Result<()> {
    if epochs == 0 {
        return Err(CoreError::InvalidConfig {
            name: "epochs",
            reason: "at least one training/inference epoch is required".to_string(),
        });
    }
    Ok(())
}

/// Runs `epochs` train/test epochs (fresh stratified split and retraining per
/// epoch, as in the paper's 100-epoch protocol) and reports the accuracy of
/// the software baseline, the quantized software model and the in-memory
/// engine.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero epochs or an invalid test
/// ratio and propagates training/inference errors.
pub fn epoch_accuracy(
    dataset: &Dataset,
    config: &EngineConfig,
    test_ratio: f64,
    epochs: usize,
    seed: u64,
) -> Result<EpochAccuracy> {
    check_epochs(epochs)?;
    let mut software = Vec::with_capacity(epochs);
    let mut quantized = Vec::with_capacity(epochs);
    let mut in_memory = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let mut rng = seeded_rng(seed.wrapping_add(epoch as u64));
        let split = stratified_split(dataset, test_ratio, &mut rng)?;
        let epoch_config = EngineConfig {
            variation_seed: seed.wrapping_mul(0x9e37_79b9).wrapping_add(epoch as u64),
            ..config.clone()
        };
        let engine = FebimEngine::fit(&split.train, epoch_config)?;
        software.push(engine.software_model().score(&split.test)?);
        quantized.push(engine.quantized().score(&split.test)?);
        in_memory.push(engine.evaluate(&split.test)?.accuracy);
    }
    Ok(EpochAccuracy {
        software: AccuracyStats::from_values(&software)?,
        quantized: AccuracyStats::from_values(&quantized)?,
        in_memory: AccuracyStats::from_values(&in_memory)?,
    })
}

/// Sweeps the FeFET variation level and reports the in-memory accuracy
/// distribution at each σ_VTH (the Fig. 8(c) experiment).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero epochs and propagates
/// training/inference errors.
pub fn variation_sweep(
    dataset: &Dataset,
    config: &EngineConfig,
    sigmas_mv: &[f64],
    test_ratio: f64,
    epochs: usize,
    seed: u64,
) -> Result<Vec<VariationPoint>> {
    check_epochs(epochs)?;
    let mut points = Vec::with_capacity(sigmas_mv.len());
    for &sigma_mv in sigmas_mv {
        let mut accuracies = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let mut rng = seeded_rng(seed.wrapping_add(epoch as u64));
            let split = stratified_split(dataset, test_ratio, &mut rng)?;
            let epoch_config = config.clone().with_variation(
                VariationModel::from_millivolts(sigma_mv),
                seed.wrapping_mul(31)
                    .wrapping_add((epoch as u64) << 8)
                    .wrapping_add(sigma_mv as u64),
            );
            let engine = FebimEngine::fit(&split.train, epoch_config)?;
            accuracies.push(engine.evaluate(&split.test)?.accuracy);
        }
        points.push(VariationPoint {
            sigma_vth_mv: sigma_mv,
            stats: AccuracyStats::from_values(&accuracies)?,
            accuracies,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::synthetic::iris_like;

    #[test]
    fn zero_epochs_rejected() {
        let dataset = iris_like(60).unwrap();
        let config = EngineConfig::febim_default();
        assert!(epoch_accuracy(&dataset, &config, 0.7, 0, 1).is_err());
        assert!(variation_sweep(&dataset, &config, &[0.0], 0.7, 0, 1).is_err());
    }

    #[test]
    fn epoch_accuracy_tracks_baseline() {
        let dataset = iris_like(61).unwrap();
        let config = EngineConfig::febim_default();
        let result = epoch_accuracy(&dataset, &config, 0.7, 5, 61).unwrap();
        assert_eq!(result.software.count, 5);
        assert!(
            result.software.mean > 0.88,
            "software {}",
            result.software.mean
        );
        assert!(
            result.software.mean - result.in_memory.mean < 0.05,
            "software {} in-memory {}",
            result.software.mean,
            result.in_memory.mean
        );
        assert!(
            (result.quantized.mean - result.in_memory.mean).abs() < 0.05,
            "quantized {} in-memory {}",
            result.quantized.mean,
            result.in_memory.mean
        );
    }

    #[test]
    fn variation_sweep_degrades_gracefully() {
        let dataset = iris_like(62).unwrap();
        let config = EngineConfig::febim_default();
        let points = variation_sweep(&dataset, &config, &[0.0, 45.0], 0.7, 4, 62).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].sigma_vth_mv, 0.0);
        assert_eq!(points[1].accuracies.len(), 4);
        // Fig. 8(c): the mean accuracy drop at 45 mV is around 5 %; allow a
        // generous bound for the small epoch count used in this test.
        let drop = points[0].stats.mean - points[1].stats.mean;
        assert!(drop < 0.20, "accuracy drop {drop}");
        assert!(points[1].stats.mean > 0.6);
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let dataset = iris_like(63).unwrap();
        let config = EngineConfig::febim_default();
        let a = epoch_accuracy(&dataset, &config, 0.7, 3, 7).unwrap();
        let b = epoch_accuracy(&dataset, &config, 0.7, 3, 7).unwrap();
        assert_eq!(a, b);
    }
}
