//! Concurrent batch-serving engine pool.
//!
//! The engine answers one query at a time; a serving workload is many
//! independent clients querying the *same* compiled model. This module
//! turns N engine replicas (any [`InferenceBackend`], all programmed from
//! one compiled/tiled program) into a [`ServingPool`]:
//!
//! ```text
//!  clients ──submit()──▶ bounded MPSC queue ──▶ worker 0 ─ engine replica 0
//!     │                  (backpressure:          worker 1 ─ engine replica 1
//!     │                   QueueFull / block)       ⋮            ⋮
//!     ◀──Ticket::wait()── per-request channel ◀─ worker N-1 ─ replica N-1
//! ```
//!
//! Each worker pops a **batch** of queued requests (up to
//! [`ServingConfig::max_batch`], waiting at most
//! [`ServingConfig::max_wait_ticks`] queue polls for stragglers — ticks,
//! not wall-clock, so tests are deterministic), runs it through the
//! backend's grouped-read path ([`InferenceBackend::infer_batch_into`]) with
//! a per-worker reused [`EvalScratch`](crate::engine::EvalScratch), and
//! answers every request with its
//! prediction plus the per-batch amortized delay/energy telemetry.
//!
//! ## Backpressure and shutdown
//!
//! The queue is bounded: [`ServingPool::submit`] never blocks and returns
//! [`ServingError::QueueFull`] when the queue is at capacity, while
//! [`ServingPool::submit_blocking`] waits for a slot. Shutdown is
//! deterministic — every request that ever entered the queue is answered:
//!
//! * [`ServingPool::shutdown`] (and dropping the pool) closes the intake and
//!   **drains**: workers keep answering until the queue is empty.
//! * [`ServingPool::abort`] closes the intake and answers every request
//!   still queued with the typed [`ServingError::ShutDown`]; only batches a
//!   worker already holds finish normally.
//!
//! A [`Ticket`] can therefore never hang: its request is either answered,
//! rejected with a typed error, or its channel is dropped (worker death),
//! which [`Ticket::wait`] also reports as [`ServingError::ShutDown`]. Nor
//! can a producer: when the **last** worker exits — normally or by panic —
//! a drop guard closes the intake and rejects everything still queued, so
//! blocked [`ServingPool::submit_blocking`] callers fail fast instead of
//! waiting on a queue nothing will ever pop.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use febim_circuit::{DelayBreakdown, InferenceEnergy};

use crate::backend::{BatchTelemetry, InferenceBackend};
use crate::engine::{FebimEngine, InferenceStep};
use crate::errors::CoreError;

/// Knobs of the batch-coalescing serving pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Largest number of requests a worker groups into one batched read.
    pub max_batch: usize,
    /// How many queue polls a worker spends waiting for stragglers before
    /// dispatching a partial batch. Ticks are queue polls (each releases the
    /// queue lock and yields), not wall-clock time, so batching behaviour is
    /// deterministic under test. `0` dispatches whatever one poll finds.
    pub max_wait_ticks: u32,
    /// Capacity of the bounded request queue (the backpressure limit).
    pub queue_depth: usize,
}

impl ServingConfig {
    /// Default serving point: batches of up to 8, a few straggler polls, a
    /// queue deep enough to keep every replica busy.
    pub fn febim_default() -> Self {
        Self {
            max_batch: 8,
            max_wait_ticks: 4,
            queue_depth: 64,
        }
    }

    /// Returns a copy with a different maximum batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with a different straggler-poll budget.
    pub fn with_max_wait_ticks(mut self, ticks: u32) -> Self {
        self.max_wait_ticks = ticks;
        self
    }

    /// Returns a copy with a different queue capacity.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] for a zero batch size or a
    /// zero queue depth.
    pub fn validate(&self) -> Result<(), ServingError> {
        if self.max_batch == 0 {
            return Err(ServingError::InvalidConfig {
                name: "max_batch",
                reason: "batches must hold at least one request".to_string(),
            });
        }
        if self.queue_depth == 0 {
            return Err(ServingError::InvalidConfig {
                name: "queue_depth",
                reason: "the request queue needs a positive capacity".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self::febim_default()
    }
}

/// Typed errors of the serving pool.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingError {
    /// A serving configuration value is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The pool was built without any engine replica.
    NoReplicas,
    /// Backpressure: the bounded request queue is at capacity.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The pool is shutting down (or shut down): the request was not — or
    /// will not be — served.
    ShutDown,
    /// The request reached a worker but inference failed.
    Inference(CoreError),
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::InvalidConfig { name, reason } => {
                write!(f, "invalid serving configuration `{name}`: {reason}")
            }
            ServingError::NoReplicas => write!(f, "serving pool needs at least one engine replica"),
            ServingError::QueueFull { capacity } => {
                write!(f, "request queue is full ({capacity} requests queued)")
            }
            ServingError::ShutDown => write!(f, "serving pool is shut down"),
            ServingError::Inference(err) => write!(f, "inference failed: {err}"),
        }
    }
}

impl Error for ServingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServingError::Inference(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServingError {
    fn from(err: CoreError) -> Self {
        ServingError::Inference(err)
    }
}

/// One served inference: the per-sample decision (bit-identical to a
/// sequential [`FebimEngine::infer_into`] call on the same backend) plus the
/// telemetry of the batch it rode in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// Predicted class.
    pub prediction: usize,
    /// Whether the winner was decided by deterministic tie-breaking.
    pub tie_broken: bool,
    /// Worst-case delay estimate of this single inference.
    pub delay: DelayBreakdown,
    /// Energy estimate of this single inference.
    pub energy: InferenceEnergy,
    /// Index of the worker (engine replica) that served the request.
    pub worker: usize,
    /// Amortized telemetry of the whole batch this request was grouped into.
    pub batch: BatchTelemetry,
}

type ServeResult = Result<ServeOutcome, ServingError>;

/// Handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<ServeResult>,
}

impl Ticket {
    /// Blocks until the request is answered. Never hangs: a pool that shuts
    /// down answers (or typed-rejects) every queued request, and a lost
    /// worker surfaces as [`ServingError::ShutDown`].
    ///
    /// # Errors
    ///
    /// Returns the typed serving error of the request.
    pub fn wait(self) -> ServeResult {
        self.receiver.recv().unwrap_or(Err(ServingError::ShutDown))
    }
}

/// One queued request.
#[derive(Debug)]
struct Job {
    sample: Vec<f64>,
    responder: mpsc::Sender<ServeResult>,
}

/// State behind the queue lock.
#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded MPSC request queue: many submitting clients, N consuming
/// workers. Blocking waits sit on condvars (releasing the lock), so intake,
/// batching and shutdown can never deadlock each other.
#[derive(Debug)]
struct SharedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl SharedQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking enqueue.
    fn try_push(&self, job: Job) -> Result<(), ServingError> {
        let mut state = self.lock_state();
        if state.closed {
            return Err(ServingError::ShutDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(ServingError::QueueFull {
                capacity: self.capacity,
            });
        }
        state.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking enqueue: waits for a free slot instead of rejecting.
    fn push_blocking(&self, job: Job) -> Result<(), ServingError> {
        let mut state = self.lock_state();
        loop {
            if state.closed {
                return Err(ServingError::ShutDown);
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops the next batch into `batch` (cleared by the caller): blocks for
    /// the first request, then spends up to `max_wait_ticks` queue polls
    /// topping the batch up to `max_batch`. Returns `false` when the queue
    /// is closed and fully drained (the worker should exit).
    fn pop_batch(&self, batch: &mut Vec<Job>, max_batch: usize, max_wait_ticks: u32) -> bool {
        let mut state = self.lock_state();
        while state.jobs.is_empty() {
            if state.closed {
                return false;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut ticks = 0u32;
        loop {
            while batch.len() < max_batch {
                match state.jobs.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
            self.not_full.notify_all();
            if batch.len() >= max_batch || state.closed || ticks >= max_wait_ticks {
                return true;
            }
            // One straggler tick: release the lock, let clients enqueue,
            // look again.
            ticks += 1;
            drop(state);
            std::thread::yield_now();
            state = self.lock_state();
        }
    }

    /// Closes the intake and wakes every waiting client and worker.
    fn close(&self) {
        let mut state = self.lock_state();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes and returns everything still queued.
    fn drain_remaining(&self) -> Vec<Job> {
        let mut state = self.lock_state();
        let drained = state.jobs.drain(..).collect();
        drop(state);
        self.not_full.notify_all();
        drained
    }
}

/// Serving statistics of one worker (engine replica).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker answered.
    pub requests: u64,
    /// Batches this worker dispatched.
    pub batches: u64,
    /// Largest batch this worker dispatched.
    pub largest_batch: usize,
    /// Requests answered with [`ServingError::ShutDown`] during an abort.
    pub shutdown_rejected: u64,
    /// Requests answered with a typed [`ServingError::Inference`] error.
    pub failed: u64,
    /// Σ amortized batch delays, in seconds.
    pub batched_delay_s: f64,
    /// Σ amortized batch energies, in joules.
    pub batched_energy_j: f64,
    /// Σ sequential-baseline delays of the same reads, in seconds.
    pub sequential_delay_s: f64,
    /// Σ sequential-baseline energies of the same reads, in joules.
    pub sequential_energy_j: f64,
    /// Whether this worker's thread died (panicked) instead of reporting:
    /// all other fields of a crashed report are zero — whatever the worker
    /// had counted died with it.
    pub crashed: bool,
}

/// Aggregated statistics of a completed pool run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Requests answered across all workers.
    pub requests: u64,
    /// Batches dispatched across all workers.
    pub batches: u64,
    /// Largest batch any worker dispatched.
    pub largest_batch: usize,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Requests rejected with the typed shutdown error during an abort
    /// (drained by [`ServingPool::abort`] itself or bounced by a worker
    /// mid-abort).
    pub shutdown_rejected: u64,
    /// Requests answered with a typed [`ServingError::Inference`] error
    /// (counted separately from the successful `requests`, so every request
    /// that entered the queue reconciles as answered, failed, or rejected).
    pub failed_requests: u64,
    /// Worker threads that died (panicked) instead of reporting; their
    /// counts are lost and their queued work was answered with
    /// [`ServingError::ShutDown`].
    pub crashed_workers: u64,
    /// Σ amortized batch delays, in seconds.
    pub batched_delay_s: f64,
    /// Σ amortized batch energies, in joules.
    pub batched_energy_j: f64,
    /// Σ sequential-baseline delays, in seconds.
    pub sequential_delay_s: f64,
    /// Σ sequential-baseline energies, in joules.
    pub sequential_energy_j: f64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
}

impl PoolStats {
    fn from_workers(workers: Vec<WorkerReport>) -> Self {
        let mut stats = Self {
            requests: 0,
            batches: 0,
            largest_batch: 0,
            mean_batch_size: 0.0,
            shutdown_rejected: 0,
            failed_requests: 0,
            crashed_workers: 0,
            batched_delay_s: 0.0,
            batched_energy_j: 0.0,
            sequential_delay_s: 0.0,
            sequential_energy_j: 0.0,
            workers,
        };
        for report in &stats.workers {
            stats.requests += report.requests;
            stats.batches += report.batches;
            stats.largest_batch = stats.largest_batch.max(report.largest_batch);
            stats.shutdown_rejected += report.shutdown_rejected;
            stats.failed_requests += report.failed;
            stats.crashed_workers += u64::from(report.crashed);
            stats.batched_delay_s += report.batched_delay_s;
            stats.batched_energy_j += report.batched_energy_j;
            stats.sequential_delay_s += report.sequential_delay_s;
            stats.sequential_energy_j += report.sequential_energy_j;
        }
        if stats.batches > 0 {
            stats.mean_batch_size = stats.requests as f64 / stats.batches as f64;
        }
        stats
    }

    /// Amortized-over-sequential modeled delay ratio of the whole run (≤ 1
    /// when grouped reads amortized settling; 1.0 for an idle run).
    pub fn delay_ratio(&self) -> f64 {
        if self.sequential_delay_s > 0.0 {
            self.batched_delay_s / self.sequential_delay_s
        } else {
            1.0
        }
    }

    /// Amortized-over-sequential modeled energy ratio of the whole run.
    pub fn energy_ratio(&self) -> f64 {
        if self.sequential_energy_j > 0.0 {
            self.batched_energy_j / self.sequential_energy_j
        } else {
            1.0
        }
    }
}

/// A pool of engine replicas serving batched inference requests.
///
/// The pool is backend-erased: any [`InferenceBackend`] builds one, and
/// pools over different backends share the one `ServingPool` type. See the
/// [module docs](self) for the architecture, the batching knobs and the
/// backpressure/shutdown semantics.
#[derive(Debug)]
pub struct ServingPool {
    queue: Arc<SharedQueue>,
    /// `true` (the default): drained requests are answered on shutdown;
    /// `false` (abort): drained requests get the typed shutdown error.
    answer_drained: Arc<AtomicBool>,
    workers: Vec<JoinHandle<WorkerReport>>,
    config: ServingConfig,
}

impl ServingPool {
    /// Spawns one worker per engine replica. All replicas must serve the
    /// same compiled program (clone one engine, or build each replica from
    /// the same training data and configuration) — the pool does not check
    /// this, it is the caller's deployment contract.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::NoReplicas`] for an empty replica set and
    /// propagates configuration validation errors.
    pub fn new<B: InferenceBackend + Send + 'static>(
        engines: Vec<FebimEngine<B>>,
        config: ServingConfig,
    ) -> Result<Self, ServingError> {
        config.validate()?;
        if engines.is_empty() {
            return Err(ServingError::NoReplicas);
        }
        let queue = Arc::new(SharedQueue::new(config.queue_depth));
        let answer_drained = Arc::new(AtomicBool::new(true));
        let alive = Arc::new(AtomicUsize::new(engines.len()));
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(worker, engine)| {
                let queue = Arc::clone(&queue);
                let answer_drained = Arc::clone(&answer_drained);
                let guard = WorkerGuard {
                    queue: Arc::clone(&queue),
                    alive: Arc::clone(&alive),
                };
                std::thread::Builder::new()
                    .name(format!("febim-serve-{worker}"))
                    .spawn(move || {
                        // Runs on every exit path, including panic unwind:
                        // the last worker out closes and rejects the queue.
                        let _guard = guard;
                        worker_loop(worker, engine, &queue, &answer_drained, config)
                    })
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(Self {
            queue,
            answer_drained,
            workers,
            config,
        })
    }

    /// Builds a pool of `replicas` clones of one engine (they share the
    /// trained model and the quantized tables by `Arc`, so replication
    /// copies only the physical state).
    ///
    /// # Errors
    ///
    /// Same as [`ServingPool::new`] (`replicas == 0` maps to
    /// [`ServingError::NoReplicas`]).
    pub fn replicate<B: InferenceBackend + Clone + Send + 'static>(
        engine: &FebimEngine<B>,
        replicas: usize,
        config: ServingConfig,
    ) -> Result<Self, ServingError> {
        Self::new(vec![engine.clone(); replicas], config)
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Number of worker replicas.
    pub fn replicas(&self) -> usize {
        self.workers.len()
    }

    /// Submits one request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::QueueFull`] when the bounded queue is at
    /// capacity (backpressure — retry later or use
    /// [`ServingPool::submit_blocking`]).
    pub fn submit(&self, sample: Vec<f64>) -> Result<Ticket, ServingError> {
        let (responder, receiver) = mpsc::channel();
        self.queue.try_push(Job { sample, responder })?;
        Ok(Ticket { receiver })
    }

    /// Submits one request, waiting for a queue slot when the pool is at
    /// capacity (blocking backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::ShutDown`] when the pool closes while the
    /// request waits for a slot.
    pub fn submit_blocking(&self, sample: Vec<f64>) -> Result<Ticket, ServingError> {
        let (responder, receiver) = mpsc::channel();
        self.queue.push_blocking(Job { sample, responder })?;
        Ok(Ticket { receiver })
    }

    /// Convenience: submits every sample (blocking backpressure) and waits
    /// for all answers, returned in submission order.
    pub fn serve(&self, samples: &[Vec<f64>]) -> Vec<ServeResult> {
        let tickets: Vec<Result<Ticket, ServingError>> = samples
            .iter()
            .map(|sample| self.submit_blocking(sample.clone()))
            .collect();
        tickets
            .into_iter()
            .map(|ticket| ticket.and_then(Ticket::wait))
            .collect()
    }

    /// Graceful shutdown: closes the intake, lets the workers answer every
    /// request still queued, joins them and returns the aggregated serving
    /// statistics. Dropping the pool performs the same drain, discarding the
    /// statistics.
    pub fn shutdown(mut self) -> PoolStats {
        self.finish()
    }

    /// Hard shutdown: closes the intake and answers every request still
    /// queued with the typed [`ServingError::ShutDown`] instead of serving
    /// it (the rejects are counted in [`PoolStats::shutdown_rejected`]).
    /// Batches a worker already popped are still answered normally.
    pub fn abort(mut self) -> PoolStats {
        self.answer_drained.store(false, Ordering::SeqCst);
        self.queue.close();
        let mut rejected = 0u64;
        for job in self.queue.drain_remaining() {
            let _ = job.responder.send(Err(ServingError::ShutDown));
            rejected += 1;
        }
        let mut stats = self.finish();
        stats.shutdown_rejected += rejected;
        stats
    }

    /// Shared close-and-join tail of every shutdown path. A worker whose
    /// thread panicked is reported as a crashed zero-count entry under its
    /// own index.
    fn finish(&mut self) -> PoolStats {
        self.queue.close();
        let reports = self
            .workers
            .drain(..)
            .enumerate()
            .map(|(index, worker)| {
                worker.join().unwrap_or_else(|_| WorkerReport {
                    worker: index,
                    crashed: true,
                    ..WorkerReport::default()
                })
            })
            .collect();
        PoolStats::from_workers(reports)
    }
}

impl Drop for ServingPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.finish();
        }
    }
}

/// Dropped by each worker thread on any exit path (normal return or panic
/// unwind). The last worker out closes the intake and rejects everything
/// still queued with the typed shutdown error: with no consumer left, a
/// blocked producer or an unanswered queued request must fail fast, never
/// wait forever. On a graceful shutdown the queue is already closed and
/// drained, so both actions are no-ops.
struct WorkerGuard {
    queue: Arc<SharedQueue>,
    alive: Arc<AtomicUsize>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if self.alive.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.queue.close();
            for job in self.queue.drain_remaining() {
                let _ = job.responder.send(Err(ServingError::ShutDown));
            }
        }
    }
}

/// One worker: pop a batch, run it through the grouped-read path with a
/// reused scratch, answer every request, repeat until the queue closes and
/// drains.
fn worker_loop<B: InferenceBackend>(
    worker: usize,
    engine: FebimEngine<B>,
    queue: &SharedQueue,
    answer_drained: &AtomicBool,
    config: ServingConfig,
) -> WorkerReport {
    let mut report = WorkerReport {
        worker,
        ..WorkerReport::default()
    };
    let mut scratch = engine.make_scratch();
    let mut steps: Vec<InferenceStep> = Vec::with_capacity(config.max_batch);
    let mut batch: Vec<Job> = Vec::with_capacity(config.max_batch);
    let mut samples: Vec<Vec<f64>> = Vec::with_capacity(config.max_batch);
    let mut responders: Vec<mpsc::Sender<ServeResult>> = Vec::with_capacity(config.max_batch);
    loop {
        batch.clear();
        if !queue.pop_batch(&mut batch, config.max_batch, config.max_wait_ticks) {
            break;
        }
        if !answer_drained.load(Ordering::SeqCst) {
            // Abort in progress: reject instead of serving.
            report.shutdown_rejected += batch.len() as u64;
            for job in batch.drain(..) {
                let _ = job.responder.send(Err(ServingError::ShutDown));
            }
            continue;
        }
        samples.clear();
        responders.clear();
        for job in batch.drain(..) {
            samples.push(job.sample);
            responders.push(job.responder);
        }
        match engine.infer_batch_into(&samples, &mut scratch, &mut steps) {
            Ok(telemetry) => {
                report.requests += samples.len() as u64;
                report.batches += 1;
                report.largest_batch = report.largest_batch.max(samples.len());
                report.batched_delay_s += telemetry.delay.total();
                report.batched_energy_j += telemetry.energy.total();
                report.sequential_delay_s += telemetry.sequential_delay;
                report.sequential_energy_j += telemetry.sequential_energy;
                for (responder, step) in responders.iter().zip(&steps) {
                    let _ = responder.send(Ok(ServeOutcome {
                        prediction: step.prediction,
                        tie_broken: step.tie_broken,
                        delay: step.delay,
                        energy: step.energy,
                        worker,
                        batch: telemetry,
                    }));
                }
            }
            Err(_) => {
                // The batch failed as a group (e.g. one malformed sample).
                // Fall back to per-sample inference so one bad request
                // cannot poison its batch mates: each request gets its own
                // answer or its own typed error.
                for (responder, sample) in responders.iter().zip(&samples) {
                    let answer = engine
                        .infer_into(sample, &mut scratch)
                        .map(|step| {
                            report.requests += 1;
                            report.batched_delay_s += step.delay.total();
                            report.batched_energy_j += step.energy.total();
                            report.sequential_delay_s += step.delay.total();
                            report.sequential_energy_j += step.energy.total();
                            ServeOutcome {
                                prediction: step.prediction,
                                tie_broken: step.tie_broken,
                                delay: step.delay,
                                energy: step.energy,
                                worker,
                                batch: BatchTelemetry {
                                    reads: 1,
                                    delay: step.delay,
                                    energy: step.energy,
                                    sequential_delay: step.delay.total(),
                                    sequential_energy: step.energy.total(),
                                    amortized: false,
                                },
                            }
                        })
                        .map_err(ServingError::Inference);
                    if answer.is_err() {
                        report.failed += 1;
                    }
                    let _ = responder.send(answer);
                }
                report.batches += 1;
                report.largest_batch = report.largest_batch.max(samples.len());
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendInfo, CrossbarBackend};
    use crate::config::EngineConfig;
    use crate::engine::EvalScratch;
    use crate::errors::Result as CoreResult;
    use febim_crossbar::TileShape;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use febim_data::Dataset;

    fn split_for(seed: u64) -> (Dataset, Dataset) {
        let dataset = iris_like(seed).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
        (split.train, split.test)
    }

    fn samples_of(test: &Dataset) -> Vec<Vec<f64>> {
        (0..test.n_samples())
            .map(|index| test.sample(index).unwrap().to_vec())
            .collect()
    }

    #[test]
    fn config_validation_and_builders() {
        assert!(ServingConfig::febim_default().validate().is_ok());
        let config = ServingConfig::default()
            .with_max_batch(16)
            .with_max_wait_ticks(0)
            .with_queue_depth(128);
        assert_eq!(config.max_batch, 16);
        assert_eq!(config.max_wait_ticks, 0);
        assert_eq!(config.queue_depth, 128);
        assert!(matches!(
            ServingConfig::default().with_max_batch(0).validate(),
            Err(ServingError::InvalidConfig {
                name: "max_batch",
                ..
            })
        ));
        assert!(matches!(
            ServingConfig::default().with_queue_depth(0).validate(),
            Err(ServingError::InvalidConfig {
                name: "queue_depth",
                ..
            })
        ));
    }

    #[test]
    fn typed_errors_display_and_wrap() {
        assert!(ServingError::NoReplicas.to_string().contains("replica"));
        assert!(ServingError::QueueFull { capacity: 7 }
            .to_string()
            .contains('7'));
        assert!(ServingError::ShutDown.to_string().contains("shut down"));
        let err: ServingError = CoreError::NotProgrammed.into();
        assert!(err.to_string().contains("inference failed"));
        assert!(Error::source(&err).is_some());
        assert!(Error::source(&ServingError::ShutDown).is_none());
    }

    #[test]
    fn empty_pools_and_zero_replicas_rejected() {
        let (train, _) = split_for(900);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        assert!(matches!(
            ServingPool::new::<CrossbarBackend>(Vec::new(), ServingConfig::default()),
            Err(ServingError::NoReplicas)
        ));
        assert!(matches!(
            ServingPool::replicate(&engine, 0, ServingConfig::default()),
            Err(ServingError::NoReplicas)
        ));
        assert!(matches!(
            ServingPool::replicate(&engine, 1, ServingConfig::default().with_max_batch(0)),
            Err(ServingError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn pool_answers_match_sequential_inference_bit_for_bit() {
        let (train, test) = split_for(901);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let mut scratch = engine.make_scratch();
        let samples = samples_of(&test);
        let sequential: Vec<InferenceStep> = samples
            .iter()
            .map(|sample| engine.infer_into(sample, &mut scratch).unwrap())
            .collect();
        let pool =
            ServingPool::replicate(&engine, 2, ServingConfig::default().with_max_batch(4)).unwrap();
        assert_eq!(pool.replicas(), 2);
        assert_eq!(pool.config().max_batch, 4);
        let answers = pool.serve(&samples);
        for (answer, step) in answers.iter().zip(&sequential) {
            let outcome = answer.as_ref().unwrap();
            assert_eq!(outcome.prediction, step.prediction);
            assert_eq!(outcome.tie_broken, step.tie_broken);
            assert_eq!(outcome.delay, step.delay);
            assert_eq!(outcome.energy, step.energy);
            assert!(outcome.worker < 2);
            assert!(outcome.batch.reads >= 1 && outcome.batch.reads <= 4);
            assert!(outcome.batch.amortized);
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, samples.len() as u64);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch <= 4);
        assert!(stats.mean_batch_size >= 1.0);
        assert_eq!(stats.shutdown_rejected, 0);
        // The grouped pricing never exceeds the sequential baseline.
        assert!(stats.batched_delay_s <= stats.sequential_delay_s);
        assert!(stats.batched_energy_j <= stats.sequential_energy_j);
        assert!(stats.delay_ratio() <= 1.0 && stats.delay_ratio() > 0.0);
        assert!(stats.energy_ratio() <= 1.0 && stats.energy_ratio() > 0.0);
        let json = serde::json::to_string(&stats);
        assert!(json.contains("\"mean_batch_size\""));
        assert!(json.contains("\"workers\""));
    }

    #[test]
    fn tiled_pool_matches_the_monolithic_pool() {
        let (train, test) = split_for(902);
        let config = EngineConfig::febim_default();
        let monolithic = FebimEngine::fit(&train, config.clone()).unwrap();
        let tiled = FebimEngine::fit_tiled(&train, config, TileShape::new(2, 24).unwrap()).unwrap();
        let samples = samples_of(&test);
        let mono_pool = ServingPool::replicate(&monolithic, 2, ServingConfig::default()).unwrap();
        let tile_pool = ServingPool::replicate(&tiled, 2, ServingConfig::default()).unwrap();
        let mono_answers = mono_pool.serve(&samples);
        let tile_answers = tile_pool.serve(&samples);
        for (a, b) in mono_answers.iter().zip(&tile_answers) {
            assert_eq!(
                a.as_ref().unwrap().prediction,
                b.as_ref().unwrap().prediction
            );
        }
    }

    #[test]
    fn malformed_requests_get_their_own_typed_error() {
        let (train, test) = split_for(903);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let expected = engine.predict(test.sample(0).unwrap()).unwrap();
        let pool =
            ServingPool::replicate(&engine, 1, ServingConfig::default().with_max_batch(8)).unwrap();
        let mut samples = vec![test.sample(0).unwrap().to_vec(); 5];
        samples[2] = vec![1.0, 2.0]; // wrong feature count
        let answers = pool.serve(&samples);
        for (index, answer) in answers.iter().enumerate() {
            if index == 2 {
                assert!(matches!(
                    answer,
                    Err(ServingError::Inference(CoreError::DatasetMismatch { .. }))
                ));
            } else {
                assert_eq!(answer.as_ref().unwrap().prediction, expected);
            }
        }
        // The failed request is accounted separately, so the run reconciles:
        // 4 answered + 1 failed = 5 submitted.
        let stats = pool.shutdown();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.failed_requests, 1);
    }

    /// A backend whose reads block on a test-controlled gate, so tests can
    /// deterministically trap a worker mid-batch, fill the queue behind it
    /// and observe backpressure and shutdown semantics.
    #[derive(Debug)]
    struct Gate {
        state: Mutex<(bool, usize)>, // (open, reads entered)
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                state: Mutex::new((false, 0)),
                cv: Condvar::new(),
            })
        }

        fn open(&self) {
            self.state.lock().unwrap().0 = true;
            self.cv.notify_all();
        }

        fn wait_entered(&self, reads: usize) {
            let mut state = self.state.lock().unwrap();
            while state.1 < reads {
                state = self.cv.wait(state).unwrap();
            }
        }

        fn enter_and_wait(&self) {
            let mut state = self.state.lock().unwrap();
            state.1 += 1;
            self.cv.notify_all();
            while !state.0 {
                state = self.cv.wait(state).unwrap();
            }
        }
    }

    #[derive(Debug)]
    struct GatedBackend {
        inner: CrossbarBackend,
        gate: Arc<Gate>,
    }

    impl InferenceBackend for GatedBackend {
        fn info(&self) -> BackendInfo {
            self.inner.info()
        }

        fn make_scratch(&self) -> EvalScratch {
            self.inner.make_scratch()
        }

        fn infer_into(
            &self,
            sample: &[f64],
            scratch: &mut EvalScratch,
        ) -> CoreResult<InferenceStep> {
            self.gate.enter_and_wait();
            self.inner.infer_into(sample, scratch)
        }

        fn reprogram(&mut self) -> CoreResult<()> {
            self.inner.reprogram()
        }

        fn current_map_into(&self, out: &mut Vec<f64>) -> CoreResult<()> {
            self.inner.current_map_into(out)
        }
    }

    fn gated_pool(seed: u64, config: ServingConfig) -> (ServingPool, Arc<Gate>, Vec<f64>, usize) {
        let (train, test) = split_for(seed);
        let gate = Gate::new();
        let engine_gate = Arc::clone(&gate);
        let engine_config = EngineConfig::febim_default();
        let engine = FebimEngine::fit_with(&train, engine_config, move |quantized, config| {
            Ok(GatedBackend {
                inner: CrossbarBackend::new(quantized, config)?,
                gate: engine_gate,
            })
        })
        .unwrap();
        let sample = test.sample(0).unwrap().to_vec();
        // Reference prediction through a plain (ungated) engine trained on
        // the same data.
        let prediction = {
            let plain = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
            plain.predict(&sample).unwrap()
        };
        let pool = ServingPool::new(vec![engine], config).unwrap();
        (pool, gate, sample, prediction)
    }

    #[test]
    fn backpressure_surfaces_as_a_typed_queue_full_error() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(1);
        let (pool, gate, sample, prediction) = gated_pool(904, config);
        // First request: the worker pops it and blocks inside the read.
        let first = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        // Second request fills the depth-1 queue; the third must bounce.
        let second = pool.submit(sample.clone()).unwrap();
        let third = pool.submit(sample.clone());
        assert!(matches!(
            third,
            Err(ServingError::QueueFull { capacity: 1 })
        ));
        gate.open();
        assert_eq!(first.wait().unwrap().prediction, prediction);
        assert_eq!(second.wait().unwrap().prediction, prediction);
        let stats = pool.shutdown();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn dropping_the_pool_answers_every_queued_request() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(8);
        let (pool, gate, sample, prediction) = gated_pool(905, config);
        let trapped = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        let queued: Vec<Ticket> = (0..4)
            .map(|_| pool.submit(sample.clone()).unwrap())
            .collect();
        // Drop the pool from another thread (it blocks draining); every
        // ticket must still resolve once the gate opens.
        let dropper = std::thread::spawn(move || drop(pool));
        gate.open();
        assert_eq!(trapped.wait().unwrap().prediction, prediction);
        for ticket in queued {
            assert_eq!(ticket.wait().unwrap().prediction, prediction);
        }
        dropper.join().unwrap();
    }

    #[test]
    fn abort_rejects_queued_requests_with_the_typed_shutdown_error() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(8);
        let (pool, gate, sample, prediction) = gated_pool(906, config);
        let trapped = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        let queued: Vec<Ticket> = (0..3)
            .map(|_| pool.submit(sample.clone()).unwrap())
            .collect();
        // The worker is trapped inside the read, so `abort` deterministically
        // drains the queued requests before the worker can reach them.
        let aborter = std::thread::spawn(move || pool.abort());
        for ticket in queued {
            assert!(matches!(ticket.wait(), Err(ServingError::ShutDown)));
        }
        // The in-flight request still gets its answer, and every rejected
        // request is accounted for in the returned statistics.
        gate.open();
        assert_eq!(trapped.wait().unwrap().prediction, prediction);
        let stats = aborter.join().unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.shutdown_rejected, 3);
        assert_eq!(stats.crashed_workers, 0);
    }

    /// A backend whose reads panic, to prove a dying replica is surfaced in
    /// the statistics and can never hang a ticket.
    #[derive(Debug)]
    struct PanickingBackend {
        inner: CrossbarBackend,
    }

    impl InferenceBackend for PanickingBackend {
        fn info(&self) -> BackendInfo {
            self.inner.info()
        }

        fn make_scratch(&self) -> EvalScratch {
            self.inner.make_scratch()
        }

        fn infer_into(
            &self,
            _sample: &[f64],
            _scratch: &mut EvalScratch,
        ) -> CoreResult<InferenceStep> {
            panic!("injected worker crash");
        }

        fn reprogram(&mut self) -> CoreResult<()> {
            self.inner.reprogram()
        }

        fn current_map_into(&self, out: &mut Vec<f64>) -> CoreResult<()> {
            self.inner.current_map_into(out)
        }
    }

    #[test]
    fn crashed_workers_are_reported_and_tickets_never_hang() {
        let (train, test) = split_for(908);
        let engine = FebimEngine::fit_with(
            &train,
            EngineConfig::febim_default(),
            |quantized, config| {
                Ok(PanickingBackend {
                    inner: CrossbarBackend::new(quantized, config)?,
                })
            },
        )
        .unwrap();
        let pool = ServingPool::new(
            vec![engine],
            ServingConfig::default()
                .with_max_batch(1)
                .with_max_wait_ticks(0),
        )
        .unwrap();
        let sample = test.sample(0).unwrap().to_vec();
        let first = pool.submit(sample.clone()).unwrap();
        // The worker dies on the first request; its ticket must resolve to
        // the typed shutdown error (the responder died with the thread).
        assert!(matches!(first.wait(), Err(ServingError::ShutDown)));
        // The dying worker's guard closes the intake, so the pool fails
        // fast instead of queueing work nothing will pop: a submit racing
        // the guard is either rejected outright or its queued request is
        // drained with the typed error — it can never hang.
        match pool.submit_blocking(sample) {
            Err(ServingError::ShutDown) => {}
            Ok(ticket) => assert!(matches!(ticket.wait(), Err(ServingError::ShutDown))),
            Err(other) => panic!("unexpected error: {other}"),
        }
        let stats = pool.shutdown();
        assert_eq!(stats.crashed_workers, 1);
        assert_eq!(stats.workers.len(), 1);
        assert!(stats.workers[0].crashed);
        assert_eq!(stats.workers[0].worker, 0);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn shutdown_collects_per_worker_reports() {
        let (train, test) = split_for(907);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let pool = ServingPool::replicate(&engine, 3, ServingConfig::default()).unwrap();
        let samples = samples_of(&test);
        let answers = pool.serve(&samples);
        assert!(answers.iter().all(Result::is_ok));
        let stats = pool.shutdown();
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(
            stats.workers.iter().map(|w| w.requests).sum::<u64>(),
            samples.len() as u64
        );
        for (index, report) in stats.workers.iter().enumerate() {
            assert_eq!(report.worker, index);
        }
    }
}
