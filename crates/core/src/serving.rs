//! Concurrent batch-serving engine pool.
//!
//! The engine answers one query at a time; a serving workload is many
//! independent clients querying the *same* compiled model. This module
//! turns N engine replicas (any [`InferenceBackend`], all programmed from
//! one compiled/tiled program) into a [`ServingPool`]:
//!
//! ```text
//!  clients ──submit()──▶ ring 0 (lock-free) ──▶ worker 0 ─ engine replica 0
//!     │      round-robin  ring 1 (lock-free) ──▶ worker 1 ─ engine replica 1
//!     │      + overflow      ⋮        ▲  steal      ⋮            ⋮
//!     │      to any ring  ring N-1 ───┴──────▶ worker N-1 ─ replica N-1
//!     ◀──Ticket::wait()── per-request publish cell ◀─ batched completion
//! ```
//!
//! Submission is sharded: each worker owns a bounded lock-free ring buffer
//! (sequence-numbered slots, atomic head/tail), and a submitter places each
//! request round-robin, overflowing into any ring with space before
//! reporting [`ServingError::QueueFull`]. Workers drain their own ring
//! first and **steal** from the others, so a slow replica can never strand
//! queued requests. Each worker pops a **batch** of queued requests (up to
//! [`ServingConfig::max_batch`], waiting at most
//! [`ServingConfig::max_wait_ticks`] queue polls for stragglers — ticks,
//! not wall-clock, so tests are deterministic), runs it through the
//! backend's grouped-read path ([`InferenceBackend::infer_batch_into`]) with
//! a per-worker reused [`EvalScratch`](crate::engine::EvalScratch), and
//! answers every request with its prediction plus the per-batch amortized
//! delay/energy telemetry.
//!
//! Completion is batched and wake-free on the fast path: each request's
//! answer is published into its [`Ticket`]'s cell with a single
//! release-swap, and a waiting client is unparked only if it actually
//! parked (it first spins on the cell). No per-request mutex or condvar
//! round-trip remains anywhere on the submit → serve → complete path; the
//! only blocking primitives left are the idle-worker parking lot and the
//! blocking-backpressure waiters, both gated behind counters so the
//! uncontended path never touches them.
//!
//! ## Backpressure and shutdown
//!
//! Admission is bounded by [`ServingConfig::queue_depth`] across all rings:
//! [`ServingPool::submit`] never blocks and returns
//! [`ServingError::QueueFull`] when the pool is at capacity, while
//! [`ServingPool::submit_blocking`] waits for a slot. Shutdown is
//! deterministic — every request that ever entered a ring is answered:
//!
//! * [`ServingPool::shutdown`] (and dropping the pool) closes the intake and
//!   **drains**: workers keep answering until every ring is empty.
//! * [`ServingPool::abort`] closes the intake and answers every request
//!   still queued with the typed [`ServingError::ShutDown`]; only batches a
//!   worker already holds finish normally.
//!
//! A [`Ticket`] can therefore never hang: its request is either answered,
//! rejected with a typed error, or its job is dropped unanswered (worker
//! death), which a drop guard converts into [`ServingError::ShutDown`]. Nor
//! can a producer: when the **last** worker exits — normally or by panic —
//! a guard closes the intake (waiting out any in-flight push) and rejects
//! everything still queued, so blocked [`ServingPool::submit_blocking`]
//! callers fail fast instead of waiting on rings nothing will ever pop.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use febim_circuit::{DelayBreakdown, InferenceEnergy};

use crate::backend::{BatchTelemetry, InferenceBackend, SwapCost};
use crate::engine::{FebimEngine, InferenceStep};
use crate::errors::CoreError;
use crate::health::{ReplicaHealth, ScrubPolicy, ScrubScheduler};
use crate::recalibration::{RecalibrationPolicy, RecalibrationScheduler};

/// How many times one request may fail over to a surviving replica before
/// its inference error is answered to the client.
const FAILOVER_ATTEMPTS: u8 = 3;

/// Knobs of the batch-coalescing serving pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Largest number of requests a worker groups into one batched read.
    pub max_batch: usize,
    /// How many queue polls a worker spends waiting for stragglers before
    /// dispatching a partial batch. Ticks are queue polls (each yields the
    /// thread and re-sweeps the rings), not wall-clock time, so batching
    /// behaviour is deterministic under test. `0` dispatches whatever one
    /// poll finds.
    pub max_wait_ticks: u32,
    /// Total admission capacity across all rings (the backpressure limit).
    pub queue_depth: usize,
    /// Physical ticks each dispatched batch advances its replica's clock
    /// (ageing the cells under the configured retention-drift model).
    /// `0` — the default — freezes physical time.
    #[serde(default)]
    pub ticks_per_batch: u64,
    /// Optional online recalibration: each worker runs a
    /// [`RecalibrationScheduler`] over its own replica, checking for drift
    /// between batches — never while a batch is in flight, so requests are
    /// answered through recalibration without a single drop or stall.
    /// [`ServingPool::request_recalibration`] forces a check out of band.
    #[serde(default)]
    pub recalibration: Option<RecalibrationPolicy>,
    /// Optional online fault scrubbing: each worker runs a
    /// [`ScrubScheduler`] over its own replica between batches, detecting
    /// struck cells and repairing them in place or via spare rows. A replica
    /// whose defects cannot be repaired is **quarantined**: it stops taking
    /// work (its queued requests are stolen by surviving workers) and, when
    /// every replica is quarantined, the pool degrades gracefully to exact
    /// software inference. [`ServingPool::request_scrub`] forces a check out
    /// of band.
    #[serde(default)]
    pub scrub: Option<ScrubPolicy>,
}

impl ServingConfig {
    /// Default serving point: batches of up to 8, a few straggler polls, a
    /// queue deep enough to keep every replica busy.
    pub fn febim_default() -> Self {
        Self {
            max_batch: 8,
            max_wait_ticks: 4,
            queue_depth: 64,
            ticks_per_batch: 0,
            recalibration: None,
            scrub: None,
        }
    }

    /// Returns a copy with a different maximum batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with a different straggler-poll budget.
    pub fn with_max_wait_ticks(mut self, ticks: u32) -> Self {
        self.max_wait_ticks = ticks;
        self
    }

    /// Returns a copy with a different queue capacity.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns a copy ageing each replica by `ticks` per dispatched batch.
    pub fn with_ticks_per_batch(mut self, ticks: u64) -> Self {
        self.ticks_per_batch = ticks;
        self
    }

    /// Returns a copy with online recalibration enabled under `policy`.
    pub fn with_recalibration(mut self, policy: RecalibrationPolicy) -> Self {
        self.recalibration = Some(policy);
        self
    }

    /// Returns a copy with online fault scrubbing enabled under `policy`.
    pub fn with_scrub(mut self, policy: ScrubPolicy) -> Self {
        self.scrub = Some(policy);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] for a zero batch size or a
    /// zero queue depth.
    pub fn validate(&self) -> Result<(), ServingError> {
        if self.max_batch == 0 {
            return Err(ServingError::InvalidConfig {
                name: "max_batch",
                reason: "batches must hold at least one request".to_string(),
            });
        }
        if self.queue_depth == 0 {
            return Err(ServingError::InvalidConfig {
                name: "queue_depth",
                reason: "the request queue needs a positive capacity".to_string(),
            });
        }
        if let Some(policy) = &self.recalibration {
            policy
                .validate()
                .map_err(|err| ServingError::InvalidConfig {
                    name: "recalibration",
                    reason: err.to_string(),
                })?;
        }
        if let Some(policy) = &self.scrub {
            policy
                .validate()
                .map_err(|err| ServingError::InvalidConfig {
                    name: "scrub",
                    reason: err.to_string(),
                })?;
        }
        Ok(())
    }
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self::febim_default()
    }
}

/// Typed errors of the serving pool.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingError {
    /// A serving configuration value is invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The pool was built without any engine replica.
    NoReplicas,
    /// Backpressure: the bounded request queue is at capacity.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The pool is shutting down (or shut down): the request was not — or
    /// will not be — served.
    ShutDown,
    /// The request reached a worker but inference failed.
    Inference(CoreError),
    /// A routed request names a model no worker currently hosts (never
    /// registered, or evicted from the pool).
    ModelUnavailable {
        /// The model id the request was routed by.
        model: u64,
    },
    /// Spawning a worker thread failed while building the pool; the
    /// already-spawned workers were shut down cleanly before this error
    /// surfaced.
    WorkerSpawn {
        /// The OS error that rejected the thread.
        reason: String,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::InvalidConfig { name, reason } => {
                write!(f, "invalid serving configuration `{name}`: {reason}")
            }
            ServingError::NoReplicas => write!(f, "serving pool needs at least one engine replica"),
            ServingError::QueueFull { capacity } => {
                write!(f, "request queue is full ({capacity} requests queued)")
            }
            ServingError::ShutDown => write!(f, "serving pool is shut down"),
            ServingError::Inference(err) => write!(f, "inference failed: {err}"),
            ServingError::ModelUnavailable { model } => {
                write!(f, "no worker hosts model {model}")
            }
            ServingError::WorkerSpawn { reason } => {
                write!(f, "failed to spawn a serving worker thread: {reason}")
            }
        }
    }
}

impl Error for ServingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServingError::Inference(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServingError {
    fn from(err: CoreError) -> Self {
        ServingError::Inference(err)
    }
}

/// One served inference: the per-sample decision (bit-identical to a
/// sequential [`FebimEngine::infer_into`] call on the same backend) plus the
/// telemetry of the batch it rode in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use = "a served outcome carries the prediction and telemetry the request paid for"]
pub struct ServeOutcome {
    /// Predicted class.
    pub prediction: usize,
    /// Whether the winner was decided by deterministic tie-breaking.
    pub tie_broken: bool,
    /// Worst-case delay estimate of this single inference.
    pub delay: DelayBreakdown,
    /// Energy estimate of this single inference.
    pub energy: InferenceEnergy,
    /// Index of the worker (engine replica) that served the request.
    pub worker: usize,
    /// Amortized telemetry of the whole batch this request was grouped into.
    pub batch: BatchTelemetry,
}

type ServeResult = Result<ServeOutcome, ServingError>;

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

const HISTOGRAM_BUCKETS: usize = 256;
/// Nanosecond values below this limit get one exact bucket each.
const HISTOGRAM_LINEAR_LIMIT: u64 = 16;

/// Fixed-footprint log-linear latency histogram (nanosecond samples).
///
/// The first 16 buckets are exact (0–15 ns); above that each power of two
/// splits into 4 sub-buckets, so relative bucketing error stays below 25%
/// (~12.5% mean) across the full `u64` range in 256 counters. Recording is
/// two increments — cheap enough for the serving hot path — and worker
/// histograms merge bucket-wise into pool-level percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos < HISTOGRAM_LINEAR_LIMIT {
            return nanos as usize;
        }
        let msb = 63 - u64::from(nanos.leading_zeros()); // >= 4 here
        let sub = ((nanos >> (msb - 2)) & 3) as usize;
        let index = HISTOGRAM_LINEAR_LIMIT as usize + (msb as usize - 4) * 4 + sub;
        index.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Midpoint (representative value) of one bucket, in nanoseconds.
    fn bucket_midpoint(index: usize) -> u64 {
        if index < HISTOGRAM_LINEAR_LIMIT as usize {
            return index as u64;
        }
        let offset = index - HISTOGRAM_LINEAR_LIMIT as usize;
        let group = offset / 4;
        let sub = (offset % 4) as u64;
        let base = 1u64 << (group + 4);
        let width = base / 4;
        base + sub * width + width / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate latency at `percentile` (0–100), in nanoseconds; `0` for
    /// an empty histogram.
    pub fn percentile_ns(&self, percentile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let fraction = percentile.clamp(0.0, 100.0) / 100.0;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((fraction * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Self::bucket_midpoint(index);
            }
        }
        Self::bucket_midpoint(HISTOGRAM_BUCKETS - 1)
    }

    /// Median latency, in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 95th-percentile latency, in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.percentile_ns(95.0)
    }

    /// 99th-percentile latency, in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }
}

fn nanos_between(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Ticket: spin-then-park publish cell
// ---------------------------------------------------------------------------

const TICKET_PENDING: u8 = 0;
const TICKET_WAITING: u8 = 1;
const TICKET_READY: u8 = 2;

/// How long [`Ticket::wait`] spins on the publish cell before parking.
const TICKET_SPIN_WAITS: u32 = 64;

/// One-shot result cell a worker publishes into and (at most) one client
/// waits on. The state machine is `PENDING → {WAITING →} READY`: the worker
/// writes the result and release-swaps to `READY` (one atomic op, no lock);
/// the waiter spins briefly and only registers itself + parks when the
/// answer is genuinely not there yet, so the batch-completion fast path
/// issues no wakes at all.
struct TicketCell {
    state: AtomicU8,
    /// Parked waiter, registered *before* the `PENDING → WAITING` CAS so a
    /// completer that observes `WAITING` always finds the thread to unpark.
    waiter: Mutex<Option<std::thread::Thread>>,
    /// Written exactly once, before the `READY` publish; read exactly once,
    /// after observing `READY` (acquire) — never concurrently.
    result: UnsafeCell<Option<ServeResult>>,
}

// SAFETY: `result` is written once by the completing worker before the
// release-swap to `READY` and read once by the waiter after an acquire load
// of `READY`; the state machine makes the accesses mutually exclusive.
unsafe impl Send for TicketCell {}
unsafe impl Sync for TicketCell {}

impl TicketCell {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(TICKET_PENDING),
            waiter: Mutex::new(None),
            result: UnsafeCell::new(None),
        }
    }

    /// Publishes the answer: one release-swap, plus an unpark only if the
    /// client already parked.
    fn complete(&self, result: ServeResult) {
        // SAFETY: sole writer (the job's ticket is taken exactly once), and
        // no reader until the swap below publishes `READY`.
        unsafe {
            *self.result.get() = Some(result);
        }
        if self.state.swap(TICKET_READY, Ordering::AcqRel) == TICKET_WAITING {
            let thread = self
                .waiter
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(thread) = thread {
                thread.unpark();
            }
        }
    }

    fn take_result(&self) -> ServeResult {
        // SAFETY: called only after an acquire load observed `READY`, which
        // happens-after the completer's write.
        unsafe { (*self.result.get()).take() }.unwrap_or(Err(ServingError::ShutDown))
    }
}

impl fmt::Debug for TicketCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketCell")
            .field("state", &self.state.load(Ordering::Acquire))
            .finish()
    }
}

/// Handle to one submitted request.
#[derive(Debug)]
#[must_use = "dropping a ticket discards the answer the pool will still compute"]
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl Ticket {
    /// Blocks until the request is answered. Never hangs: a pool that shuts
    /// down answers (or typed-rejects) every queued request, and a lost
    /// worker surfaces as [`ServingError::ShutDown`].
    ///
    /// # Errors
    ///
    /// Returns the typed serving error of the request.
    pub fn wait(self) -> ServeResult {
        let cell = &self.cell;
        for _ in 0..TICKET_SPIN_WAITS {
            if cell.state.load(Ordering::Acquire) == TICKET_READY {
                return cell.take_result();
            }
            std::hint::spin_loop();
        }
        // Slow path: register, then announce we are waiting. The CAS can
        // only fail because the answer landed in the meantime.
        *cell.waiter.lock().unwrap_or_else(PoisonError::into_inner) = Some(std::thread::current());
        if cell
            .state
            .compare_exchange(
                TICKET_PENDING,
                TICKET_WAITING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            while cell.state.load(Ordering::Acquire) != TICKET_READY {
                std::thread::park();
            }
        }
        cell.take_result()
    }

    /// Polls for the answer for at most `ticks` queue polls (each yields the
    /// thread — ticks, not wall-clock, matching the pool's deterministic
    /// batching clock). Returns the answer if it arrived, or the ticket
    /// itself on timeout so the caller can keep waiting later.
    ///
    /// Unlike [`Ticket::wait`] this never registers a parked waiter, so a
    /// timed-out ticket leaves no waiter state behind for a completer to
    /// trip over: the answer is still published exactly once and a later
    /// `wait`/`wait_timeout` call collects it.
    ///
    /// # Errors
    ///
    /// `Ok` carries the request's own [`ServeResult`] (which may itself be a
    /// typed serving error); `Err` returns the still-pending ticket.
    pub fn wait_timeout(self, ticks: u64) -> Result<ServeResult, Ticket> {
        for _ in 0..=ticks {
            if self.cell.state.load(Ordering::Acquire) == TICKET_READY {
                return Ok(self.cell.take_result());
            }
            std::thread::yield_now();
        }
        Err(self)
    }
}

// ---------------------------------------------------------------------------
// Jobs and the lock-free rings
// ---------------------------------------------------------------------------

/// One queued request. Dropping a job whose ticket was never completed
/// (worker panic mid-batch, ring teardown) answers it with the typed
/// shutdown error, so a [`Ticket`] can never hang.
#[derive(Debug)]
struct Job {
    sample: Vec<f64>,
    ticket: Option<Arc<TicketCell>>,
    submitted: Instant,
    /// Failed inference attempts so far (bounded by [`FAILOVER_ATTEMPTS`]).
    attempts: u8,
    /// Worker that last failed this job; it bounces the job to a surviving
    /// replica instead of retrying on the replica that already failed it.
    avoid: Option<usize>,
    /// Model id of a routed request (`None` on replica pools, where every
    /// worker serves the one shared model).
    model: Option<u64>,
}

impl Job {
    fn new(sample: Vec<f64>, ticket: Arc<TicketCell>) -> Self {
        Self {
            sample,
            ticket: Some(ticket),
            submitted: Instant::now(),
            attempts: 0,
            avoid: None,
            model: None,
        }
    }

    /// A request routed to a specific tenant model of a routed pool.
    fn routed(sample: Vec<f64>, ticket: Arc<TicketCell>, model: u64) -> Self {
        let mut job = Self::new(sample, ticket);
        job.model = Some(model);
        job
    }

    fn complete(mut self, result: ServeResult) {
        if let Some(cell) = self.ticket.take() {
            cell.complete(result);
        }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        if let Some(cell) = self.ticket.take() {
            cell.complete(Err(ServingError::ShutDown));
        }
    }
}

/// One slot of a ring: a sequence number encoding whose turn the slot is
/// (push or pop, and for which lap), and the job payload.
struct RingSlot {
    sequence: AtomicUsize,
    job: UnsafeCell<MaybeUninit<Job>>,
}

/// Bounded lock-free MPMC ring buffer (sequence-numbered slots, after
/// Vyukov): producers are the submitting client threads, consumers the
/// owning worker *and* any worker stealing from it. Capacity is a power of
/// two ≥ 2; push and pop are one CAS plus one release store each.
struct Ring {
    slots: Box<[RingSlot]>,
    mask: usize,
    /// Next position to push (claimed by CAS).
    enqueue: AtomicUsize,
    /// Next position to pop (claimed by CAS).
    dequeue: AtomicUsize,
}

// SAFETY: slot payloads are transferred between threads under the sequence
// protocol — a slot is written only after its claim CAS and read only after
// the writer's release store, so no two threads touch a payload at once.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    /// `capacity` must be a power of two ≥ 2 (the sequence protocol cannot
    /// distinguish full from empty on a 1-slot ring).
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two() && capacity >= 2);
        let slots = (0..capacity)
            .map(|index| RingSlot {
                sequence: AtomicUsize::new(index),
                job: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: capacity - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    /// Non-blocking push; returns the job when the ring is full.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let sequence = slot.sequence.load(Ordering::Acquire);
            let lag = sequence as isize - pos as isize;
            if lag == 0 {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed this slot for this push;
                        // no other thread touches it until the store below.
                        unsafe {
                            (*slot.job.get()).write(job);
                        }
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if lag < 0 {
                return Err(job);
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate fullness check (exact when no push/pop races it). Used
    /// only by the routed blocking producer to decide whether to park, where
    /// a stale answer just costs one extra retry loop.
    fn is_full(&self) -> bool {
        let enqueue = self.enqueue.load(Ordering::Relaxed);
        let dequeue = self.dequeue.load(Ordering::Relaxed);
        enqueue.wrapping_sub(dequeue) >= self.slots.len()
    }

    /// Non-blocking pop; `None` when the ring is empty.
    fn pop(&self) -> Option<Job> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let sequence = slot.sequence.load(Ordering::Acquire);
            let lag = sequence as isize - pos.wrapping_add(1) as isize;
            if lag == 0 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed this slot; the producer's
                        // release store made the payload visible.
                        let job = unsafe { (*slot.job.get()).assume_init_read() };
                        slot.sequence.store(
                            pos.wrapping_add(self.mask).wrapping_add(1),
                            Ordering::Release,
                        );
                        return Some(job);
                    }
                    Err(current) => pos = current,
                }
            } else if lag < 0 {
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Any job still queued is answered with the typed shutdown error by
        // its own drop guard.
        while self.pop().is_some() {}
    }
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.slots.len())
            .field("enqueue", &self.enqueue.load(Ordering::Relaxed))
            .field("dequeue", &self.dequeue.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Shared pool state
// ---------------------------------------------------------------------------

/// Everything the submitters, workers and shutdown paths share. All hot-path
/// coordination is atomics on this struct; the two mutex/condvar pairs guard
/// only the *slow* paths (idle workers, blocked producers) and are gated
/// behind counters so nobody touches them while the pool is busy.
#[derive(Debug)]
struct PoolShared {
    /// One bounded ring per worker, submitter round-robin + worker stealing.
    rings: Vec<Ring>,
    /// Total admitted-but-not-yet-popped requests (the backpressure bound).
    queued: AtomicUsize,
    /// Configured admission capacity ([`ServingConfig::queue_depth`]).
    capacity: usize,
    /// Round-robin cursor of the submitters.
    cursor: AtomicUsize,
    /// Intake closed (shutdown/abort/last-worker-out).
    closed: AtomicBool,
    /// Submitters inside `try_push`. `close` waits for this to reach zero so
    /// a racing push either lands before the post-close drain or is
    /// rejected — never stranded in a ring nobody will sweep.
    pushing: AtomicUsize,
    /// `true` (the default): drained requests are answered on shutdown;
    /// `false` (abort): drained requests get the typed shutdown error.
    answer_drained: AtomicBool,
    /// Workers parked on `idle_cv`. Submitters skip the wake syscall
    /// entirely while this is zero (the busy-pool fast path).
    sleepers: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Producers blocked in `submit_blocking`. Workers skip the wake unless
    /// someone is actually waiting for space.
    blocked: AtomicUsize,
    space_lock: Mutex<()>,
    space_cv: Condvar,
    /// Recalibration request generation. Every
    /// [`ServingPool::request_recalibration`] bump asks each worker to run
    /// one out-of-band drift check on its replica between batches (or
    /// immediately, when idle); workers track the last generation they
    /// honoured. Scrub requests share the same generation counter: a forced
    /// check runs *both* maintenance schedulers (the epoch-skip fast path
    /// makes the double check free on an unchanged array).
    recalibration: AtomicU64,
    /// Published per-replica health ([`ReplicaHealth::as_u8`] encoding),
    /// written by the owning worker's scrub scheduler and read lock-free by
    /// submitters (placement skips quarantined rings) and failover retries.
    health: Vec<AtomicU8>,
    /// Replicas still taking work (`Healthy` + `Degraded`). When this hits
    /// zero the quarantined workers are woken to serve through the exact
    /// software fallback instead of letting requests strand.
    serving_workers: AtomicUsize,
    /// Quarantined workers parked while surviving replicas serve. A
    /// dedicated condvar keeps them out of `idle_cv`'s `notify_one` path, so
    /// a submitter wake can never land on a worker that must not serve.
    quarantine_lock: Mutex<()>,
    quarantine_cv: Condvar,
    /// Routed mode: each worker hosts its own set of tenant models, jobs are
    /// pinned to the worker hosting their model, and workers neither steal
    /// from each other nor rely on `notify_one` wakes that could land on a
    /// different tenant's worker.
    routed: bool,
    /// Per-ring admitted-but-not-popped counts. Only load-bearing in routed
    /// mode, where a worker's park/wake condition is *its own* ring rather
    /// than the global count (a neighbour tenant's backlog must not keep it
    /// spinning).
    ring_queued: Vec<AtomicUsize>,
    /// model id → hosting worker of a routed pool.
    routes: Mutex<HashMap<u64, usize>>,
    /// One hot-swap request mailbox per routed worker.
    mailboxes: Vec<Mailbox>,
}

/// Type-erased swap-request mailbox of one routed worker. Entries are boxed
/// `SwapRequest<B>` values; the generic worker downcasts on receipt (a
/// mismatched box is dropped, which answers its ticket with the shutdown
/// error through the request's drop guard).
#[derive(Default)]
struct Mailbox(Mutex<Vec<Box<dyn Any + Send>>>);

impl fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pending = self.0.lock().unwrap_or_else(PoisonError::into_inner).len();
        f.debug_struct("Mailbox")
            .field("pending", &pending)
            .finish()
    }
}

impl PoolShared {
    fn new(workers: usize, capacity: usize, routed: bool) -> Self {
        let per_ring = capacity.div_ceil(workers).next_power_of_two().max(2);
        Self {
            rings: (0..workers).map(|_| Ring::new(per_ring)).collect(),
            queued: AtomicUsize::new(0),
            capacity,
            cursor: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            pushing: AtomicUsize::new(0),
            answer_drained: AtomicBool::new(true),
            sleepers: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            blocked: AtomicUsize::new(0),
            space_lock: Mutex::new(()),
            space_cv: Condvar::new(),
            recalibration: AtomicU64::new(0),
            health: (0..workers)
                .map(|_| AtomicU8::new(ReplicaHealth::Healthy.as_u8()))
                .collect(),
            serving_workers: AtomicUsize::new(workers),
            quarantine_lock: Mutex::new(()),
            quarantine_cv: Condvar::new(),
            routed,
            ring_queued: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            routes: Mutex::new(HashMap::new()),
            mailboxes: (0..workers).map(|_| Mailbox::default()).collect(),
        }
    }

    /// Maps `model` to its hosting worker (routed pools).
    fn set_route(&self, model: u64, worker: usize) {
        self.routes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(model, worker);
    }

    /// Drops `model`'s route; returns the worker that hosted it, if any.
    fn unroute(&self, model: u64) -> Option<usize> {
        self.routes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&model)
    }

    /// Looks up the worker hosting `model`.
    fn route_of(&self, model: u64) -> Option<usize> {
        self.routes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&model)
            .copied()
    }

    /// Lock-free read of one replica's published health.
    fn health_of(&self, worker: usize) -> ReplicaHealth {
        ReplicaHealth::from_u8(self.health[worker].load(Ordering::SeqCst))
    }

    /// Whether any replica *other than* `worker` is still taking work.
    fn other_replica_serving(&self, worker: usize) -> bool {
        self.health.iter().enumerate().any(|(index, health)| {
            index != worker && ReplicaHealth::from_u8(health.load(Ordering::SeqCst)).is_serving()
        })
    }

    /// Publishes a worker's health transition. Entering quarantine
    /// decrements the serving count, wakes one surviving worker to steal the
    /// quarantined ring's leftovers and — when the last serving replica just
    /// left — wakes the quarantine parking lot so fallback serving starts.
    fn publish_health(&self, worker: usize, health: ReplicaHealth) -> ReplicaHealth {
        let previous =
            ReplicaHealth::from_u8(self.health[worker].swap(health.as_u8(), Ordering::SeqCst));
        if previous.is_serving() && !health.is_serving() {
            let remaining = self.serving_workers.fetch_sub(1, Ordering::SeqCst) - 1;
            fence(Ordering::SeqCst);
            self.wake_worker();
            if remaining == 0 {
                self.wake_quarantined();
            }
        } else if !previous.is_serving() && health.is_serving() {
            self.serving_workers.fetch_add(1, Ordering::SeqCst);
        }
        previous
    }

    /// Parks a quarantined worker until close or until the last serving
    /// replica leaves (same register-recheck pattern as `idle_wait`).
    fn quarantine_wait(&self) {
        let guard = self
            .quarantine_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.closed.load(Ordering::SeqCst) || self.serving_workers.load(Ordering::SeqCst) == 0 {
            drop(guard);
            return;
        }
        drop(
            self.quarantine_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes every parked quarantined worker.
    fn wake_quarantined(&self) {
        let _guard = self
            .quarantine_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.quarantine_cv.notify_all();
    }

    /// Non-blocking admission + placement. On failure the job is handed
    /// back untouched alongside the typed error.
    // The large Err is the point: rejected jobs come back by value so the
    // backpressure path never allocates.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> Result<(), (Job, ServingError)> {
        self.pushing.fetch_add(1, Ordering::SeqCst);
        let result = self.try_push_inner(job);
        self.pushing.fetch_sub(1, Ordering::SeqCst);
        result
    }

    #[allow(clippy::result_large_err)]
    fn try_push_inner(&self, job: Job) -> Result<(), (Job, ServingError)> {
        if self.closed.load(Ordering::SeqCst) {
            return Err((job, ServingError::ShutDown));
        }
        // Admission: the global count enforces `queue_depth` exactly, so
        // ring capacities (rounded up to powers of two) never leak extra
        // slots past the configured backpressure limit.
        if self.queued.fetch_add(1, Ordering::SeqCst) >= self.capacity {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Err((
                job,
                ServingError::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        // Placement: round-robin over the rings, overflowing into any ring
        // with space. Admission guarantees a free slot exists (total ring
        // capacity ≥ `queue_depth` ≥ admitted jobs), so the scan can only
        // miss transiently while a concurrent push/pop is mid-flight.
        // Quarantined replicas' rings are skipped while any replica still
        // serves; once none does, every ring is fair game again (the
        // quarantined workers serve through the software fallback).
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let rings = self.rings.len();
        let mut job = job;
        'place: loop {
            if self.closed.load(Ordering::SeqCst) {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Err((job, ServingError::ShutDown));
            }
            let skip_quarantined = self.serving_workers.load(Ordering::SeqCst) > 0;
            for offset in 0..rings {
                let index = (start + offset) % rings;
                if skip_quarantined && !self.health_of(index).is_serving() {
                    continue;
                }
                match self.rings[index].push(job) {
                    Ok(()) => {
                        self.ring_queued[index].fetch_add(1, Ordering::SeqCst);
                        break 'place;
                    }
                    Err(returned) => job = returned,
                }
            }
            if skip_quarantined {
                // Every serving ring is full. Quarantined rings still drain
                // through stealing, so overflow there beats spinning until a
                // serving worker frees a slot.
                for offset in 0..rings {
                    let index = (start + offset) % rings;
                    match self.rings[index].push(job) {
                        Ok(()) => {
                            self.ring_queued[index].fetch_add(1, Ordering::SeqCst);
                            break 'place;
                        }
                        Err(returned) => job = returned,
                    }
                }
            }
            std::hint::spin_loop();
        }
        fence(Ordering::SeqCst);
        self.wake_worker();
        Ok(())
    }

    /// Non-blocking routed admission: the job must land on `worker`'s ring
    /// (its model lives there and nobody steals), so a full ring means
    /// `QueueFull` rather than a reason to overflow onto another ring.
    #[allow(clippy::result_large_err)]
    fn try_push_to(&self, worker: usize, job: Job) -> Result<(), (Job, ServingError)> {
        self.pushing.fetch_add(1, Ordering::SeqCst);
        let result = self.try_push_to_inner(worker, job);
        self.pushing.fetch_sub(1, Ordering::SeqCst);
        result
    }

    #[allow(clippy::result_large_err)]
    fn try_push_to_inner(&self, worker: usize, job: Job) -> Result<(), (Job, ServingError)> {
        if self.closed.load(Ordering::SeqCst) {
            return Err((job, ServingError::ShutDown));
        }
        if self.queued.fetch_add(1, Ordering::SeqCst) >= self.capacity {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Err((
                job,
                ServingError::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        match self.rings[worker].push(job) {
            Ok(()) => {
                self.ring_queued[worker].fetch_add(1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                self.wake_worker();
                Ok(())
            }
            Err(returned) => {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                Err((
                    returned,
                    ServingError::QueueFull {
                        capacity: self.capacity,
                    },
                ))
            }
        }
    }

    /// Blocking routed admission: waits for space on `worker`'s ring.
    fn push_to_blocking(&self, worker: usize, job: Job) -> Result<(), ServingError> {
        let mut job = job;
        loop {
            match self.try_push_to(worker, job) {
                Ok(()) => return Ok(()),
                Err((returned, ServingError::QueueFull { .. })) => {
                    job = returned;
                    let guard = self
                        .space_lock
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    self.blocked.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    // Recheck after registering (same Dekker pattern as
                    // `push_blocking`); the target ring being full blocks a
                    // routed producer even when the global count has room.
                    if !self.closed.load(Ordering::SeqCst)
                        && (self.queued.load(Ordering::SeqCst) >= self.capacity
                            || self.rings[worker].is_full())
                    {
                        drop(
                            self.space_cv
                                .wait(guard)
                                .unwrap_or_else(PoisonError::into_inner),
                        );
                    } else {
                        drop(guard);
                    }
                    self.blocked.fetch_sub(1, Ordering::SeqCst);
                }
                Err((_, err)) => return Err(err),
            }
        }
    }

    /// Blocking admission: waits for a slot instead of rejecting.
    fn push_blocking(&self, job: Job) -> Result<(), ServingError> {
        let mut job = job;
        loop {
            match self.try_push(job) {
                Ok(()) => return Ok(()),
                Err((returned, ServingError::QueueFull { .. })) => {
                    job = returned;
                    let guard = self
                        .space_lock
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    self.blocked.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    // Recheck after registering: a worker that freed space
                    // (or a close) before seeing `blocked > 0` cannot be
                    // missed.
                    if !self.closed.load(Ordering::SeqCst)
                        && self.queued.load(Ordering::SeqCst) >= self.capacity
                    {
                        drop(
                            self.space_cv
                                .wait(guard)
                                .unwrap_or_else(PoisonError::into_inner),
                        );
                    } else {
                        drop(guard);
                    }
                    self.blocked.fetch_sub(1, Ordering::SeqCst);
                }
                Err((_, err)) => return Err(err),
            }
        }
    }

    /// Pops into `batch` (up to `max_batch` total): the worker's own ring
    /// first, then stealing round-robin from the others. Returns how many
    /// jobs this sweep added.
    fn pop_any(&self, worker: usize, batch: &mut Vec<Job>, max_batch: usize) -> usize {
        // Routed workers host distinct tenant models, so a steal would hand
        // a job to a worker that cannot serve it: sweep the own ring only.
        let sweep = if self.routed { 1 } else { self.rings.len() };
        let mut got = 0usize;
        for offset in 0..sweep {
            let index = (worker + offset) % self.rings.len();
            let ring = &self.rings[index];
            let mut from_ring = 0usize;
            while batch.len() < max_batch {
                match ring.pop() {
                    Some(job) => {
                        batch.push(job);
                        from_ring += 1;
                    }
                    None => break,
                }
            }
            if from_ring > 0 {
                self.ring_queued[index].fetch_sub(from_ring, Ordering::SeqCst);
                got += from_ring;
            }
            if batch.len() >= max_batch {
                break;
            }
        }
        if got > 0 {
            self.queued.fetch_sub(got, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            self.signal_space();
        }
        got
    }

    /// Blocks one worker until work, close or a recalibration request.
    /// Registers in `sleepers` first and rechecks under the lock (Dekker
    /// with the submitter's queued-then-sleepers order and the requester's
    /// bump-then-sleepers order), so neither a push nor a recalibration
    /// request can slip between the empty sweep and the wait.
    /// Work visible to `worker` while deciding whether to park: its own
    /// ring's count in routed mode (it cannot steal, so a neighbour tenant's
    /// backlog must not keep it awake), the global count otherwise.
    fn pending_work(&self, worker: usize) -> usize {
        if self.routed {
            self.ring_queued[worker].load(Ordering::SeqCst)
        } else {
            self.queued.load(Ordering::SeqCst)
        }
    }

    fn idle_wait(&self, worker: usize, recalibration_seen: u64) {
        let guard = self
            .idle_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst)
            || self.pending_work(worker) > 0
            || self.recalibration.load(Ordering::SeqCst) != recalibration_seen
        {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            // Admitted work may still be mid-placement: give the producer
            // the core instead of spinning on an empty ring.
            std::thread::yield_now();
            return;
        }
        drop(
            self.idle_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes one idle worker, if any is actually parked. Routed pools wake
    /// everyone: a `notify_one` could land on a worker hosting a different
    /// tenant, which would re-park while the right worker keeps sleeping.
    fn wake_worker(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self
                .idle_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if self.routed {
                self.idle_cv.notify_all();
            } else {
                self.idle_cv.notify_one();
            }
        }
    }

    /// Wakes blocked producers, if any is actually parked.
    fn signal_space(&self) {
        if self.blocked.load(Ordering::SeqCst) > 0 {
            let _guard = self
                .space_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.space_cv.notify_all();
        }
    }

    /// Closes the intake: after this returns, no push is in flight and none
    /// can land, so a subsequent [`PoolShared::drain_remaining`] sees every
    /// admitted job. Wakes everyone.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        while self.pushing.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        {
            let _guard = self
                .idle_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.idle_cv.notify_all();
        }
        {
            let _guard = self
                .space_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.space_cv.notify_all();
        }
        self.wake_quarantined();
    }

    /// Removes and returns everything still queued (call after
    /// [`PoolShared::close`]).
    fn drain_remaining(&self) -> Vec<Job> {
        let mut drained = Vec::new();
        for (index, ring) in self.rings.iter().enumerate() {
            let mut from_ring = 0usize;
            while let Some(job) = ring.pop() {
                drained.push(job);
                from_ring += 1;
            }
            if from_ring > 0 {
                self.ring_queued[index].fetch_sub(from_ring, Ordering::SeqCst);
            }
        }
        if !drained.is_empty() {
            self.queued.fetch_sub(drained.len(), Ordering::SeqCst);
            fence(Ordering::SeqCst);
            self.signal_space();
        }
        drained
    }

    /// Fills `batch` with the next dispatch: blocks (parking when idle) for
    /// the first request, then spends up to `max_wait_ticks` yield-polls
    /// topping the batch up to `max_batch`. Returns
    /// [`FillOutcome::Closed`] when the pool is closed and every ring has
    /// drained (the worker should exit), and [`FillOutcome::Recalibrate`]
    /// (with an empty batch) when a recalibration request past
    /// `recalibration_seen` arrives while the worker is otherwise idle —
    /// requests always win over recalibration, so an idle check can never
    /// delay queued work.
    fn fill_batch(
        &self,
        worker: usize,
        batch: &mut Vec<Job>,
        max_batch: usize,
        max_wait_ticks: u32,
        recalibration_seen: u64,
    ) -> FillOutcome {
        loop {
            if self.pop_any(worker, batch, max_batch) > 0 {
                break;
            }
            if self.closed.load(Ordering::SeqCst) {
                // Final sweep: `close` waited out in-flight pushes, so an
                // empty sweep after seeing `closed` means empty for good.
                if self.pop_any(worker, batch, max_batch) == 0 {
                    return FillOutcome::Closed;
                }
                break;
            }
            if self.recalibration.load(Ordering::SeqCst) != recalibration_seen {
                return FillOutcome::Recalibrate;
            }
            self.idle_wait(worker, recalibration_seen);
        }
        let mut ticks = 0u32;
        while batch.len() < max_batch
            && ticks < max_wait_ticks
            && !self.closed.load(Ordering::SeqCst)
        {
            ticks += 1;
            std::thread::yield_now();
            self.pop_any(worker, batch, max_batch);
        }
        FillOutcome::Batch
    }
}

/// What a worker's [`PoolShared::fill_batch`] sweep produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillOutcome {
    /// At least one job was popped into the batch.
    Batch,
    /// The pool is closed and drained; the worker should exit.
    Closed,
    /// No work is queued but a recalibration request is pending.
    Recalibrate,
}

// ---------------------------------------------------------------------------
// Reports and statistics
// ---------------------------------------------------------------------------

/// Serving statistics of one worker (engine replica).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker answered.
    pub requests: u64,
    /// Batches this worker dispatched.
    pub batches: u64,
    /// Largest batch this worker dispatched.
    pub largest_batch: usize,
    /// Requests answered with [`ServingError::ShutDown`] during an abort.
    pub shutdown_rejected: u64,
    /// Requests answered with a typed [`ServingError::Inference`] error.
    pub failed: u64,
    /// Σ amortized batch delays, in seconds.
    pub batched_delay_s: f64,
    /// Σ amortized batch energies, in joules.
    pub batched_energy_j: f64,
    /// Σ sequential-baseline delays of the same reads, in seconds.
    pub sequential_delay_s: f64,
    /// Σ sequential-baseline energies of the same reads, in joules.
    pub sequential_energy_j: f64,
    /// Submit → dispatch wait of every request this worker served.
    pub queue_wait: LatencyHistogram,
    /// Submit → answer-published latency of every request this worker
    /// served.
    pub end_to_end: LatencyHistogram,
    /// Recalibration passes that reprogrammed at least one cell of this
    /// worker's replica (always between batches, never mid-batch).
    pub recalibrations: u64,
    /// Σ write pulses those passes applied.
    pub recalibration_pulses: u64,
    /// Σ programming energy those passes spent, in joules.
    pub recalibration_energy_j: f64,
    /// Recalibration attempts that failed with a programming error (the
    /// replica keeps serving on its drifted state).
    pub recalibration_failures: u64,
    /// Scrub passes that found at least one defective cell on this worker's
    /// replica (clean passes and epoch-skipped checks are not counted).
    pub scrubs: u64,
    /// Σ defective cells those passes detected.
    pub faults_detected: u64,
    /// Σ defective cells healed — rewritten in place or remapped onto a
    /// spare row.
    pub faults_repaired: u64,
    /// Σ logical rows remapped onto spare physical rows.
    pub rows_remapped: u64,
    /// Σ write pulses the repair passes applied.
    pub repair_pulses: u64,
    /// Σ programming energy the repair passes spent, in joules.
    pub repair_energy_j: f64,
    /// Scrub attempts that failed with a programming error.
    pub scrub_failures: u64,
    /// Health state transitions of this replica (Healthy ⇄ Degraded,
    /// → Quarantined).
    pub health_transitions: u64,
    /// Requests this worker failed over to a surviving replica after a
    /// per-sample inference error (bounded per request by the retry budget).
    pub failovers: u64,
    /// Requests this worker answered through the exact software fallback
    /// after every physical replica was quarantined (also counted in
    /// `requests`).
    pub fallback_served: u64,
    /// Hot swaps (evict and/or install of tenant models) this routed worker
    /// serviced between batches.
    pub swaps: u64,
    /// Σ erase + programming pulses those swaps applied to the fabric.
    pub swap_pulses: u64,
    /// Σ erase + programming energy those swaps spent, in joules.
    pub swap_energy_j: f64,
    /// Routed requests answered with [`ServingError::ModelUnavailable`]
    /// because the model was swapped out after the request was queued.
    pub unrouted: u64,
    /// Whether this replica ended the run quarantined.
    pub quarantined: bool,
    /// Whether this worker's thread died (panicked) instead of reporting:
    /// all other fields of a crashed report are zero — whatever the worker
    /// had counted died with it.
    pub crashed: bool,
}

/// Aggregated statistics of a completed pool run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Requests answered across all workers.
    pub requests: u64,
    /// Batches dispatched across all workers.
    pub batches: u64,
    /// Largest batch any worker dispatched.
    pub largest_batch: usize,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Requests rejected with the typed shutdown error during an abort
    /// (drained by [`ServingPool::abort`] itself or bounced by a worker
    /// mid-abort).
    pub shutdown_rejected: u64,
    /// Requests answered with a typed [`ServingError::Inference`] error
    /// (counted separately from the successful `requests`, so every request
    /// that entered the queue reconciles as answered, failed, or rejected).
    pub failed_requests: u64,
    /// Worker threads that died (panicked) instead of reporting; their
    /// counts are lost and their queued work was answered with
    /// [`ServingError::ShutDown`].
    pub crashed_workers: u64,
    /// Σ amortized batch delays, in seconds.
    pub batched_delay_s: f64,
    /// Σ amortized batch energies, in joules.
    pub batched_energy_j: f64,
    /// Σ sequential-baseline delays, in seconds.
    pub sequential_delay_s: f64,
    /// Σ sequential-baseline energies, in joules.
    pub sequential_energy_j: f64,
    /// Submit → dispatch queue-wait across all workers.
    pub queue_wait: LatencyHistogram,
    /// Submit → answer-published latency across all workers.
    pub end_to_end: LatencyHistogram,
    /// Recalibration passes that reprogrammed cells, across all workers.
    pub recalibrations: u64,
    /// Σ write pulses applied by recalibration across all workers.
    pub recalibration_pulses: u64,
    /// Σ programming energy spent by recalibration, in joules.
    pub recalibration_energy_j: f64,
    /// Failed recalibration attempts across all workers.
    pub recalibration_failures: u64,
    /// Scrub passes that found defects, across all workers.
    pub scrubs: u64,
    /// Σ defective cells detected across all workers.
    pub faults_detected: u64,
    /// Σ defective cells healed (in place or via spare rows) across all
    /// workers.
    pub faults_repaired: u64,
    /// Σ logical rows remapped onto spare rows across all workers.
    pub rows_remapped: u64,
    /// Σ write pulses applied by repair passes across all workers.
    pub repair_pulses: u64,
    /// Σ programming energy spent by repair passes, in joules.
    pub repair_energy_j: f64,
    /// Failed scrub attempts across all workers.
    pub scrub_failures: u64,
    /// Health state transitions across all workers.
    pub health_transitions: u64,
    /// Requests failed over to a surviving replica, across all workers.
    pub failovers: u64,
    /// Requests answered through the exact software fallback, across all
    /// workers.
    pub fallback_served: u64,
    /// Hot swaps serviced across all routed workers.
    pub swaps: u64,
    /// Σ erase + programming pulses applied by hot swaps, across all
    /// workers.
    pub swap_pulses: u64,
    /// Σ erase + programming energy spent by hot swaps, in joules.
    pub swap_energy_j: f64,
    /// Routed requests answered with [`ServingError::ModelUnavailable`],
    /// across all workers.
    pub unrouted: u64,
    /// Replicas that ended the run quarantined.
    pub quarantined_workers: u64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
}

impl PoolStats {
    fn from_workers(workers: Vec<WorkerReport>) -> Self {
        let mut stats = Self {
            requests: 0,
            batches: 0,
            largest_batch: 0,
            mean_batch_size: 0.0,
            shutdown_rejected: 0,
            failed_requests: 0,
            crashed_workers: 0,
            batched_delay_s: 0.0,
            batched_energy_j: 0.0,
            sequential_delay_s: 0.0,
            sequential_energy_j: 0.0,
            queue_wait: LatencyHistogram::new(),
            end_to_end: LatencyHistogram::new(),
            recalibrations: 0,
            recalibration_pulses: 0,
            recalibration_energy_j: 0.0,
            recalibration_failures: 0,
            scrubs: 0,
            faults_detected: 0,
            faults_repaired: 0,
            rows_remapped: 0,
            repair_pulses: 0,
            repair_energy_j: 0.0,
            scrub_failures: 0,
            health_transitions: 0,
            failovers: 0,
            fallback_served: 0,
            swaps: 0,
            swap_pulses: 0,
            swap_energy_j: 0.0,
            unrouted: 0,
            quarantined_workers: 0,
            workers,
        };
        let mut queue_wait = LatencyHistogram::new();
        let mut end_to_end = LatencyHistogram::new();
        for report in &stats.workers {
            stats.requests += report.requests;
            stats.batches += report.batches;
            stats.largest_batch = stats.largest_batch.max(report.largest_batch);
            stats.shutdown_rejected += report.shutdown_rejected;
            stats.failed_requests += report.failed;
            stats.crashed_workers += u64::from(report.crashed);
            stats.batched_delay_s += report.batched_delay_s;
            stats.batched_energy_j += report.batched_energy_j;
            stats.sequential_delay_s += report.sequential_delay_s;
            stats.sequential_energy_j += report.sequential_energy_j;
            stats.recalibrations += report.recalibrations;
            stats.recalibration_pulses += report.recalibration_pulses;
            stats.recalibration_energy_j += report.recalibration_energy_j;
            stats.recalibration_failures += report.recalibration_failures;
            stats.scrubs += report.scrubs;
            stats.faults_detected += report.faults_detected;
            stats.faults_repaired += report.faults_repaired;
            stats.rows_remapped += report.rows_remapped;
            stats.repair_pulses += report.repair_pulses;
            stats.repair_energy_j += report.repair_energy_j;
            stats.scrub_failures += report.scrub_failures;
            stats.health_transitions += report.health_transitions;
            stats.failovers += report.failovers;
            stats.fallback_served += report.fallback_served;
            stats.swaps += report.swaps;
            stats.swap_pulses += report.swap_pulses;
            stats.swap_energy_j += report.swap_energy_j;
            stats.unrouted += report.unrouted;
            stats.quarantined_workers += u64::from(report.quarantined);
            queue_wait.merge(&report.queue_wait);
            end_to_end.merge(&report.end_to_end);
        }
        stats.queue_wait = queue_wait;
        stats.end_to_end = end_to_end;
        if stats.batches > 0 {
            stats.mean_batch_size = stats.requests as f64 / stats.batches as f64;
        }
        stats
    }

    /// Amortized-over-sequential modeled delay ratio of the whole run (≤ 1
    /// when grouped reads amortized settling; 1.0 for an idle run).
    pub fn delay_ratio(&self) -> f64 {
        if self.sequential_delay_s > 0.0 {
            self.batched_delay_s / self.sequential_delay_s
        } else {
            1.0
        }
    }

    /// Amortized-over-sequential modeled energy ratio of the whole run.
    pub fn energy_ratio(&self) -> f64 {
        if self.sequential_energy_j > 0.0 {
            self.batched_energy_j / self.sequential_energy_j
        } else {
            1.0
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// One worker thread's body, type-erased so replica and routed pools share
/// the spawn path.
type WorkerBody = Box<dyn FnOnce() -> WorkerReport + Send + 'static>;

/// Injectable thread spawner (name + body → handle or the OS error), so the
/// spawn-failure recovery path is testable without exhausting real threads.
type SpawnFn<'a> =
    &'a mut dyn FnMut(String, WorkerBody) -> std::io::Result<JoinHandle<WorkerReport>>;

fn default_spawner(name: String, body: WorkerBody) -> std::io::Result<JoinHandle<WorkerReport>> {
    std::thread::Builder::new().name(name).spawn(body)
}

/// Spawns every worker body, converting an OS spawn failure into the typed
/// [`ServingError::WorkerSpawn`] instead of panicking the constructor: the
/// pool closes, the already-spawned workers drain and join, and the
/// unspawned bodies are dropped — their captured guards keep the alive
/// count honest so the close-and-reject handoff still runs exactly once.
fn spawn_workers(
    shared: &Arc<PoolShared>,
    bodies: Vec<(String, WorkerBody)>,
    spawner: SpawnFn<'_>,
) -> Result<Vec<JoinHandle<WorkerReport>>, ServingError> {
    let mut workers = Vec::with_capacity(bodies.len());
    let mut bodies = bodies.into_iter();
    while let Some((name, body)) = bodies.next() {
        match spawner(name, body) {
            Ok(handle) => workers.push(handle),
            Err(err) => {
                let reason = err.to_string();
                shared.close();
                drop(bodies);
                for worker in workers {
                    let _ = worker.join();
                }
                return Err(ServingError::WorkerSpawn { reason });
            }
        }
    }
    Ok(workers)
}

/// A pool of engine replicas serving batched inference requests.
///
/// The pool is backend-erased: any [`InferenceBackend`] builds one, and
/// pools over different backends share the one `ServingPool` type. See the
/// [module docs](self) for the architecture, the batching knobs and the
/// backpressure/shutdown semantics.
#[derive(Debug)]
pub struct ServingPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<WorkerReport>>,
    config: ServingConfig,
}

impl ServingPool {
    /// Spawns one worker per engine replica. All replicas must serve the
    /// same compiled program (clone one engine, or build each replica from
    /// the same training data and configuration) — the pool does not check
    /// this, it is the caller's deployment contract.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::NoReplicas`] for an empty replica set and
    /// propagates configuration validation errors.
    pub fn new<B: InferenceBackend + Send + 'static>(
        engines: Vec<FebimEngine<B>>,
        config: ServingConfig,
    ) -> Result<Self, ServingError> {
        Self::new_inner(engines, config, &mut default_spawner)
    }

    /// [`ServingPool::new`] with an injectable thread spawner, so the
    /// spawn-failure recovery path is testable without exhausting the OS.
    fn new_inner<B: InferenceBackend + Send + 'static>(
        engines: Vec<FebimEngine<B>>,
        config: ServingConfig,
        spawner: SpawnFn<'_>,
    ) -> Result<Self, ServingError> {
        config.validate()?;
        if engines.is_empty() {
            return Err(ServingError::NoReplicas);
        }
        let shared = Arc::new(PoolShared::new(engines.len(), config.queue_depth, false));
        let alive = Arc::new(AtomicUsize::new(engines.len()));
        let bodies = engines
            .into_iter()
            .enumerate()
            .map(|(worker, engine)| {
                let shared = Arc::clone(&shared);
                let guard = WorkerGuard {
                    shared: Arc::clone(&shared),
                    alive: Arc::clone(&alive),
                };
                let body: WorkerBody = Box::new(move || {
                    // Runs on every exit path, including panic unwind:
                    // the last worker out closes and rejects the rings.
                    let _guard = guard;
                    worker_loop(worker, engine, &shared, config)
                });
                (format!("febim-serve-{worker}"), body)
            })
            .collect();
        let workers = spawn_workers(&shared, bodies, spawner)?;
        Ok(Self {
            shared,
            workers,
            config,
        })
    }

    /// Spawns one *routed* worker per bank of tenant models. Each bank's
    /// worker hosts its own engines (one per model id) and serves only the
    /// requests routed to those models via [`ServingPool::submit_routed`];
    /// routed workers never steal from each other, so a hot swap or a
    /// backlog on one bank cannot stall another bank's tenants.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::NoReplicas`] for an empty bank set,
    /// [`ServingError::InvalidConfig`] when a model id appears on two
    /// banks, and the same validation/spawn errors as [`ServingPool::new`].
    pub fn new_routed<B: InferenceBackend + Send + 'static>(
        banks: Vec<Vec<(u64, FebimEngine<B>)>>,
        config: ServingConfig,
    ) -> Result<Self, ServingError> {
        config.validate()?;
        if banks.is_empty() {
            return Err(ServingError::NoReplicas);
        }
        let shared = Arc::new(PoolShared::new(banks.len(), config.queue_depth, true));
        {
            let mut routes = shared.routes.lock().unwrap_or_else(PoisonError::into_inner);
            for (worker, bank) in banks.iter().enumerate() {
                for (model, _) in bank {
                    if routes.insert(*model, worker).is_some() {
                        return Err(ServingError::InvalidConfig {
                            name: "banks",
                            reason: format!("model id {model} registered on two banks"),
                        });
                    }
                }
            }
        }
        let alive = Arc::new(AtomicUsize::new(banks.len()));
        let bodies = banks
            .into_iter()
            .enumerate()
            .map(|(worker, bank)| {
                let shared = Arc::clone(&shared);
                let guard = WorkerGuard {
                    shared: Arc::clone(&shared),
                    alive: Arc::clone(&alive),
                };
                let body: WorkerBody = Box::new(move || {
                    let _guard = guard;
                    routed_worker_loop(worker, bank, &shared, config)
                });
                (format!("febim-route-{worker}"), body)
            })
            .collect();
        let workers = spawn_workers(&shared, bodies, &mut default_spawner)?;
        Ok(Self {
            shared,
            workers,
            config,
        })
    }

    /// Builds a pool of `replicas` clones of one engine (they share the
    /// trained model and the quantized tables by `Arc`, so replication
    /// copies only the physical state).
    ///
    /// # Errors
    ///
    /// Same as [`ServingPool::new`] (`replicas == 0` maps to
    /// [`ServingError::NoReplicas`]).
    pub fn replicate<B: InferenceBackend + Clone + Send + 'static>(
        engine: &FebimEngine<B>,
        replicas: usize,
        config: ServingConfig,
    ) -> Result<Self, ServingError> {
        Self::new(vec![engine.clone(); replicas], config)
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Number of worker replicas.
    pub fn replicas(&self) -> usize {
        self.workers.len()
    }

    /// Asks every worker to run one out-of-band drift check on its replica
    /// at the next safe point — between batches when busy, immediately when
    /// idle (parked workers are woken). Never stalls traffic: a worker
    /// holding a batch finishes and answers it first, and queued requests
    /// always dispatch before an idle check runs. The check honours the
    /// configured [`ServingConfig::recalibration`] policy; on a pool built
    /// without one the request is a no-op.
    pub fn request_recalibration(&self) {
        self.shared.recalibration.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.shared.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self
                .shared
                .idle_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.idle_cv.notify_all();
        }
    }

    /// Asks every worker to run one out-of-band fault scrub on its replica
    /// at the next safe point, with the same no-stall guarantees as
    /// [`ServingPool::request_recalibration`] (the two requests share one
    /// generation counter: a forced check runs both maintenance schedulers,
    /// and the epoch-skip fast path makes the unrequested one free). On a
    /// pool built without a [`ServingConfig::scrub`] policy the request is a
    /// no-op.
    pub fn request_scrub(&self) {
        self.request_recalibration();
    }

    /// Lock-free snapshot of every replica's published health, indexed by
    /// worker. Health only changes when a scrub pass runs (between batches,
    /// or forced via [`ServingPool::request_scrub`]).
    pub fn worker_health(&self) -> Vec<ReplicaHealth> {
        (0..self.shared.rings.len())
            .map(|worker| self.shared.health_of(worker))
            .collect()
    }

    /// Number of replicas currently taking work (not quarantined). `0`
    /// means the pool is serving through the exact software fallback.
    pub fn serving_replicas(&self) -> usize {
        self.shared.serving_workers.load(Ordering::SeqCst)
    }

    /// Submits one request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::QueueFull`] when the pool is at capacity
    /// (backpressure — retry later or use [`ServingPool::submit_blocking`]).
    pub fn submit(&self, sample: Vec<f64>) -> Result<Ticket, ServingError> {
        let cell = Arc::new(TicketCell::new());
        match self.shared.try_push(Job::new(sample, Arc::clone(&cell))) {
            Ok(()) => Ok(Ticket { cell }),
            Err((job, err)) => {
                // The job never entered a ring; disarm its drop guard so the
                // unused cell is not "answered".
                drop(job);
                Err(err)
            }
        }
    }

    /// Submits one request, waiting for a queue slot when the pool is at
    /// capacity (blocking backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::ShutDown`] when the pool closes while the
    /// request waits for a slot.
    pub fn submit_blocking(&self, sample: Vec<f64>) -> Result<Ticket, ServingError> {
        let cell = Arc::new(TicketCell::new());
        self.shared
            .push_blocking(Job::new(sample, Arc::clone(&cell)))?;
        Ok(Ticket { cell })
    }

    /// Convenience: submits every sample (blocking backpressure) and waits
    /// for all answers, returned in submission order.
    pub fn serve(&self, samples: &[Vec<f64>]) -> Vec<ServeResult> {
        let tickets: Vec<Result<Ticket, ServingError>> = samples
            .iter()
            .map(|sample| self.submit_blocking(sample.clone()))
            .collect();
        tickets
            .into_iter()
            .map(|ticket| ticket.and_then(Ticket::wait))
            .collect()
    }

    /// Worker (bank) currently hosting `model`, if any. Always `None` on a
    /// replica pool built with [`ServingPool::new`].
    pub fn route_of(&self, model: u64) -> Option<usize> {
        self.shared.route_of(model)
    }

    /// Submits one request routed to `model` without blocking (routed pools
    /// only; see [`ServingPool::new_routed`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::ModelUnavailable`] when no worker hosts
    /// `model`, and [`ServingError::QueueFull`] when the hosting worker's
    /// ring is full — routed requests cannot overflow onto another bank.
    pub fn submit_routed(&self, model: u64, sample: Vec<f64>) -> Result<Ticket, ServingError> {
        let worker = self
            .shared
            .route_of(model)
            .ok_or(ServingError::ModelUnavailable { model })?;
        let cell = Arc::new(TicketCell::new());
        match self
            .shared
            .try_push_to(worker, Job::routed(sample, Arc::clone(&cell), model))
        {
            Ok(()) => Ok(Ticket { cell }),
            Err((job, err)) => {
                // The job never entered a ring; disarm its drop guard so the
                // unused cell is not "answered".
                drop(job);
                Err(err)
            }
        }
    }

    /// Submits one routed request, waiting for a slot on the hosting
    /// worker's ring when it is full (blocking backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::ModelUnavailable`] when no worker hosts
    /// `model`, and [`ServingError::ShutDown`] when the pool closes while
    /// the request waits for a slot.
    pub fn submit_routed_blocking(
        &self,
        model: u64,
        sample: Vec<f64>,
    ) -> Result<Ticket, ServingError> {
        let worker = self
            .shared
            .route_of(model)
            .ok_or(ServingError::ModelUnavailable { model })?;
        let cell = Arc::new(TicketCell::new());
        self.shared
            .push_to_blocking(worker, Job::routed(sample, Arc::clone(&cell), model))?;
        Ok(Ticket { cell })
    }

    /// Convenience: submits every sample routed to `model` (blocking
    /// backpressure) and waits for all answers, in submission order.
    pub fn serve_model(&self, model: u64, samples: &[Vec<f64>]) -> Vec<ServeResult> {
        let tickets: Vec<Result<Ticket, ServingError>> = samples
            .iter()
            .map(|sample| self.submit_routed_blocking(model, sample.clone()))
            .collect();
        tickets
            .into_iter()
            .map(|ticket| ticket.and_then(Ticket::wait))
            .collect()
    }

    /// Posts a hot swap to routed worker `worker`: evict the listed models
    /// (erasing their tile regions) and install the pre-built engine, all
    /// between that worker's batches — other banks' tenants are never
    /// stalled. Evicted models stop routing immediately, so new requests
    /// for them get [`ServingError::ModelUnavailable`]; requests already
    /// queued for an evicted model are answered the same way by the
    /// servicing worker. The install's programming cost is priced
    /// analytically (Preisach pulse trains) before posting; the evictions'
    /// erase cost is measured on the fabric as the worker tears them down.
    pub(crate) fn post_swap<B: InferenceBackend + Send + 'static>(
        &self,
        worker: usize,
        evict: Vec<u64>,
        install: Option<(u64, FebimEngine<B>)>,
    ) -> SwapTicket {
        let program = install
            .as_ref()
            .and_then(|(_, engine)| engine.program_cost())
            .unwrap_or_default();
        for model in &evict {
            self.shared.unroute(*model);
        }
        let done = Arc::new(SwapDone::default());
        let request = SwapRequest {
            evict,
            install,
            program,
            done: Some(Arc::clone(&done)),
        };
        self.shared.mailboxes[worker]
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Box::new(request));
        // The maintenance generation bump doubles as the swap doorbell: it
        // wakes the worker if parked and makes a busy one run its
        // between-batches check, where the mailbox is drained.
        self.request_recalibration();
        SwapTicket { done }
    }

    /// Graceful shutdown: closes the intake, lets the workers answer every
    /// request still queued, joins them and returns the aggregated serving
    /// statistics. Dropping the pool performs the same drain, discarding the
    /// statistics.
    pub fn shutdown(mut self) -> PoolStats {
        self.finish()
    }

    /// Hard shutdown: closes the intake and answers every request still
    /// queued with the typed [`ServingError::ShutDown`] instead of serving
    /// it (the rejects are counted in [`PoolStats::shutdown_rejected`]).
    /// Batches a worker already popped are still answered normally.
    pub fn abort(mut self) -> PoolStats {
        self.shared.answer_drained.store(false, Ordering::SeqCst);
        self.shared.close();
        let mut rejected = 0u64;
        for job in self.shared.drain_remaining() {
            job.complete(Err(ServingError::ShutDown));
            rejected += 1;
        }
        let mut stats = self.finish();
        stats.shutdown_rejected += rejected;
        stats
    }

    /// Shared close-and-join tail of every shutdown path. A worker whose
    /// thread panicked is reported as a crashed zero-count entry under its
    /// own index.
    fn finish(&mut self) -> PoolStats {
        self.shared.close();
        let reports = self
            .workers
            .drain(..)
            .enumerate()
            .map(|(index, worker)| {
                worker.join().unwrap_or_else(|_| WorkerReport {
                    worker: index,
                    crashed: true,
                    ..WorkerReport::default()
                })
            })
            .collect();
        PoolStats::from_workers(reports)
    }
}

impl Drop for ServingPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.finish();
        }
    }
}

/// Dropped by each worker thread on any exit path (normal return or panic
/// unwind). The last worker out closes the intake and rejects everything
/// still queued with the typed shutdown error: with no consumer left, a
/// blocked producer or an unanswered queued request must fail fast, never
/// wait forever. On a graceful shutdown the rings are already closed and
/// drained, so both actions are no-ops.
struct WorkerGuard {
    shared: Arc<PoolShared>,
    alive: Arc<AtomicUsize>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if self.alive.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.close();
            for job in self.shared.drain_remaining() {
                job.complete(Err(ServingError::ShutDown));
            }
        }
    }
}

/// Records the result of one scheduler action (tick or forced check) into
/// the worker's report.
fn record_recalibration(
    result: crate::errors::Result<Option<febim_crossbar::RefreshOutcome>>,
    report: &mut WorkerReport,
) {
    match result {
        Ok(Some(outcome)) => {
            report.recalibrations += 1;
            report.recalibration_pulses += outcome.pulses_applied;
            report.recalibration_energy_j += outcome.energy_joules;
        }
        Ok(None) => {}
        Err(_) => report.recalibration_failures += 1,
    }
}

/// Records the result of one scrub-scheduler action into the worker's
/// report.
fn record_scrub(
    result: crate::errors::Result<Option<febim_crossbar::ScrubOutcome>>,
    report: &mut WorkerReport,
) {
    match result {
        Ok(Some(outcome)) => {
            report.scrubs += 1;
            report.faults_detected += outcome.reports.len() as u64;
            report.faults_repaired += outcome.cells_repaired;
            report.rows_remapped += outcome.rows_remapped;
            report.repair_pulses += outcome.pulses_applied;
            report.repair_energy_j += outcome.energy_joules;
        }
        Ok(None) => {}
        Err(_) => report.scrub_failures += 1,
    }
}

/// Publishes the scrub scheduler's health to the pool after a scrub action,
/// counting the transition. Returns `true` when this replica just entered
/// quarantine (the caller must switch to the quarantined-worker path).
fn sync_health(
    worker: usize,
    scrubber: &ScrubScheduler,
    shared: &PoolShared,
    report: &mut WorkerReport,
) -> bool {
    let health = scrubber.health();
    let previous = shared.publish_health(worker, health);
    if previous != health {
        report.health_transitions += 1;
    }
    health == ReplicaHealth::Quarantined && previous != ReplicaHealth::Quarantined
}

/// Re-admits a job onto a surviving replica's ring after this replica
/// failed (or must not serve) it. Readmission bypasses the capacity check —
/// the request was already admitted once. One scan over the rings, serving
/// replicas first; hands the job back on failure so the caller can answer
/// it locally instead (never silently drops it).
fn requeue(shared: &PoolShared, worker: usize, job: Job) -> Option<Job> {
    if shared.closed.load(Ordering::SeqCst) {
        return Some(job);
    }
    shared.queued.fetch_add(1, Ordering::SeqCst);
    let rings = shared.rings.len();
    let mut job = job;
    for pass in 0..2 {
        for offset in 1..=rings {
            let index = (worker + offset) % rings;
            // First pass targets only surviving replicas; the second takes
            // any ring with space (stealing still drains it).
            if pass == 0 && (index == worker || !shared.health_of(index).is_serving()) {
                continue;
            }
            match shared.rings[index].push(job) {
                Ok(()) => {
                    shared.ring_queued[index].fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    shared.wake_worker();
                    return None;
                }
                Err(returned) => job = returned,
            }
        }
    }
    shared.queued.fetch_sub(1, Ordering::SeqCst);
    Some(job)
}

/// Bounces batch jobs that already failed on this replica back to a
/// surviving one (routing, not a retry: attempts are not incremented).
/// A job that cannot be placed elsewhere stays in the batch and is served
/// here after all — an attempt beats a strand.
fn bounce_failed_over(worker: usize, shared: &PoolShared, batch: &mut Vec<Job>) {
    let mut index = 0;
    while index < batch.len() {
        if batch[index].avoid == Some(worker)
            && !shared.closed.load(Ordering::SeqCst)
            && shared.other_replica_serving(worker)
        {
            // `swap_remove` moves the last element into `index`; leave the
            // cursor in place so that element is examined next.
            let job = batch.swap_remove(index);
            if let Some(mut job) = requeue(shared, worker, job) {
                job.avoid = None;
                batch.push(job);
            }
        } else {
            index += 1;
        }
    }
}

/// Runs one popped batch end to end: records queue waits, takes the samples
/// out (the jobs keep their tickets armed, so a panic inside inference still
/// answers every request via the job drop guard), runs the grouped-read
/// path, and publishes every answer. On a grouped failure it falls back to
/// per-sample inference so one bad request cannot poison its batch mates;
/// with `failover` enabled, a per-sample inference error is retried on a
/// surviving replica (bounded by [`FAILOVER_ATTEMPTS`]) before its typed
/// error is answered. With `fallback` set, answered requests are counted as
/// software-fallback serves.
#[allow(clippy::too_many_arguments)]
fn dispatch_batch<B: InferenceBackend>(
    worker: usize,
    engine: &mut FebimEngine<B>,
    shared: &PoolShared,
    scratch: &mut crate::engine::EvalScratch,
    steps: &mut Vec<InferenceStep>,
    batch: &mut Vec<Job>,
    samples: &mut Vec<Vec<f64>>,
    report: &mut WorkerReport,
    failover: bool,
    fallback: bool,
) {
    let dispatched = Instant::now();
    samples.clear();
    for job in batch.iter_mut() {
        report
            .queue_wait
            .record(nanos_between(job.submitted, dispatched));
        samples.push(std::mem::take(&mut job.sample));
    }
    match engine.infer_batch_into(samples, scratch, steps) {
        Ok(telemetry) => {
            report.requests += batch.len() as u64;
            report.batches += 1;
            report.largest_batch = report.largest_batch.max(batch.len());
            report.batched_delay_s += telemetry.delay.total();
            report.batched_energy_j += telemetry.energy.total();
            report.sequential_delay_s += telemetry.sequential_delay;
            report.sequential_energy_j += telemetry.sequential_energy;
            if fallback {
                report.fallback_served += batch.len() as u64;
            }
            // Batched completion: publish the whole batch back to back
            // (one release-swap each); wakes only reach clients that
            // actually parked.
            let completed = Instant::now();
            for (job, step) in batch.drain(..).zip(steps.iter()) {
                report
                    .end_to_end
                    .record(nanos_between(job.submitted, completed));
                job.complete(Ok(ServeOutcome {
                    prediction: step.prediction,
                    tie_broken: step.tie_broken,
                    delay: step.delay,
                    energy: step.energy,
                    worker,
                    batch: telemetry,
                }));
            }
        }
        Err(_) => {
            // The batch failed as a group (e.g. one malformed sample).
            // Fall back to per-sample inference so one bad request
            // cannot poison its batch mates: each request gets its own
            // answer, its own typed error, or a failover retry.
            let size = batch.len();
            for (job, sample) in batch.drain(..).zip(samples.iter()) {
                let answer = engine
                    .infer_into(sample, scratch)
                    .map(|step| {
                        report.requests += 1;
                        report.batched_delay_s += step.delay.total();
                        report.batched_energy_j += step.energy.total();
                        report.sequential_delay_s += step.delay.total();
                        report.sequential_energy_j += step.energy.total();
                        if fallback {
                            report.fallback_served += 1;
                        }
                        ServeOutcome {
                            prediction: step.prediction,
                            tie_broken: step.tie_broken,
                            delay: step.delay,
                            energy: step.energy,
                            worker,
                            batch: BatchTelemetry {
                                reads: 1,
                                delay: step.delay,
                                energy: step.energy,
                                sequential_delay: step.delay.total(),
                                sequential_energy: step.energy.total(),
                                amortized: false,
                            },
                        }
                    })
                    .map_err(ServingError::Inference);
                if answer.is_err()
                    && failover
                    && job.attempts < FAILOVER_ATTEMPTS
                    && shared.other_replica_serving(worker)
                {
                    // This replica failed the request; hand it to a
                    // surviving one instead of answering the error.
                    let mut job = job;
                    job.attempts += 1;
                    job.avoid = Some(worker);
                    job.sample = sample.clone();
                    match requeue(shared, worker, job) {
                        None => {
                            report.failovers += 1;
                            continue;
                        }
                        Some(returned) => {
                            // No room elsewhere: answer the error after all.
                            report.failed += 1;
                            report
                                .end_to_end
                                .record(nanos_between(returned.submitted, Instant::now()));
                            returned.complete(answer);
                            continue;
                        }
                    }
                }
                if answer.is_err() {
                    report.failed += 1;
                }
                report
                    .end_to_end
                    .record(nanos_between(job.submitted, Instant::now()));
                job.complete(answer);
            }
            report.batches += 1;
            report.largest_batch = report.largest_batch.max(size);
        }
    }
}

/// One worker: fill a batch (own ring first, stealing from the others), run
/// it through the grouped-read path with a reused scratch, publish every
/// answer, repeat until the pool closes and the rings drain. Between
/// batches the worker ages its replica by [`ServingConfig::ticks_per_batch`]
/// and lets its [`RecalibrationScheduler`] check for drift and its
/// [`ScrubScheduler`] check for faults, so the replica's physical state
/// stays current — and its defects detected and repaired — without ever
/// stalling a request. A replica whose scrub quarantines it leaves the
/// serving rotation for good (see [`quarantined_worker`]).
fn worker_loop<B: InferenceBackend>(
    worker: usize,
    mut engine: FebimEngine<B>,
    shared: &PoolShared,
    config: ServingConfig,
) -> WorkerReport {
    let mut report = WorkerReport {
        worker,
        ..WorkerReport::default()
    };
    let mut scratch = engine.make_scratch();
    let mut steps: Vec<InferenceStep> = Vec::with_capacity(config.max_batch);
    let mut batch: Vec<Job> = Vec::with_capacity(config.max_batch);
    let mut samples: Vec<Vec<f64>> = Vec::with_capacity(config.max_batch);
    // The scheduler policies were validated with the serving config, so a
    // failed build here should be unreachable — but a worker thread must
    // never panic over maintenance plumbing: it degrades to serving without
    // the scheduler instead (requests still get answers).
    let mut scheduler = config
        .recalibration
        .and_then(|policy| RecalibrationScheduler::new(policy).ok());
    let mut scrubber = config
        .scrub
        .and_then(|policy| ScrubScheduler::new(policy).ok());
    let mut recalibration_seen = shared.recalibration.load(Ordering::SeqCst);
    loop {
        batch.clear();
        match shared.fill_batch(
            worker,
            &mut batch,
            config.max_batch,
            config.max_wait_ticks,
            recalibration_seen,
        ) {
            FillOutcome::Closed => break,
            FillOutcome::Recalibrate => {
                // Idle out-of-band request: honour the newest generation
                // (coalescing any requests that raced in) and check now.
                // Both maintenance schedulers run — recalibration and scrub
                // requests share the generation counter, and the epoch-skip
                // fast path makes the unrequested check free.
                recalibration_seen = shared.recalibration.load(Ordering::SeqCst);
                if let Some(scheduler) = scheduler.as_mut() {
                    record_recalibration(scheduler.check(&mut engine), &mut report);
                }
                if let Some(scrubber) = scrubber.as_mut() {
                    record_scrub(scrubber.check(&mut engine), &mut report);
                    if sync_health(worker, scrubber, shared, &mut report) {
                        return quarantined_worker(worker, &engine, shared, config, report);
                    }
                }
                continue;
            }
            FillOutcome::Batch => {}
        }
        if !shared.answer_drained.load(Ordering::SeqCst) {
            // Abort in progress: reject instead of serving.
            report.shutdown_rejected += batch.len() as u64;
            for job in batch.drain(..) {
                job.complete(Err(ServingError::ShutDown));
            }
            continue;
        }
        bounce_failed_over(worker, shared, &mut batch);
        if batch.is_empty() {
            continue;
        }
        dispatch_batch(
            worker,
            &mut engine,
            shared,
            &mut scratch,
            &mut steps,
            &mut batch,
            &mut samples,
            &mut report,
            true,
            false,
        );
        // Between batches — every ticket of the batch is already answered,
        // none is held — age the replica and run any drift or fault check
        // that falls due. Queued requests still win: the next iteration pops
        // them before the worker can idle.
        if let Some(scheduler) = scheduler.as_mut() {
            record_recalibration(
                scheduler.tick(&mut engine, config.ticks_per_batch),
                &mut report,
            );
        } else if config.ticks_per_batch > 0 {
            engine.advance_time(config.ticks_per_batch);
        }
        if let Some(scrubber) = scrubber.as_mut() {
            // The recalibration scheduler (or the branch above) already aged
            // the replica's clock; the scrub scheduler only counts down.
            record_scrub(
                scrubber.note_ticks(&mut engine, config.ticks_per_batch),
                &mut report,
            );
            if sync_health(worker, scrubber, shared, &mut report) {
                return quarantined_worker(worker, &engine, shared, config, report);
            }
        }
        let generation = shared.recalibration.load(Ordering::SeqCst);
        if generation != recalibration_seen {
            recalibration_seen = generation;
            if let Some(scheduler) = scheduler.as_mut() {
                record_recalibration(scheduler.check(&mut engine), &mut report);
            }
            if let Some(scrubber) = scrubber.as_mut() {
                record_scrub(scrubber.check(&mut engine), &mut report);
                if sync_health(worker, scrubber, shared, &mut report) {
                    return quarantined_worker(worker, &engine, shared, config, report);
                }
            }
        }
    }
    report
}

/// A quarantined replica stops serving: it parks on the quarantine lot —
/// deliberately away from `idle_cv`, whose `notify_one` wakes must only
/// reach workers that may serve — until the pool closes, or until the last
/// serving replica leaves. In the latter case the pool degrades gracefully:
/// the worker re-enters the serving loop on the exact software twin of the
/// shared model ([`FebimEngine::software_fallback`]), so requests keep
/// being answered (bit-exact to the quantized software classifier) with no
/// physical replica left.
fn quarantined_worker<B: InferenceBackend>(
    worker: usize,
    engine: &FebimEngine<B>,
    shared: &PoolShared,
    config: ServingConfig,
    mut report: WorkerReport,
) -> WorkerReport {
    report.quarantined = true;
    loop {
        if shared.serving_workers.load(Ordering::SeqCst) == 0 {
            return fallback_loop(worker, engine.software_fallback(), shared, config, report);
        }
        if shared.closed.load(Ordering::SeqCst) {
            // Surviving replicas drain the rings; this one just leaves.
            return report;
        }
        shared.quarantine_wait();
    }
}

/// Serving loop of a quarantined worker after every physical replica left
/// the rotation: identical batching and completion semantics, but inference
/// runs on the exact software fallback (no physical state, so no
/// maintenance schedulers and no failover — there is nowhere left to fail
/// over to).
fn fallback_loop(
    worker: usize,
    mut engine: FebimEngine<crate::backend::SoftwareBackend>,
    shared: &PoolShared,
    config: ServingConfig,
    mut report: WorkerReport,
) -> WorkerReport {
    let mut scratch = engine.make_scratch();
    let mut steps: Vec<InferenceStep> = Vec::with_capacity(config.max_batch);
    let mut batch: Vec<Job> = Vec::with_capacity(config.max_batch);
    let mut samples: Vec<Vec<f64>> = Vec::with_capacity(config.max_batch);
    let mut recalibration_seen = shared.recalibration.load(Ordering::SeqCst);
    loop {
        batch.clear();
        match shared.fill_batch(
            worker,
            &mut batch,
            config.max_batch,
            config.max_wait_ticks,
            recalibration_seen,
        ) {
            FillOutcome::Closed => break,
            FillOutcome::Recalibrate => {
                // The software twin has no physical state to maintain.
                recalibration_seen = shared.recalibration.load(Ordering::SeqCst);
                continue;
            }
            FillOutcome::Batch => {}
        }
        if !shared.answer_drained.load(Ordering::SeqCst) {
            report.shutdown_rejected += batch.len() as u64;
            for job in batch.drain(..) {
                job.complete(Err(ServingError::ShutDown));
            }
            continue;
        }
        dispatch_batch(
            worker,
            &mut engine,
            shared,
            &mut scratch,
            &mut steps,
            &mut batch,
            &mut samples,
            &mut report,
            false,
            true,
        );
    }
    report
}

// ---------------------------------------------------------------------------
// Routed (multi-tenant) serving
// ---------------------------------------------------------------------------

/// What one serviced hot swap did, returned through [`SwapTicket::wait`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SwapReport {
    /// Routed worker (bank) the swap ran on.
    pub worker: usize,
    /// Model ids evicted from the bank (their tile regions erased).
    pub evicted: Vec<u64>,
    /// Model id installed, if the swap carried one.
    pub installed: Option<u64>,
    /// Erase cost of tearing the evicted programs off the fabric.
    pub erase: SwapCost,
    /// Programming cost of the installed program (Preisach pulse pricing).
    pub program: SwapCost,
}

/// Completion cell of one posted hot swap. A condvar, not a spin-park:
/// swaps are control-plane rare and wait out whole batches, not
/// microseconds.
#[derive(Debug, Default)]
struct SwapDone {
    slot: Mutex<Option<Result<SwapReport, ServingError>>>,
    cv: Condvar,
}

impl SwapDone {
    fn complete(&self, result: Result<SwapReport, ServingError>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
        }
        self.cv.notify_all();
    }
}

/// Handle of a posted hot swap; resolves when the target worker services
/// the request between two of its batches.
#[derive(Debug)]
pub struct SwapTicket {
    done: Arc<SwapDone>,
}

impl SwapTicket {
    /// Blocks until the swap is serviced.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::ShutDown`] when the pool shuts down with the
    /// swap still pending.
    pub fn wait(self) -> Result<SwapReport, ServingError> {
        let mut slot = self
            .done
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .done
                .cv
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A hot-swap request parked in a routed worker's mailbox: model ids to
/// evict and (optionally) a pre-built engine to install in their place. The
/// drop guard answers the ticket with the shutdown error if the request
/// dies unserviced (pool shutdown with the swap still queued, or a mailbox
/// downcast mismatch), so [`SwapTicket::wait`] can never hang.
struct SwapRequest<B: InferenceBackend> {
    evict: Vec<u64>,
    install: Option<(u64, FebimEngine<B>)>,
    /// Programming cost of `install`, priced analytically before posting so
    /// the servicing worker charges it without re-deriving pulse trains.
    program: SwapCost,
    done: Option<Arc<SwapDone>>,
}

impl<B: InferenceBackend> Drop for SwapRequest<B> {
    fn drop(&mut self) {
        if let Some(done) = self.done.take() {
            done.complete(Err(ServingError::ShutDown));
        }
    }
}

/// One tenant model hosted by a routed worker: its engine plus a dedicated
/// scratch (scratch dimensions depend on the model's class/feature counts,
/// so tenants cannot share one).
struct TenantSlot<B: InferenceBackend> {
    model: u64,
    engine: FebimEngine<B>,
    scratch: crate::engine::EvalScratch,
}

/// Drains a routed worker's swap mailbox: evicts models (tearing their tile
/// regions off the fabric and pricing the erase pulses), installs the
/// pre-built replacement engine, publishes the new route and answers the
/// swap ticket. Runs strictly between batches — every ticket of the
/// previous batch is already answered when this is called.
fn service_swaps<B: InferenceBackend + 'static>(
    worker: usize,
    bank: &mut Vec<TenantSlot<B>>,
    shared: &PoolShared,
    report: &mut WorkerReport,
) {
    loop {
        let boxed = {
            let mut mailbox = shared.mailboxes[worker]
                .0
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match mailbox.pop() {
                Some(boxed) => boxed,
                None => return,
            }
        };
        // A box that is not a SwapRequest<B> cannot be serviced here; drop
        // it and let its guard (if any) answer the ticket.
        let Ok(mut request) = boxed.downcast::<SwapRequest<B>>() else {
            continue;
        };
        let mut erase = SwapCost::default();
        let evicted = std::mem::take(&mut request.evict);
        for model in &evicted {
            shared.unroute(*model);
            let Some(index) = bank.iter().position(|slot| slot.model == *model) else {
                continue;
            };
            let mut slot = bank.swap_remove(index);
            // Tear the program off the fabric; the scoped erase invalidates
            // only this model's tiles, so survivors keep their caches.
            if let Ok(Some(cost)) = slot.engine.decommission() {
                erase.absorb(cost);
            }
        }
        let installed = request.install.take().map(|(model, engine)| {
            let scratch = engine.make_scratch();
            bank.push(TenantSlot {
                model,
                engine,
                scratch,
            });
            shared.set_route(model, worker);
            model
        });
        let program = request.program;
        report.swaps += 1;
        report.swap_pulses += erase.pulses + program.pulses;
        report.swap_energy_j += erase.energy_j + program.energy_j;
        if let Some(done) = request.done.take() {
            done.complete(Ok(SwapReport {
                worker,
                evicted,
                installed,
                erase,
                program,
            }));
        }
    }
}

/// Serving loop of one routed worker: pops only its own ring (jobs are
/// pinned to the bank hosting their model), groups each batch by model id
/// and dispatches every group through the grouped-read path on that
/// tenant's engine. Between batches it services hot-swap requests from its
/// mailbox and ages every tenant replica; a request whose model was swapped
/// out after queueing is answered with the typed
/// [`ServingError::ModelUnavailable`]. No stealing, no failover: tenants
/// live on exactly one bank.
fn routed_worker_loop<B: InferenceBackend + 'static>(
    worker: usize,
    bank: Vec<(u64, FebimEngine<B>)>,
    shared: &PoolShared,
    config: ServingConfig,
) -> WorkerReport {
    let mut report = WorkerReport {
        worker,
        ..WorkerReport::default()
    };
    let mut bank: Vec<TenantSlot<B>> = bank
        .into_iter()
        .map(|(model, engine)| {
            let scratch = engine.make_scratch();
            TenantSlot {
                model,
                engine,
                scratch,
            }
        })
        .collect();
    let mut steps: Vec<InferenceStep> = Vec::with_capacity(config.max_batch);
    let mut batch: Vec<Job> = Vec::with_capacity(config.max_batch);
    let mut sub: Vec<Job> = Vec::with_capacity(config.max_batch);
    let mut samples: Vec<Vec<f64>> = Vec::with_capacity(config.max_batch);
    let mut recalibration_seen = shared.recalibration.load(Ordering::SeqCst);
    // Drain the mailbox once before serving: a swap posted during thread
    // start-up may have bumped the generation before the load above, in
    // which case no later doorbell distinguishes it from the initial value.
    // The load-then-drain order re-establishes the invariant that
    // `seen == G` implies every request posted before the bump to `G` has
    // been serviced.
    service_swaps(worker, &mut bank, shared, &mut report);
    loop {
        batch.clear();
        match shared.fill_batch(
            worker,
            &mut batch,
            config.max_batch,
            config.max_wait_ticks,
            recalibration_seen,
        ) {
            FillOutcome::Closed => break,
            FillOutcome::Recalibrate => {
                // The generation counter doubles as the swap doorbell on
                // routed pools; an idle bump means the mailbox may hold work.
                recalibration_seen = shared.recalibration.load(Ordering::SeqCst);
                service_swaps(worker, &mut bank, shared, &mut report);
                continue;
            }
            FillOutcome::Batch => {}
        }
        if !shared.answer_drained.load(Ordering::SeqCst) {
            // Abort in progress: reject instead of serving.
            report.shutdown_rejected += batch.len() as u64;
            for job in batch.drain(..) {
                job.complete(Err(ServingError::ShutDown));
            }
            continue;
        }
        // Dispatch the batch one model group at a time: partition the jobs
        // of the first remaining model into `sub`, serve it on that
        // tenant's engine, repeat until the batch is empty.
        while let Some(model) = batch.first().and_then(|job| job.model) {
            sub.clear();
            let mut index = 0;
            while index < batch.len() {
                if batch[index].model == Some(model) {
                    sub.push(batch.swap_remove(index));
                } else {
                    index += 1;
                }
            }
            match bank.iter_mut().find(|slot| slot.model == model) {
                Some(slot) => dispatch_batch(
                    worker,
                    &mut slot.engine,
                    shared,
                    &mut slot.scratch,
                    &mut steps,
                    &mut sub,
                    &mut samples,
                    &mut report,
                    false,
                    false,
                ),
                None => {
                    // The model was swapped out between queueing and
                    // dispatch: answer the typed error, never strand.
                    report.unrouted += sub.len() as u64;
                    for job in sub.drain(..) {
                        job.complete(Err(ServingError::ModelUnavailable { model }));
                    }
                }
            }
        }
        // A job without a model id cannot land on a routed pool's rings
        // (both submit paths attach one); answer defensively anyway.
        for job in batch.drain(..) {
            report.unrouted += 1;
            job.complete(Err(ServingError::NoReplicas));
        }
        // Between batches: age every tenant replica, then service any
        // pending swap (the ring is the only source of requests, so nothing
        // else can observe the bank mid-swap).
        if config.ticks_per_batch > 0 {
            for slot in bank.iter_mut() {
                slot.engine.advance_time(config.ticks_per_batch);
            }
        }
        let generation = shared.recalibration.load(Ordering::SeqCst);
        if generation != recalibration_seen {
            recalibration_seen = generation;
            service_swaps(worker, &mut bank, shared, &mut report);
        }
    }
    // Final mailbox sweep: a swap posted during shutdown is answered (its
    // drop guard reports the shutdown error) rather than stranded.
    shared.mailboxes[worker]
        .0
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendInfo, CrossbarBackend};
    use crate::config::EngineConfig;
    use crate::engine::EvalScratch;
    use crate::errors::Result as CoreResult;
    use febim_crossbar::{FaultKind, FaultSchedule, ScheduledFault, TileShape};
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use febim_data::Dataset;

    fn split_for(seed: u64) -> (Dataset, Dataset) {
        let dataset = iris_like(seed).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
        (split.train, split.test)
    }

    fn samples_of(test: &Dataset) -> Vec<Vec<f64>> {
        (0..test.n_samples())
            .map(|index| test.sample(index).unwrap().to_vec())
            .collect()
    }

    #[test]
    fn config_validation_and_builders() {
        assert!(ServingConfig::febim_default().validate().is_ok());
        let config = ServingConfig::default()
            .with_max_batch(16)
            .with_max_wait_ticks(0)
            .with_queue_depth(128);
        assert_eq!(config.max_batch, 16);
        assert_eq!(config.max_wait_ticks, 0);
        assert_eq!(config.queue_depth, 128);
        assert!(matches!(
            ServingConfig::default().with_max_batch(0).validate(),
            Err(ServingError::InvalidConfig {
                name: "max_batch",
                ..
            })
        ));
        assert!(matches!(
            ServingConfig::default().with_queue_depth(0).validate(),
            Err(ServingError::InvalidConfig {
                name: "queue_depth",
                ..
            })
        ));
    }

    #[test]
    fn typed_errors_display_and_wrap() {
        assert!(ServingError::NoReplicas.to_string().contains("replica"));
        assert!(ServingError::QueueFull { capacity: 7 }
            .to_string()
            .contains('7'));
        assert!(ServingError::ShutDown.to_string().contains("shut down"));
        let err: ServingError = CoreError::NotProgrammed.into();
        assert!(err.to_string().contains("inference failed"));
        assert!(Error::source(&err).is_some());
        assert!(Error::source(&ServingError::ShutDown).is_none());
    }

    #[test]
    fn ring_is_fifo_and_reports_full_and_empty() {
        let ring = Ring::new(4);
        assert!(ring.pop().is_none());
        for index in 0..4 {
            let cell = Arc::new(TicketCell::new());
            assert!(ring.push(Job::new(vec![f64::from(index)], cell)).is_ok());
        }
        // Full: the fifth push hands the job back (whose drop guard then
        // answers its unused ticket).
        assert!(ring
            .push(Job::new(vec![4.0], Arc::new(TicketCell::new())))
            .is_err());
        // FIFO order, and slots recycle after pops.
        for index in 0..4 {
            let job = ring.pop().expect("queued job");
            assert_eq!(job.sample, vec![f64::from(index)]);
        }
        assert!(ring.pop().is_none());
        assert!(ring
            .push(Job::new(vec![9.0], Arc::new(TicketCell::new())))
            .is_ok());
        assert_eq!(ring.pop().expect("recycled slot").sample, vec![9.0]);
    }

    #[test]
    fn dropped_jobs_answer_their_tickets_with_shutdown() {
        let cell = Arc::new(TicketCell::new());
        let job = Job::new(vec![1.0], Arc::clone(&cell));
        drop(job);
        assert!(matches!(
            Ticket { cell }.wait(),
            Err(ServingError::ShutDown)
        ));
    }

    #[test]
    fn latency_histogram_buckets_merge_and_percentiles() {
        let mut histogram = LatencyHistogram::new();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.percentile_ns(50.0), 0);
        // Exact region: every value below 16 ns has its own bucket.
        for nanos in 0..16u64 {
            assert_eq!(LatencyHistogram::bucket_index(nanos), nanos as usize);
            assert_eq!(LatencyHistogram::bucket_midpoint(nanos as usize), nanos);
        }
        // Log-linear region: bucket index is monotone in the sample value.
        let mut last = 0;
        for shift in 4..63 {
            let index = LatencyHistogram::bucket_index(1u64 << shift);
            assert!(index > last, "shift {shift}");
            last = index;
        }
        assert!(LatencyHistogram::bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
        // Percentiles: 100 samples at ~100 ns, 5 at ~10_000 ns.
        for _ in 0..100 {
            histogram.record(100);
        }
        for _ in 0..5 {
            histogram.record(10_000);
        }
        let p50 = histogram.p50_ns();
        let p99 = histogram.p99_ns();
        assert!((75..=150).contains(&p50), "p50 = {p50}");
        assert!((7_500..=15_000).contains(&p99), "p99 = {p99}");
        assert!(histogram.p95_ns() >= p50);
        // Merge accumulates counts bucket-wise.
        let mut other = LatencyHistogram::new();
        other.record(100);
        other.merge(&histogram);
        assert_eq!(other.count(), histogram.count() + 1);
    }

    #[test]
    fn empty_pools_and_zero_replicas_rejected() {
        let (train, _) = split_for(900);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        assert!(matches!(
            ServingPool::new::<CrossbarBackend>(Vec::new(), ServingConfig::default()),
            Err(ServingError::NoReplicas)
        ));
        assert!(matches!(
            ServingPool::replicate(&engine, 0, ServingConfig::default()),
            Err(ServingError::NoReplicas)
        ));
        assert!(matches!(
            ServingPool::replicate(&engine, 1, ServingConfig::default().with_max_batch(0)),
            Err(ServingError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn pool_answers_match_sequential_inference_bit_for_bit() {
        let (train, test) = split_for(901);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let mut scratch = engine.make_scratch();
        let samples = samples_of(&test);
        let sequential: Vec<InferenceStep> = samples
            .iter()
            .map(|sample| engine.infer_into(sample, &mut scratch).unwrap())
            .collect();
        let pool =
            ServingPool::replicate(&engine, 2, ServingConfig::default().with_max_batch(4)).unwrap();
        assert_eq!(pool.replicas(), 2);
        assert_eq!(pool.config().max_batch, 4);
        let answers = pool.serve(&samples);
        for (answer, step) in answers.iter().zip(&sequential) {
            let outcome = answer.as_ref().unwrap();
            assert_eq!(outcome.prediction, step.prediction);
            assert_eq!(outcome.tie_broken, step.tie_broken);
            assert_eq!(outcome.delay, step.delay);
            assert_eq!(outcome.energy, step.energy);
            assert!(outcome.worker < 2);
            assert!(outcome.batch.reads >= 1 && outcome.batch.reads <= 4);
            assert!(outcome.batch.amortized);
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, samples.len() as u64);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch <= 4);
        assert!(stats.mean_batch_size >= 1.0);
        assert_eq!(stats.shutdown_rejected, 0);
        // Every served request was timed, worker histograms merge into the
        // pool-level ones, and the percentiles are ordered.
        assert_eq!(stats.queue_wait.count(), samples.len() as u64);
        assert_eq!(stats.end_to_end.count(), samples.len() as u64);
        assert!(stats.end_to_end.p50_ns() <= stats.end_to_end.p99_ns());
        // The grouped pricing never exceeds the sequential baseline.
        assert!(stats.batched_delay_s <= stats.sequential_delay_s);
        assert!(stats.batched_energy_j <= stats.sequential_energy_j);
        assert!(stats.delay_ratio() <= 1.0 && stats.delay_ratio() > 0.0);
        assert!(stats.energy_ratio() <= 1.0 && stats.energy_ratio() > 0.0);
        let json = serde::json::to_string(&stats);
        assert!(json.contains("\"mean_batch_size\""));
        assert!(json.contains("\"workers\""));
        assert!(json.contains("\"queue_wait\""));
    }

    #[test]
    fn tiled_pool_matches_the_monolithic_pool() {
        let (train, test) = split_for(902);
        let config = EngineConfig::febim_default();
        let monolithic = FebimEngine::fit(&train, config.clone()).unwrap();
        let tiled = FebimEngine::fit_tiled(&train, config, TileShape::new(2, 24).unwrap()).unwrap();
        let samples = samples_of(&test);
        let mono_pool = ServingPool::replicate(&monolithic, 2, ServingConfig::default()).unwrap();
        let tile_pool = ServingPool::replicate(&tiled, 2, ServingConfig::default()).unwrap();
        let mono_answers = mono_pool.serve(&samples);
        let tile_answers = tile_pool.serve(&samples);
        for (a, b) in mono_answers.iter().zip(&tile_answers) {
            assert_eq!(
                a.as_ref().unwrap().prediction,
                b.as_ref().unwrap().prediction
            );
        }
    }

    /// A pool of bit-plane-packed replicas serves the same answers as
    /// sequential packed inference: the shift-add read path composes with
    /// batched serving exactly like one-hot reads do.
    #[test]
    fn packed_pool_matches_sequential_packed_inference() {
        let (train, test) = split_for(906);
        let config = EngineConfig::febim_default()
            .with_encoding(febim_quant::Encoding::BitPlane { bits: 4 });
        let engine = FebimEngine::fit(&train, config).unwrap();
        let mut scratch = engine.make_scratch();
        let samples = samples_of(&test);
        let sequential: Vec<InferenceStep> = samples
            .iter()
            .map(|sample| engine.infer_into(sample, &mut scratch).unwrap())
            .collect();
        let pool =
            ServingPool::replicate(&engine, 2, ServingConfig::default().with_max_batch(4)).unwrap();
        let answers = pool.serve(&samples);
        for (answer, step) in answers.iter().zip(&sequential) {
            let outcome = answer.as_ref().unwrap();
            assert_eq!(outcome.prediction, step.prediction);
            assert_eq!(outcome.tie_broken, step.tie_broken);
            assert_eq!(outcome.delay, step.delay);
            assert_eq!(outcome.energy, step.energy);
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, samples.len() as u64);
        assert!(stats.batched_delay_s <= stats.sequential_delay_s);
    }

    #[test]
    fn malformed_requests_get_their_own_typed_error() {
        let (train, test) = split_for(903);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let expected = engine.predict(test.sample(0).unwrap()).unwrap();
        let pool =
            ServingPool::replicate(&engine, 1, ServingConfig::default().with_max_batch(8)).unwrap();
        let mut samples = vec![test.sample(0).unwrap().to_vec(); 5];
        samples[2] = vec![1.0, 2.0]; // wrong feature count
        let answers = pool.serve(&samples);
        for (index, answer) in answers.iter().enumerate() {
            if index == 2 {
                assert!(matches!(
                    answer,
                    Err(ServingError::Inference(CoreError::DatasetMismatch { .. }))
                ));
            } else {
                assert_eq!(answer.as_ref().unwrap().prediction, expected);
            }
        }
        // The failed request is accounted separately, so the run reconciles:
        // 4 answered + 1 failed = 5 submitted.
        let stats = pool.shutdown();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.failed_requests, 1);
    }

    /// A backend whose reads block on a test-controlled gate, so tests can
    /// deterministically trap a worker mid-batch, fill the queue behind it
    /// and observe backpressure and shutdown semantics.
    #[derive(Debug)]
    struct Gate {
        state: Mutex<(bool, usize)>, // (open, reads entered)
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                state: Mutex::new((false, 0)),
                cv: Condvar::new(),
            })
        }

        fn open(&self) {
            self.state.lock().unwrap().0 = true;
            self.cv.notify_all();
        }

        fn wait_entered(&self, reads: usize) {
            let mut state = self.state.lock().unwrap();
            while state.1 < reads {
                state = self.cv.wait(state).unwrap();
            }
        }

        fn enter_and_wait(&self) {
            let mut state = self.state.lock().unwrap();
            state.1 += 1;
            self.cv.notify_all();
            while !state.0 {
                state = self.cv.wait(state).unwrap();
            }
        }
    }

    #[derive(Debug)]
    struct GatedBackend {
        inner: CrossbarBackend,
        gate: Arc<Gate>,
    }

    impl InferenceBackend for GatedBackend {
        fn info(&self) -> BackendInfo {
            self.inner.info()
        }

        fn make_scratch(&self) -> EvalScratch {
            self.inner.make_scratch()
        }

        fn infer_into(
            &self,
            sample: &[f64],
            scratch: &mut EvalScratch,
        ) -> CoreResult<InferenceStep> {
            self.gate.enter_and_wait();
            self.inner.infer_into(sample, scratch)
        }

        fn reprogram(&mut self) -> CoreResult<()> {
            self.inner.reprogram()
        }

        fn current_map_into(&self, out: &mut Vec<f64>) -> CoreResult<()> {
            self.inner.current_map_into(out)
        }
    }

    fn gated_pool(seed: u64, config: ServingConfig) -> (ServingPool, Arc<Gate>, Vec<f64>, usize) {
        let (train, test) = split_for(seed);
        let gate = Gate::new();
        let engine_gate = Arc::clone(&gate);
        let engine_config = EngineConfig::febim_default();
        let engine = FebimEngine::fit_with(&train, engine_config, move |quantized, config| {
            Ok(GatedBackend {
                inner: CrossbarBackend::new(quantized, config)?,
                gate: engine_gate,
            })
        })
        .unwrap();
        let sample = test.sample(0).unwrap().to_vec();
        // Reference prediction through a plain (ungated) engine trained on
        // the same data.
        let prediction = {
            let plain = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
            plain.predict(&sample).unwrap()
        };
        let pool = ServingPool::new(vec![engine], config).unwrap();
        (pool, gate, sample, prediction)
    }

    #[test]
    fn backpressure_surfaces_as_a_typed_queue_full_error() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(1);
        let (pool, gate, sample, prediction) = gated_pool(904, config);
        // First request: the worker pops it and blocks inside the read.
        let first = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        // Second request fills the depth-1 queue; the third must bounce.
        let second = pool.submit(sample.clone()).unwrap();
        let third = pool.submit(sample.clone());
        assert!(matches!(
            third,
            Err(ServingError::QueueFull { capacity: 1 })
        ));
        gate.open();
        assert_eq!(first.wait().unwrap().prediction, prediction);
        assert_eq!(second.wait().unwrap().prediction, prediction);
        let stats = pool.shutdown();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn dropping_the_pool_answers_every_queued_request() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(8);
        let (pool, gate, sample, prediction) = gated_pool(905, config);
        let trapped = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        let queued: Vec<Ticket> = (0..4)
            .map(|_| pool.submit(sample.clone()).unwrap())
            .collect();
        // Drop the pool from another thread (it blocks draining); every
        // ticket must still resolve once the gate opens.
        let dropper = std::thread::spawn(move || drop(pool));
        gate.open();
        assert_eq!(trapped.wait().unwrap().prediction, prediction);
        for ticket in queued {
            assert_eq!(ticket.wait().unwrap().prediction, prediction);
        }
        dropper.join().unwrap();
    }

    #[test]
    fn abort_rejects_queued_requests_with_the_typed_shutdown_error() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(8);
        let (pool, gate, sample, prediction) = gated_pool(906, config);
        let trapped = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        let queued: Vec<Ticket> = (0..3)
            .map(|_| pool.submit(sample.clone()).unwrap())
            .collect();
        // The worker is trapped inside the read, so `abort` deterministically
        // drains the queued requests before the worker can reach them.
        let aborter = std::thread::spawn(move || pool.abort());
        for ticket in queued {
            assert!(matches!(ticket.wait(), Err(ServingError::ShutDown)));
        }
        // The in-flight request still gets its answer, and every rejected
        // request is accounted for in the returned statistics.
        gate.open();
        assert_eq!(trapped.wait().unwrap().prediction, prediction);
        let stats = aborter.join().unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.shutdown_rejected, 3);
        assert_eq!(stats.crashed_workers, 0);
    }

    /// A backend whose reads panic, to prove a dying replica is surfaced in
    /// the statistics and can never hang a ticket.
    #[derive(Debug)]
    struct PanickingBackend {
        inner: CrossbarBackend,
    }

    impl InferenceBackend for PanickingBackend {
        fn info(&self) -> BackendInfo {
            self.inner.info()
        }

        fn make_scratch(&self) -> EvalScratch {
            self.inner.make_scratch()
        }

        fn infer_into(
            &self,
            _sample: &[f64],
            _scratch: &mut EvalScratch,
        ) -> CoreResult<InferenceStep> {
            panic!("injected worker crash");
        }

        fn reprogram(&mut self) -> CoreResult<()> {
            self.inner.reprogram()
        }

        fn current_map_into(&self, out: &mut Vec<f64>) -> CoreResult<()> {
            self.inner.current_map_into(out)
        }
    }

    #[test]
    fn crashed_workers_are_reported_and_tickets_never_hang() {
        let (train, test) = split_for(908);
        let engine = FebimEngine::fit_with(
            &train,
            EngineConfig::febim_default(),
            |quantized, config| {
                Ok(PanickingBackend {
                    inner: CrossbarBackend::new(quantized, config)?,
                })
            },
        )
        .unwrap();
        let pool = ServingPool::new(
            vec![engine],
            ServingConfig::default()
                .with_max_batch(1)
                .with_max_wait_ticks(0),
        )
        .unwrap();
        let sample = test.sample(0).unwrap().to_vec();
        let first = pool.submit(sample.clone()).unwrap();
        // The worker dies on the first request; its ticket must resolve to
        // the typed shutdown error (the job's drop guard answers it).
        assert!(matches!(first.wait(), Err(ServingError::ShutDown)));
        // The dying worker's guard closes the intake, so the pool fails
        // fast instead of queueing work nothing will pop: a submit racing
        // the guard is either rejected outright or its queued request is
        // drained with the typed error — it can never hang.
        match pool.submit_blocking(sample) {
            Err(ServingError::ShutDown) => {}
            Ok(ticket) => assert!(matches!(ticket.wait(), Err(ServingError::ShutDown))),
            Err(other) => panic!("unexpected error: {other}"),
        }
        let stats = pool.shutdown();
        assert_eq!(stats.crashed_workers, 1);
        assert_eq!(stats.workers.len(), 1);
        assert!(stats.workers[0].crashed);
        assert_eq!(stats.workers[0].worker, 0);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn invalid_recalibration_policy_is_rejected() {
        let config = ServingConfig::default().with_recalibration(RecalibrationPolicy::new(0, 1e-3));
        assert!(matches!(
            config.validate(),
            Err(ServingError::InvalidConfig {
                name: "recalibration",
                ..
            })
        ));
        ServingConfig::default()
            .with_ticks_per_batch(100)
            .with_recalibration(RecalibrationPolicy::new(100, 1e-3))
            .validate()
            .unwrap();
    }

    /// Serving config for a pool whose replicas age fast enough that a
    /// drift check between batches finds work.
    fn drifting_serving(seed: u64) -> (FebimEngine<CrossbarBackend>, Vec<Vec<f64>>) {
        let (train, test) = split_for(seed);
        let config = EngineConfig::febim_default().with_non_idealities(
            febim_device::NonIdealityStack::ideal()
                .with_drift(febim_device::RetentionDrift::new(0.05, 100)),
        );
        let engine = FebimEngine::fit(&train, config).unwrap();
        (engine, samples_of(&test))
    }

    /// The tentpole serving guarantee: a pool whose replicas drift and
    /// recalibrate online answers every single ticket — zero drops, zero
    /// hangs — while the scheduler reprograms cells between batches.
    #[test]
    fn pool_recalibrates_between_batches_without_dropping_requests() {
        let (engine, samples) = drifting_serving(910);
        let config = ServingConfig::default()
            .with_max_batch(4)
            .with_ticks_per_batch(500)
            .with_recalibration(RecalibrationPolicy::new(500, 1e-3));
        let pool = ServingPool::replicate(&engine, 2, config).unwrap();
        let mut answered = 0u64;
        for _ in 0..4 {
            for answer in pool.serve(&samples) {
                let _ = answer.unwrap();
                answered += 1;
            }
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, answered);
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.shutdown_rejected, 0);
        assert_eq!(stats.crashed_workers, 0);
        assert!(
            stats.recalibrations >= 1,
            "drifting replicas must have recalibrated at least once"
        );
        assert!(stats.recalibration_pulses > 0);
        assert!(stats.recalibration_energy_j > 0.0);
        assert_eq!(stats.recalibration_failures, 0);
        // Per-worker telemetry reconciles with the pool totals.
        assert_eq!(
            stats.workers.iter().map(|w| w.recalibrations).sum::<u64>(),
            stats.recalibrations
        );
    }

    /// `request_recalibration` forces a check out of band even when the
    /// scheduled interval would never fire, and traffic flows through it.
    #[test]
    fn forced_recalibration_checks_out_of_band() {
        let (engine, samples) = drifting_serving(911);
        let config = ServingConfig::default()
            .with_ticks_per_batch(500)
            // An interval no run of this length ever reaches: only the
            // forced request can trigger the check.
            .with_recalibration(RecalibrationPolicy::new(u64::MAX, 1e-3));
        let pool = ServingPool::replicate(&engine, 1, config).unwrap();
        for answer in pool.serve(&samples) {
            let _ = answer.unwrap();
        }
        pool.request_recalibration();
        // Traffic after the request keeps flowing; the single worker honours
        // the request between these batches.
        for answer in pool.serve(&samples) {
            let _ = answer.unwrap();
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, 2 * samples.len() as u64);
        assert!(
            stats.recalibrations >= 1,
            "the forced check must have recalibrated the aged replica"
        );
        assert_eq!(stats.recalibration_failures, 0);
    }

    /// Recalibration requests reach parked workers (the idle wake path) and
    /// never wedge an idle pool.
    #[test]
    fn idle_pool_survives_recalibration_requests() {
        let (train, test) = split_for(912);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let config =
            ServingConfig::default().with_recalibration(RecalibrationPolicy::new(100, 1e-3));
        let pool = ServingPool::replicate(&engine, 2, config).unwrap();
        // Let the workers reach the parked state, then poke them twice.
        std::thread::sleep(std::time::Duration::from_millis(10));
        pool.request_recalibration();
        pool.request_recalibration();
        let samples = samples_of(&test);
        for answer in pool.serve(&samples) {
            let _ = answer.unwrap();
        }
        let stats = pool.shutdown();
        assert_eq!(stats.requests, samples.len() as u64);
        // Ideal devices never drift, so the checks found nothing to do.
        assert_eq!(stats.recalibrations, 0);
        assert_eq!(stats.recalibration_failures, 0);
    }

    #[test]
    fn shutdown_collects_per_worker_reports() {
        let (train, test) = split_for(907);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let pool = ServingPool::replicate(&engine, 3, ServingConfig::default()).unwrap();
        let samples = samples_of(&test);
        let answers = pool.serve(&samples);
        assert!(answers.iter().all(Result::is_ok));
        let stats = pool.shutdown();
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(
            stats.workers.iter().map(|w| w.requests).sum::<u64>(),
            samples.len() as u64
        );
        for (index, report) in stats.workers.iter().enumerate() {
            assert_eq!(report.worker, index);
        }
    }

    #[test]
    fn invalid_scrub_policy_is_rejected() {
        let config = ServingConfig::default().with_scrub(ScrubPolicy::new(0, 1e-3));
        assert!(matches!(
            config.validate(),
            Err(ServingError::InvalidConfig { name: "scrub", .. })
        ));
        ServingConfig::default()
            .with_scrub(ScrubPolicy::new(100, 1e-3))
            .validate()
            .unwrap();
    }

    #[test]
    fn wait_timeout_returns_the_ticket_and_later_collects_the_answer() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0);
        let (pool, gate, sample, prediction) = gated_pool(915, config);
        let ticket = pool.submit(sample).unwrap();
        gate.wait_entered(1);
        // The worker is trapped inside the read: the poll must time out and
        // hand the still-pending ticket back.
        let mut ticket = match ticket.wait_timeout(4) {
            Err(ticket) => ticket,
            Ok(answer) => panic!("trapped request answered early: {answer:?}"),
        };
        gate.open();
        // The same ticket keeps working after a timeout; collect via the
        // timed path too (covering its success branch).
        let outcome = loop {
            match ticket.wait_timeout(1 << 16) {
                Ok(answer) => break answer.unwrap(),
                Err(returned) => ticket = returned,
            }
        };
        assert_eq!(outcome.prediction, prediction);
        let stats = pool.shutdown();
        assert_eq!(stats.requests, 1);
    }

    /// Satellite pin: a ticket that timed out is still answered exactly once
    /// on shutdown — no completion leak (the abort drain answers it) and no
    /// double answer (the one publish is consumed by the one wait).
    #[test]
    fn timed_out_ticket_is_answered_exactly_once_on_abort() {
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(8);
        let (pool, gate, sample, prediction) = gated_pool(916, config);
        let trapped = pool.submit(sample.clone()).unwrap();
        gate.wait_entered(1);
        let queued = pool.submit(sample).unwrap();
        let queued = match queued.wait_timeout(8) {
            Err(ticket) => ticket,
            Ok(answer) => panic!("queued request answered early: {answer:?}"),
        };
        // The worker is trapped, so `abort` deterministically drains the
        // queued request with the typed shutdown error.
        let aborter = std::thread::spawn(move || pool.abort());
        assert!(matches!(queued.wait(), Err(ServingError::ShutDown)));
        gate.open();
        assert_eq!(trapped.wait().unwrap().prediction, prediction);
        let stats = aborter.join().unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.shutdown_rejected, 1);
    }

    /// A crossbar engine whose replica already took a permanent hit: the
    /// scheduled fault struck before the pool spawned, so the first scrub
    /// deterministically finds the stuck cell.
    fn struck_engine(seed: u64) -> (FebimEngine<CrossbarBackend>, Vec<Vec<f64>>, Dataset) {
        let (train, test) = split_for(seed);
        let mut engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        engine.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
            at_tick: 1,
            row: 1,
            column: 3,
            kind: FaultKind::StuckErased,
            permanent: true,
        }]));
        engine.advance_time(10);
        assert_eq!(
            engine.pending_faults(),
            0,
            "the chaos event must have struck"
        );
        let samples = samples_of(&test);
        (engine, samples, train)
    }

    /// Forces scrub checks until the pool publishes the expected health.
    fn await_quarantine(pool: &ServingPool, worker: usize) {
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while pool.worker_health()[worker] != ReplicaHealth::Quarantined {
            assert!(
                Instant::now() < deadline,
                "scrub never quarantined worker {worker}"
            );
            pool.request_scrub();
            std::thread::yield_now();
        }
    }

    /// Tentpole: an unrepairable replica is quarantined out of the rotation
    /// and every subsequent request is served by the surviving replica.
    #[test]
    fn quarantined_replica_stops_serving_and_the_survivor_takes_over() {
        let (struck, samples, train) = struck_engine(917);
        let healthy = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let config = ServingConfig::default()
            .with_max_batch(4)
            .with_scrub(ScrubPolicy::new(1_000_000, 1e-3));
        let pool = ServingPool::new(vec![struck, healthy], config).unwrap();
        await_quarantine(&pool, 0);
        assert_eq!(pool.serving_replicas(), 1);
        for answer in pool.serve(&samples) {
            let outcome = answer.unwrap();
            assert_eq!(outcome.worker, 1, "quarantined replica must not serve");
        }
        let stats = pool.shutdown();
        assert_eq!(stats.quarantined_workers, 1);
        assert!(stats.workers[0].quarantined);
        assert!(!stats.workers[1].quarantined);
        assert!(stats.health_transitions >= 1);
        assert!(stats.scrubs >= 1);
        assert!(stats.faults_detected >= 1);
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.fallback_served, 0);
    }

    /// Tentpole: with every physical replica quarantined the pool degrades
    /// gracefully — requests are answered through the exact software twin
    /// instead of erroring or hanging.
    #[test]
    fn fully_quarantined_pool_degrades_to_exact_software_fallback() {
        let (struck, samples, train) = struck_engine(918);
        let config = ServingConfig::default()
            .with_max_batch(4)
            .with_scrub(ScrubPolicy::new(1_000_000, 1e-3));
        let pool = ServingPool::new(vec![struck], config).unwrap();
        await_quarantine(&pool, 0);
        assert_eq!(pool.serving_replicas(), 0);
        let software = FebimEngine::fit_software(&train, EngineConfig::febim_default()).unwrap();
        for (answer, sample) in pool.serve(&samples).into_iter().zip(&samples) {
            let outcome = answer.unwrap();
            assert_eq!(outcome.prediction, software.predict(sample).unwrap());
        }
        let stats = pool.shutdown();
        assert_eq!(stats.quarantined_workers, 1);
        assert_eq!(stats.fallback_served, samples.len() as u64);
        assert_eq!(stats.requests, samples.len() as u64);
        assert_eq!(stats.failed_requests, 0);
    }

    /// A backend for failover tests: optionally gated (like [`GatedBackend`])
    /// and optionally failing every read with a typed error.
    #[derive(Debug)]
    struct FailingBackend {
        inner: CrossbarBackend,
        fail: bool,
        gate: Option<Arc<Gate>>,
    }

    impl InferenceBackend for FailingBackend {
        fn info(&self) -> BackendInfo {
            self.inner.info()
        }

        fn make_scratch(&self) -> EvalScratch {
            self.inner.make_scratch()
        }

        fn infer_into(
            &self,
            sample: &[f64],
            scratch: &mut EvalScratch,
        ) -> CoreResult<InferenceStep> {
            if let Some(gate) = &self.gate {
                gate.enter_and_wait();
            }
            if self.fail {
                return Err(CoreError::NotProgrammed);
            }
            self.inner.infer_into(sample, scratch)
        }

        fn reprogram(&mut self) -> CoreResult<()> {
            self.inner.reprogram()
        }

        fn current_map_into(&self, out: &mut Vec<f64>) -> CoreResult<()> {
            self.inner.current_map_into(out)
        }
    }

    /// Satellite pin: a request that fails on one replica is retried on a
    /// surviving one instead of surfacing the error. Both workers are gated
    /// on their reads and the gate only opens once each holds one request,
    /// so exactly one request deterministically lands on the failing
    /// replica and must fail over.
    #[test]
    fn per_sample_failures_fail_over_to_the_surviving_replica() {
        let (train, test) = split_for(919);
        let gate = Gate::new();
        let build = |fail: bool, gate: Option<Arc<Gate>>| {
            FebimEngine::fit_with(
                &train,
                EngineConfig::febim_default(),
                move |quantized, config| {
                    Ok(FailingBackend {
                        inner: CrossbarBackend::new(quantized, config)?,
                        fail,
                        gate,
                    })
                },
            )
            .unwrap()
        };
        let failing = build(true, Some(Arc::clone(&gate)));
        let healthy = build(false, Some(Arc::clone(&gate)));
        let prediction = FebimEngine::fit(&train, EngineConfig::febim_default())
            .unwrap()
            .predict(test.sample(0).unwrap())
            .unwrap();
        let config = ServingConfig::default()
            .with_max_batch(1)
            .with_max_wait_ticks(0)
            .with_queue_depth(8);
        let pool = ServingPool::new(vec![failing, healthy], config).unwrap();
        let sample = test.sample(0).unwrap().to_vec();
        let first = pool.submit(sample.clone()).unwrap();
        let second = pool.submit(sample).unwrap();
        // Wait until each worker is trapped inside a read holding one of
        // the two requests (a worker never parks while work is admitted, so
        // both must pop), then release them: the failing worker's request
        // has nowhere to go but the survivor.
        gate.wait_entered(2);
        gate.open();
        let first = first.wait().unwrap();
        let second = second.wait().unwrap();
        for outcome in [&first, &second] {
            assert_eq!(outcome.prediction, prediction);
            assert_eq!(outcome.worker, 1, "answers must come from the survivor");
        }
        let stats = pool.shutdown();
        assert_eq!(stats.failed_requests, 0);
        assert!(
            stats.failovers >= 1,
            "at least one request must have failed over, got {stats:?}"
        );
        assert_eq!(stats.workers[1].failovers, 0);
    }

    #[test]
    fn routed_errors_display() {
        assert!(ServingError::ModelUnavailable { model: 42 }
            .to_string()
            .contains("42"));
        assert!(ServingError::WorkerSpawn {
            reason: "no threads left".into()
        }
        .to_string()
        .contains("no threads left"));
    }

    /// Tentpole acceptance: a routed pool hosting three tenants routes each
    /// request by model id and answers bit-identically to each tenant's own
    /// single-tenant engine.
    #[test]
    fn routed_pool_serves_tenants_bit_identically_to_their_own_engines() {
        let seeds = [910u64, 911, 912];
        let models = [11u64, 22, 33];
        let mut engines = Vec::new();
        let mut references = Vec::new();
        for seed in seeds {
            let (train, test) = split_for(seed);
            let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
            let samples = samples_of(&test);
            let mut scratch = engine.make_scratch();
            let sequential: Vec<InferenceStep> = samples
                .iter()
                .map(|sample| engine.infer_into(sample, &mut scratch).unwrap())
                .collect();
            engines.push(engine);
            references.push((samples, sequential));
        }
        let mut engines = engines.into_iter();
        let banks = vec![
            vec![
                (models[0], engines.next().unwrap()),
                (models[1], engines.next().unwrap()),
            ],
            vec![(models[2], engines.next().unwrap())],
        ];
        let pool =
            ServingPool::new_routed(banks, ServingConfig::default().with_max_batch(4)).unwrap();
        assert_eq!(pool.route_of(models[0]), Some(0));
        assert_eq!(pool.route_of(models[1]), Some(0));
        assert_eq!(pool.route_of(models[2]), Some(1));
        assert!(matches!(
            pool.submit_routed(99, vec![0.0; 4]),
            Err(ServingError::ModelUnavailable { model: 99 })
        ));
        for (model, (samples, sequential)) in models.iter().zip(&references) {
            let answers = pool.serve_model(*model, samples);
            for (answer, step) in answers.iter().zip(sequential) {
                let outcome = answer.as_ref().unwrap();
                assert_eq!(outcome.prediction, step.prediction);
                assert_eq!(outcome.tie_broken, step.tie_broken);
                assert_eq!(outcome.delay, step.delay);
                assert_eq!(outcome.energy, step.energy);
            }
        }
        let stats = pool.shutdown();
        let expected: u64 = references.iter().map(|(s, _)| s.len() as u64).sum();
        assert_eq!(stats.requests, expected);
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.unrouted, 0);
        assert_eq!(stats.swaps, 0);
    }

    #[test]
    fn duplicate_model_ids_across_banks_are_rejected() {
        let (train, _) = split_for(913);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let banks = vec![vec![(7u64, engine.clone())], vec![(7u64, engine)]];
        assert!(matches!(
            ServingPool::new_routed(banks, ServingConfig::default()),
            Err(ServingError::InvalidConfig { name: "banks", .. })
        ));
    }

    /// Satellite pin: a hot swap on one bank completes with real erase and
    /// programming costs, zero tickets of the *other* bank's tenant are
    /// dropped or errored across it, and the installed tenant then serves
    /// bit-identically to its freshly programmed engine.
    #[test]
    fn hot_swap_evicts_installs_and_never_stalls_other_tenants() {
        let (train_a, _) = split_for(914);
        let (train_b, test_b) = split_for(915);
        let (train_c, test_c) = split_for(916);
        let config = EngineConfig::febim_default();
        let shape = TileShape::new(2, 24).unwrap();
        let tenant_a = FebimEngine::fit_tiled(&train_a, config.clone(), shape).unwrap();
        let tenant_b = FebimEngine::fit_tiled(&train_b, config.clone(), shape).unwrap();
        let tenant_c = FebimEngine::fit_tiled(&train_c, config, shape).unwrap();
        let samples_b = samples_of(&test_b);
        let samples_c = samples_of(&test_c);
        let mut scratch = tenant_c.make_scratch();
        let sequential_c: Vec<InferenceStep> = samples_c
            .iter()
            .map(|sample| tenant_c.infer_into(sample, &mut scratch).unwrap())
            .collect();
        let pool = ServingPool::new_routed(
            vec![vec![(1u64, tenant_a)], vec![(2u64, tenant_b)]],
            ServingConfig::default().with_max_batch(4),
        )
        .unwrap();
        // Tenant B's traffic brackets the swap on bank 0: every ticket must
        // be answered, none dropped or errored.
        let before: Vec<Ticket> = samples_b
            .iter()
            .map(|sample| pool.submit_routed_blocking(2, sample.clone()).unwrap())
            .collect();
        let swap_ticket = pool.post_swap(0, vec![1u64], Some((3u64, tenant_c.clone())));
        let after: Vec<Ticket> = samples_b
            .iter()
            .map(|sample| pool.submit_routed_blocking(2, sample.clone()).unwrap())
            .collect();
        let swap = swap_ticket.wait().unwrap();
        assert_eq!(swap.worker, 0);
        assert_eq!(swap.evicted, vec![1u64]);
        assert_eq!(swap.installed, Some(3));
        assert!(swap.erase.pulses > 0, "erase not priced: {swap:?}");
        assert!(swap.erase.energy_j > 0.0);
        assert!(swap.program.pulses > 0, "program not priced: {swap:?}");
        assert!(swap.program.energy_j > 0.0);
        for ticket in before.into_iter().chain(after) {
            assert!(
                ticket.wait().is_ok(),
                "tenant B request dropped during the swap"
            );
        }
        // The evicted tenant stops routing; the installed one serves
        // bit-identically to its freshly programmed engine.
        assert!(matches!(
            pool.submit_routed(1, samples_b[0].clone()),
            Err(ServingError::ModelUnavailable { model: 1 })
        ));
        assert_eq!(pool.route_of(1), None);
        assert_eq!(pool.route_of(3), Some(0));
        let answers = pool.serve_model(3, &samples_c);
        for (answer, step) in answers.iter().zip(&sequential_c) {
            let outcome = answer.as_ref().unwrap();
            assert_eq!(outcome.prediction, step.prediction);
            assert_eq!(outcome.tie_broken, step.tie_broken);
            assert_eq!(outcome.delay, step.delay);
            assert_eq!(outcome.energy, step.energy);
        }
        let stats = pool.shutdown();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.workers[0].swaps, 1);
        assert!(stats.swap_pulses > 0);
        assert!(stats.swap_energy_j > 0.0);
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.unrouted, 0);
    }

    /// A swap left pending at shutdown resolves to the typed shutdown error
    /// instead of hanging its ticket.
    #[test]
    fn pending_swap_at_shutdown_answers_its_ticket() {
        let (train, _) = split_for(918);
        let engine = FebimEngine::fit_tiled(
            &train,
            EngineConfig::febim_default(),
            TileShape::new(2, 24).unwrap(),
        )
        .unwrap();
        let pool =
            ServingPool::new_routed(vec![vec![(1u64, engine.clone())]], ServingConfig::default())
                .unwrap();
        let swapped_out = pool.shutdown();
        assert_eq!(swapped_out.swaps, 0);
        // Fresh pool: post, shut down immediately; the race between the
        // worker servicing the swap and the close is fine either way — the
        // ticket must resolve.
        let pool =
            ServingPool::new_routed(vec![vec![(2u64, engine.clone())]], ServingConfig::default())
                .unwrap();
        let ticket = pool.post_swap(0, vec![2u64], Some((4u64, engine)));
        drop(pool);
        match ticket.wait() {
            Ok(report) => assert_eq!(report.installed, Some(4)),
            Err(err) => assert!(matches!(err, ServingError::ShutDown)),
        }
    }

    /// Regression: a failed worker-thread spawn used to panic the pool
    /// constructor (`.expect("spawn serving worker")`) — on the serving hot
    /// path that tore down the whole process. It must surface as the typed
    /// [`ServingError::WorkerSpawn`] with the already-spawned workers
    /// joined, not panic.
    #[test]
    fn worker_spawn_failure_is_a_typed_error_not_a_panic() {
        let (train, _) = split_for(917);
        let engine = FebimEngine::fit(&train, EngineConfig::febim_default()).unwrap();
        let mut spawned = 0usize;
        let mut spawner = |name: String, body: WorkerBody| {
            if spawned >= 1 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "resource temporarily unavailable",
                ));
            }
            spawned += 1;
            default_spawner(name, body)
        };
        let result = ServingPool::new_inner(
            vec![engine.clone(), engine],
            ServingConfig::default(),
            &mut spawner,
        );
        match result {
            Err(ServingError::WorkerSpawn { reason }) => {
                assert!(reason.contains("unavailable"), "reason: {reason}");
            }
            other => panic!("expected WorkerSpawn error, got {other:?}"),
        }
        assert_eq!(spawned, 1);
    }
}
