//! Engine configuration.

use serde::{Deserialize, Serialize};

use febim_crossbar::ProgrammingMode;
use febim_device::{FeFetParams, NonIdealityStack, VariationModel};
use febim_quant::{Encoding, QuantConfig};

use crate::errors::{CoreError, Result};

/// Full configuration of a FeBiM engine instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Probability quantization configuration (`Q_f`, `Q_l`, truncation).
    pub quant: QuantConfig,
    /// FeFET device parameters.
    pub device: FeFetParams,
    /// Threshold-voltage variation applied when the crossbar is programmed.
    pub variation: VariationModel,
    /// Time-varying and spatial non-idealities of the physical arrays (wire
    /// IR drop, retention drift, read disturb). The default is the ideal
    /// stack, whose reads are bit-identical to a stack-free build.
    #[serde(default)]
    pub non_idealities: NonIdealityStack,
    /// How cells are programmed (ideal polarization vs. full pulse trains).
    pub programming_mode: ProgrammingMode,
    /// How quantized log-likelihoods map onto crossbar columns: the paper's
    /// one-hot layout (one column per bin), or bit-plane packing (several
    /// bin digits share one multi-level column, read back with a shift-add
    /// merge). The default is one-hot.
    #[serde(default)]
    pub encoding: Encoding,
    /// Whether to emit a prior column even when the prior is uniform.
    pub force_prior_column: bool,
    /// RNG seed used for variation sampling.
    pub variation_seed: u64,
}

impl EngineConfig {
    /// The paper's iris operating point: `Q_f = 4`, `Q_l = 2`, no device
    /// variation, ideal programming.
    pub fn febim_default() -> Self {
        Self {
            quant: QuantConfig::febim_optimal(),
            device: FeFetParams::febim_calibrated(),
            variation: VariationModel::ideal(),
            non_idealities: NonIdealityStack::ideal(),
            programming_mode: ProgrammingMode::Ideal,
            encoding: Encoding::OneHot,
            force_prior_column: false,
            variation_seed: 0,
        }
    }

    /// Returns a copy with a different column encoding.
    pub fn with_encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Returns a copy with a different quantization configuration.
    pub fn with_quant(mut self, quant: QuantConfig) -> Self {
        self.quant = quant;
        self
    }

    /// Returns a copy with the given device variation and seed.
    pub fn with_variation(mut self, variation: VariationModel, seed: u64) -> Self {
        self.variation = variation;
        self.variation_seed = seed;
        self
    }

    /// Returns a copy using full pulse-train programming.
    pub fn with_pulse_programming(mut self) -> Self {
        self.programming_mode = ProgrammingMode::PulseTrain;
        self
    }

    /// Returns a copy with the given non-ideality stack (wire IR drop,
    /// retention drift, read disturb).
    pub fn with_non_idealities(mut self, stack: NonIdealityStack) -> Self {
        self.non_idealities = stack;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the quantization or device
    /// parameters fail their own validation.
    pub fn validate(&self) -> Result<()> {
        self.quant
            .validate()
            .map_err(|err| CoreError::InvalidConfig {
                name: "quant",
                reason: err.to_string(),
            })?;
        self.device
            .validate()
            .map_err(|err| CoreError::InvalidConfig {
                name: "device",
                reason: err.to_string(),
            })?;
        self.non_idealities
            .validate()
            .map_err(|err| CoreError::InvalidConfig {
                name: "non_idealities",
                reason: err.to_string(),
            })?;
        self.encoding
            .validate(self.quant.likelihood_bits)
            .map_err(|err| CoreError::InvalidConfig {
                name: "encoding",
                reason: err.to_string(),
            })?;
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::febim_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        EngineConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_methods_compose() {
        let config = EngineConfig::febim_default()
            .with_quant(QuantConfig::new(3, 3))
            .with_variation(VariationModel::from_millivolts(30.0), 7)
            .with_pulse_programming();
        assert_eq!(config.quant.feature_bits, 3);
        assert!((config.variation.sigma_millivolts() - 30.0).abs() < 1e-9);
        assert_eq!(config.variation_seed, 7);
        assert_eq!(config.programming_mode, ProgrammingMode::PulseTrain);
    }

    #[test]
    fn invalid_quant_rejected() {
        let config = EngineConfig::febim_default().with_quant(QuantConfig::new(0, 2));
        assert!(matches!(
            config.validate(),
            Err(CoreError::InvalidConfig { name: "quant", .. })
        ));
    }

    #[test]
    fn invalid_non_ideality_stack_rejected() {
        use febim_device::RetentionDrift;
        let config = EngineConfig::febim_default().with_non_idealities(
            NonIdealityStack::ideal().with_drift(RetentionDrift {
                volts_per_decade: f64::NAN,
                time_scale_ticks: 100,
            }),
        );
        assert!(matches!(
            config.validate(),
            Err(CoreError::InvalidConfig {
                name: "non_idealities",
                ..
            })
        ));
    }

    #[test]
    fn non_ideality_builder_composes() {
        use febim_device::{ReadDisturb, RetentionDrift, WireResistance};
        let stack = NonIdealityStack::ideal()
            .with_wire(WireResistance::uniform(2.0))
            .with_drift(RetentionDrift::new(0.01, 100))
            .with_disturb(ReadDisturb::new(50, 0.001));
        let config = EngineConfig::febim_default().with_non_idealities(stack);
        assert_eq!(config.non_idealities, stack);
        assert!(!config.non_idealities.is_ideal());
        config.validate().unwrap();
        // The default stack stays ideal.
        assert!(EngineConfig::febim_default().non_idealities.is_ideal());
    }

    #[test]
    fn encoding_defaults_to_one_hot_and_validates_bit_budget() {
        let config = EngineConfig::febim_default();
        assert_eq!(config.encoding, Encoding::OneHot);
        let packed = config.clone().with_encoding(Encoding::BitPlane { bits: 4 });
        packed.validate().unwrap();
        // Q_l = 2 digits cannot fit into a 1-bit cell.
        let starved = config.clone().with_encoding(Encoding::BitPlane { bits: 1 });
        assert!(matches!(
            starved.validate(),
            Err(CoreError::InvalidConfig {
                name: "encoding",
                ..
            })
        ));
        // More than eight bits per cell is out of the device envelope.
        let oversized = config.with_encoding(Encoding::BitPlane { bits: 9 });
        assert!(matches!(
            oversized.validate(),
            Err(CoreError::InvalidConfig {
                name: "encoding",
                ..
            })
        ));
    }

    #[test]
    fn invalid_device_rejected() {
        let mut config = EngineConfig::febim_default();
        config.device.k_sat = -1.0;
        assert!(matches!(
            config.validate(),
            Err(CoreError::InvalidConfig { name: "device", .. })
        ));
    }
}
