//! Area, density and efficiency metrics (the FeBiM row of Table 1).

use serde::{Deserialize, Serialize};

use crate::compiler::CrossbarProgram;
use crate::engine::EvaluationReport;
use crate::errors::{CoreError, Result};

/// Parameters of the analytical area/efficiency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Area of one 1-FeFET cell at the 45 nm node, in µm² (the paper lays out
    /// a 2×2 array based on the 2-FeFET/cell design of \[41\] and estimates
    /// 0.076 µm² per cell).
    pub cell_area_um2: f64,
    /// Bits stored per cell (2 for the iris operating point, `Q_l`).
    pub bits_per_cell: f64,
    /// Fixed peripheral energy per inference, in joules, covering the clock
    /// circuitry and the write/input buffer that the behavioural circuit
    /// model does not capture. Calibrated so the iris-GNBC average inference
    /// energy lands at the paper's 17.2 fJ.
    pub peripheral_energy: f64,
}

impl MetricsConfig {
    /// The calibration used for the Table 1 comparison.
    pub fn febim_calibrated() -> Self {
        Self {
            cell_area_um2: 0.076,
            bits_per_cell: 2.0,
            peripheral_energy: 14.0e-15,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for non-positive area or bit
    /// count, or a negative peripheral energy.
    pub fn validate(&self) -> Result<()> {
        if !(self.cell_area_um2 > 0.0 && self.cell_area_um2.is_finite()) {
            return Err(CoreError::InvalidConfig {
                name: "cell_area_um2",
                reason: "cell area must be positive".to_string(),
            });
        }
        if !(self.bits_per_cell > 0.0 && self.bits_per_cell.is_finite()) {
            return Err(CoreError::InvalidConfig {
                name: "bits_per_cell",
                reason: "bits per cell must be positive".to_string(),
            });
        }
        if self.peripheral_energy < 0.0 {
            return Err(CoreError::InvalidConfig {
                name: "peripheral_energy",
                reason: "peripheral energy cannot be negative".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self::febim_calibrated()
    }
}

/// The derived performance metrics of one FeBiM deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformanceMetrics {
    /// Total array area in mm².
    pub array_area_mm2: f64,
    /// Storage density in Mb/mm².
    pub storage_density_mb_per_mm2: f64,
    /// Equivalent operations performed per inference.
    pub ops_per_inference: f64,
    /// Computing density in million operations per mm².
    pub computing_density_mo_per_mm2: f64,
    /// Average energy per inference in joules (crossbar + sensing +
    /// peripherals).
    pub energy_per_inference: f64,
    /// Computing efficiency in TOPS/W.
    pub efficiency_tops_per_watt: f64,
    /// Clock cycles per inference (FeBiM needs exactly one).
    pub clock_cycles_per_inference: f64,
}

/// Equivalent operation count of one FeBiM inference.
///
/// Every wordline accumulates the currents of the activated columns
/// (`activated_columns - 1` additions per event) and the WTA performs one
/// global maximum search, matching the paper's 10-operation count for the
/// 3-class, 4-feature iris classifier.
pub fn ops_per_inference(events: usize, activated_columns: usize) -> f64 {
    let additions_per_event = activated_columns.saturating_sub(1) as f64;
    events as f64 * additions_per_event + 1.0
}

/// Computes the FeBiM performance metrics from a compiled program and an
/// evaluation report.
///
/// # Errors
///
/// Propagates [`MetricsConfig::validate`] errors.
pub fn performance_metrics(
    program: &CrossbarProgram,
    report: &EvaluationReport,
    config: &MetricsConfig,
) -> Result<PerformanceMetrics> {
    config.validate()?;
    let layout = program.layout();
    let cells = layout.cells() as f64;
    let array_area_um2 = cells * config.cell_area_um2;
    let array_area_mm2 = array_area_um2 * 1e-6;
    // bits/µm² numerically equals Mb/mm² (1 µm² = 1e-6 mm², 1 Mb = 1e6 bit).
    let storage_density = config.bits_per_cell / config.cell_area_um2;
    let ops = ops_per_inference(layout.events(), layout.activated_columns());
    let computing_density = ops / array_area_um2;
    let energy = report.mean_energy + config.peripheral_energy;
    let efficiency = ops / energy / 1e12;
    Ok(PerformanceMetrics {
        array_area_mm2,
        storage_density_mb_per_mm2: storage_density,
        ops_per_inference: ops,
        computing_density_mo_per_mm2: computing_density,
        energy_per_inference: energy,
        efficiency_tops_per_watt: efficiency,
        clock_cycles_per_inference: 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::FebimEngine;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;

    fn iris_metrics() -> PerformanceMetrics {
        let dataset = iris_like(50).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(50)).unwrap();
        let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        let report = engine.evaluate(&split.test).unwrap();
        performance_metrics(
            engine.program(),
            &report,
            &MetricsConfig::febim_calibrated(),
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(MetricsConfig::febim_calibrated().validate().is_ok());
        let mut c = MetricsConfig::febim_calibrated();
        c.cell_area_um2 = 0.0;
        assert!(c.validate().is_err());
        let mut c = MetricsConfig::febim_calibrated();
        c.bits_per_cell = -1.0;
        assert!(c.validate().is_err());
        let mut c = MetricsConfig::febim_calibrated();
        c.peripheral_energy = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ops_count_matches_the_paper_for_iris() {
        // 3 events, 4 activated likelihood columns (uniform prior omitted):
        // 3 * 3 additions + 1 WTA operation = 10 operations.
        assert!((ops_per_inference(3, 4) - 10.0).abs() < 1e-12);
        assert!((ops_per_inference(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storage_density_matches_table_1() {
        let metrics = iris_metrics();
        assert!(
            (metrics.storage_density_mb_per_mm2 - 26.32).abs() < 0.05,
            "density {}",
            metrics.storage_density_mb_per_mm2
        );
    }

    #[test]
    fn computing_density_matches_table_1() {
        let metrics = iris_metrics();
        // Paper: 0.69 MO/mm² for the 3×64 iris array.
        assert!(
            (metrics.computing_density_mo_per_mm2 - 0.69).abs() < 0.05,
            "computing density {}",
            metrics.computing_density_mo_per_mm2
        );
    }

    #[test]
    fn energy_and_efficiency_are_in_the_table_1_band() {
        let metrics = iris_metrics();
        // Paper: 17.2 fJ per inference and 581.40 TOPS/W. The behavioural
        // circuit model reproduces the order of magnitude.
        assert!(
            metrics.energy_per_inference > 10e-15 && metrics.energy_per_inference < 30e-15,
            "energy {}",
            metrics.energy_per_inference
        );
        assert!(
            metrics.efficiency_tops_per_watt > 300.0 && metrics.efficiency_tops_per_watt < 900.0,
            "efficiency {}",
            metrics.efficiency_tops_per_watt
        );
        assert_eq!(metrics.clock_cycles_per_inference, 1.0);
        assert!(metrics.array_area_mm2 > 0.0);
    }
}
