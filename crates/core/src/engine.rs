//! The FeBiM inference engine: a trained + quantized Bayesian model wired to
//! a pluggable [`InferenceBackend`] — the exact software reference, the
//! paper's single crossbar array, or a tiled multi-array fabric — exposed
//! through one classifier-style API.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use febim_circuit::{DelayBreakdown, InferenceEnergy, SensingChain, TileGeometry};
use febim_crossbar::{
    Activation, CrossbarArray, FaultSchedule, RefreshOutcome, ScrubOutcome, TileGrid, TileShape,
};

use febim_bayes::GaussianNaiveBayes;
use febim_data::Dataset;
use febim_quant::QuantizedGnbc;

use crate::backend::{
    BackendInfo, BatchTelemetry, CrossbarBackend, InferenceBackend, SoftwareBackend,
    TiledFabricBackend,
};
use crate::compiler::{CrossbarProgram, TiledProgram};
use crate::config::EngineConfig;
use crate::errors::{CoreError, Result};

/// Result of one in-memory inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceOutcome {
    /// Predicted class (the wordline selected by the WTA circuit).
    pub prediction: usize,
    /// Accumulated wordline currents, in amperes (unnormalized log-posterior
    /// scores for the software backend).
    pub wordline_currents: Vec<f64>,
    /// Worst-case delay estimate of this inference.
    pub delay: DelayBreakdown,
    /// Energy estimate of this inference.
    pub energy: InferenceEnergy,
    /// Whether two or more wordlines carried exactly the same current and the
    /// tie was broken deterministically (lowest index wins).
    pub tie_broken: bool,
}

/// Result of one scratch-based inference (the allocation-free variant of
/// [`InferenceOutcome`]): the wordline currents stay in the caller's
/// [`EvalScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceStep {
    /// Predicted class (the wordline selected by the WTA circuit).
    pub prediction: usize,
    /// Worst-case delay estimate of this inference.
    pub delay: DelayBreakdown,
    /// Energy estimate of this inference.
    pub energy: InferenceEnergy,
    /// Whether the winner was decided by deterministic tie-breaking.
    pub tie_broken: bool,
}

/// Reusable buffers for the batched inference path: discretized evidence,
/// the activation pattern, the accumulated wordline currents, the mirrored
/// currents of the sensing chain, and (for the tiled fabric) the per-tile
/// read geometries. One scratch serves any number of sequential
/// [`FebimEngine::infer_into`] calls without allocating.
///
/// Create with [`FebimEngine::make_scratch`]; a scratch can be reused across
/// engines and backends that share a geometry (buffers are resized on
/// demand).
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    pub(crate) evidence: Vec<usize>,
    pub(crate) activation: Option<Activation>,
    pub(crate) currents: Vec<f64>,
    pub(crate) mirrored: Vec<f64>,
    /// Per-tile occupied geometry + activated-bitline count of the current
    /// read (tiled fabric backend only, grid row-major).
    pub(crate) tiles: Vec<TileGeometry>,
    /// Activated-bitline count per tile column of the current read (tiled
    /// fabric backend only).
    pub(crate) tile_activated: Vec<usize>,
    /// One activation per in-flight read of a batched inference (physical
    /// backends only).
    pub(crate) batch_activations: Vec<Activation>,
    /// Wordline currents of a whole batched read group, read-major
    /// (`batch_currents[read * rows + row]`).
    pub(crate) batch_currents: Vec<f64>,
    /// Packed-column evidence of the current read (bit-plane encoding only):
    /// the discretized bin of each feature mapped to its packed column.
    pub(crate) packed_evidence: Vec<usize>,
    /// Per-activated-column digit bit offsets of a packed read (bit-plane
    /// encoding only; concatenated read-major for batched reads).
    pub(crate) bit_offsets: Vec<u8>,
    /// Per-plane integer partial sums of a packed read, row-major
    /// (`plane_sums[row * planes + plane]`; read-major on top for batches).
    pub(crate) plane_sums: Vec<f64>,
    /// Digitized per-column cell levels of one packed wordline read.
    pub(crate) level_scratch: Vec<usize>,
}

impl EvalScratch {
    /// The per-class scores of the most recent [`FebimEngine::infer_into`]
    /// call: accumulated wordline currents in amperes for the physical
    /// backends, unnormalized log posteriors for the software backend.
    pub fn wordline_currents(&self) -> &[f64] {
        &self.currents
    }
}

/// Aggregated evaluation of the engine on a labelled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Classification accuracy.
    pub accuracy: f64,
    /// Per-sample predictions, in dataset order.
    pub predictions: Vec<usize>,
    /// Mean inference delay in seconds.
    pub mean_delay: f64,
    /// Mean total inference energy in joules.
    pub mean_energy: f64,
    /// Mean array (drivers + conduction) energy in joules.
    pub mean_array_energy: f64,
    /// Mean sensing (mirrors + WTA) energy in joules.
    pub mean_sensing_energy: f64,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Number of inferences whose winner was decided by tie-breaking.
    pub ties: usize,
}

/// The FeBiM engine, generic over its [`InferenceBackend`].
///
/// The default backend is the paper's single-array crossbar
/// ([`CrossbarBackend`]); [`FebimEngine::fit_tiled`] builds a tiled-fabric
/// engine and [`FebimEngine::fit_software`] the exact software reference.
/// All dataset-level APIs (`infer`, `evaluate`, Monte-Carlo entry points)
/// are backend-agnostic.
#[derive(Debug, Clone)]
pub struct FebimEngine<B: InferenceBackend = CrossbarBackend> {
    config: EngineConfig,
    model: Arc<GaussianNaiveBayes>,
    quantized: Arc<QuantizedGnbc>,
    backend: B,
}

/// Trains + quantizes a model and hands the quantized tables to `build`.
/// Engine and backend share the model and the quantized tables by `Arc`, so
/// building an engine never deep-clones either (the Monte-Carlo sweeps build
/// one engine per epoch).
fn build_engine<B: InferenceBackend>(
    model: Arc<GaussianNaiveBayes>,
    train_data: &Dataset,
    config: EngineConfig,
    build: impl FnOnce(Arc<QuantizedGnbc>, &EngineConfig) -> Result<B>,
) -> Result<FebimEngine<B>> {
    config.validate()?;
    let quantized = Arc::new(QuantizedGnbc::quantize(&model, train_data, config.quant)?);
    let backend = build(Arc::clone(&quantized), &config)?;
    Ok(FebimEngine {
        config,
        model,
        quantized,
        backend,
    })
}

impl FebimEngine<CrossbarBackend> {
    /// Trains a GNBC on the training data, quantizes it, compiles it to a
    /// crossbar program and programs a (possibly variation-affected) array.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, quantization, compilation and
    /// programming errors.
    pub fn fit(train_data: &Dataset, config: EngineConfig) -> Result<Self> {
        let model = GaussianNaiveBayes::fit(train_data)?;
        Self::from_trained(model, train_data, config)
    }

    /// Builds a single-array engine from an already-trained GNBC.
    ///
    /// # Errors
    ///
    /// Propagates configuration, quantization, compilation and programming
    /// errors.
    pub fn from_trained(
        model: GaussianNaiveBayes,
        train_data: &Dataset,
        config: EngineConfig,
    ) -> Result<Self> {
        build_engine(Arc::new(model), train_data, config, CrossbarBackend::new)
    }

    /// The compiled crossbar program.
    pub fn program(&self) -> &CrossbarProgram {
        self.backend.program()
    }

    /// The programmed crossbar array.
    pub fn array(&self) -> &CrossbarArray {
        self.backend.array()
    }

    /// The sensing chain (mirrors, WTA, delay and energy models).
    pub fn sensing(&self) -> &SensingChain {
        self.backend.sensing()
    }

    /// Replaces the sensing chain (e.g. to study mirror mismatch).
    pub fn set_sensing(&mut self, sensing: SensingChain) {
        self.backend.set_sensing(sensing);
    }

    /// Read-current map of the programmed crossbar (the data behind the
    /// Fig. 8(b) state map), in amperes.
    ///
    /// This is the allocating convenience wrapper around
    /// [`FebimEngine::current_map_into`], which reuses an [`EvalScratch`]
    /// buffer and reads through the conductance cache.
    pub fn current_map(&self) -> Vec<Vec<f64>> {
        let mut scratch = EvalScratch::default();
        let flat = self
            .current_map_into(&mut scratch)
            .expect("crossbar backend has a state map");
        flat.chunks(self.array().layout().columns())
            .map(<[f64]>::to_vec)
            .collect()
    }
}

impl FebimEngine<TiledFabricBackend> {
    /// Trains a GNBC and deploys it across a grid of `shape`-sized crossbar
    /// tiles (row-wise class sharding × column-wise evidence splitting).
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, quantization, tile-planning and
    /// programming errors.
    pub fn fit_tiled(train_data: &Dataset, config: EngineConfig, shape: TileShape) -> Result<Self> {
        let model = GaussianNaiveBayes::fit(train_data)?;
        Self::from_trained_tiled(model, train_data, config, shape)
    }

    /// Builds a tiled-fabric engine from an already-trained GNBC.
    ///
    /// # Errors
    ///
    /// Same as [`FebimEngine::fit_tiled`] minus training.
    pub fn from_trained_tiled(
        model: GaussianNaiveBayes,
        train_data: &Dataset,
        config: EngineConfig,
        shape: TileShape,
    ) -> Result<Self> {
        build_engine(Arc::new(model), train_data, config, |quantized, config| {
            TiledFabricBackend::new(quantized, config, shape)
        })
    }

    /// The compiled tiled program (levels + tile plan).
    pub fn tiled_program(&self) -> &TiledProgram {
        self.backend.tiled_program()
    }

    /// The programmed tile grid.
    pub fn grid(&self) -> &TileGrid {
        self.backend.grid()
    }

    /// The sensing chain (mirrors, WTA, delay and energy models).
    pub fn sensing(&self) -> &SensingChain {
        self.backend.sensing()
    }

    /// Replaces the sensing chain (e.g. to study mirror mismatch).
    pub fn set_sensing(&mut self, sensing: SensingChain) {
        self.backend.set_sensing(sensing);
    }

    /// Read-current map of the programmed fabric in global row-major order,
    /// in amperes (allocating wrapper around
    /// [`FebimEngine::current_map_into`]).
    pub fn current_map(&self) -> Vec<Vec<f64>> {
        let mut scratch = EvalScratch::default();
        let flat = self
            .current_map_into(&mut scratch)
            .expect("fabric backend has a state map");
        flat.chunks(self.grid().layout().columns())
            .map(<[f64]>::to_vec)
            .collect()
    }
}

impl FebimEngine<SoftwareBackend> {
    /// Trains a GNBC and serves it through the exact FP64 software backend
    /// (no quantization error, no devices, zero delay/energy) — the ground
    /// truth the physical backends are compared against.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training and quantization errors (the model
    /// is still quantized so [`FebimEngine::quantized`] stays comparable
    /// across backends).
    pub fn fit_software(train_data: &Dataset, config: EngineConfig) -> Result<Self> {
        let model = Arc::new(GaussianNaiveBayes::fit(train_data)?);
        build_engine(Arc::clone(&model), train_data, config, move |_, _| {
            Ok(SoftwareBackend::new(model))
        })
    }
}

impl<B: InferenceBackend> FebimEngine<B> {
    /// Builds an engine around a **custom** backend implementation: the
    /// model is trained and quantized exactly as for the built-in backends,
    /// then `build` receives the shared quantized tables and the validated
    /// configuration and returns the backend. This is the extension point
    /// for out-of-crate [`InferenceBackend`] implementations (instrumented
    /// wrappers, alternative physics) so they can ride the full engine and
    /// serving APIs.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training and quantization errors, plus
    /// whatever `build` returns.
    pub fn fit_with(
        train_data: &Dataset,
        config: EngineConfig,
        build: impl FnOnce(Arc<QuantizedGnbc>, &EngineConfig) -> Result<B>,
    ) -> Result<Self> {
        let model = GaussianNaiveBayes::fit(train_data)?;
        build_engine(Arc::new(model), train_data, config, build)
    }

    /// Rebuilds an engine from **already materialized** parts — the
    /// snapshot-restore path: a trained model and its quantized tables
    /// (e.g. deserialized from a registry snapshot) are handed straight to
    /// `build` without retraining or requantizing, so no training data is
    /// needed. The caller owns the contract that `quantized` was produced
    /// from `model` under `config.quant`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors and whatever `build`
    /// returns.
    pub fn from_parts(
        model: Arc<GaussianNaiveBayes>,
        quantized: Arc<QuantizedGnbc>,
        config: EngineConfig,
        build: impl FnOnce(Arc<QuantizedGnbc>, &EngineConfig) -> Result<B>,
    ) -> Result<Self> {
        config.validate()?;
        let backend = build(Arc::clone(&quantized), &config)?;
        Ok(Self {
            config,
            model,
            quantized,
            backend,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The FP64 software model the engine was built from.
    pub fn software_model(&self) -> &GaussianNaiveBayes {
        self.model.as_ref()
    }

    /// The quantized model.
    pub fn quantized(&self) -> &QuantizedGnbc {
        self.quantized.as_ref()
    }

    /// Borrow the inference backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Descriptive metadata of the active backend.
    pub fn backend_info(&self) -> BackendInfo {
        self.backend.info()
    }

    /// Re-programs the backend's physical state from the compiled model and
    /// re-applies the configured device variation (fresh sample from the
    /// configured seed). A no-op for the software backend.
    ///
    /// # Errors
    ///
    /// Propagates programming errors.
    pub fn reprogram(&mut self) -> Result<()> {
        self.backend.reprogram()
    }

    /// Preisach-priced cost of programming this engine's compiled model
    /// onto erased cells (see [`InferenceBackend::program_cost`]); `None`
    /// for backends without a physical program.
    pub fn program_cost(&self) -> Option<crate::backend::SwapCost> {
        self.backend.program_cost()
    }

    /// Erases the backend's programmed region back to the blank state and
    /// returns the erase cost (see [`InferenceBackend::decommission`]);
    /// `Ok(None)` for backends without physical state.
    ///
    /// # Errors
    ///
    /// Propagates erase/programming errors.
    pub fn decommission(&mut self) -> Result<Option<crate::backend::SwapCost>> {
        self.backend.decommission()
    }

    /// The trained model behind this engine, by shared handle (the registry
    /// snapshots it without deep-cloning).
    pub(crate) fn shared_model(&self) -> Arc<GaussianNaiveBayes> {
        Arc::clone(&self.model)
    }

    /// The quantized tables behind this engine, by shared handle.
    pub(crate) fn shared_quantized(&self) -> Arc<QuantizedGnbc> {
        Arc::clone(&self.quantized)
    }

    /// Advances the backend's physical clock by `ticks`, aging every cell
    /// under the configured retention-drift model. A no-op for the software
    /// backend.
    pub fn advance_time(&mut self, ticks: u64) {
        self.backend.advance_time(ticks);
    }

    /// The backend's physical clock in ticks (0 for the software backend).
    pub fn clock(&self) -> u64 {
        self.backend.clock()
    }

    /// Monotone version counter of the backend's physical state (see
    /// [`InferenceBackend::state_epoch`]).
    pub fn state_epoch(&self) -> u64 {
        self.backend.state_epoch()
    }

    /// The largest effective threshold-voltage shift (drift plus disturb,
    /// in volts) currently degrading any programmed cell.
    pub fn worst_effective_shift(&self) -> f64 {
        self.backend.worst_effective_shift()
    }

    /// Reprograms every cell whose effective threshold shift exceeds
    /// `max_vth_shift` volts back to its target level and returns the work
    /// done. A zero-work no-op for the software backend.
    ///
    /// # Errors
    ///
    /// Propagates programming errors.
    pub fn recalibrate(&mut self, max_vth_shift: f64) -> Result<RefreshOutcome> {
        self.backend.recalibrate(max_vth_shift)
    }

    /// BIST-style scrub pass over the backend's cells: read-verifies every
    /// programmed cell against its target signature, repairs transient
    /// defects in place and — on the tiled fabric — remaps rows with stuck
    /// cells onto spare physical rows. A clean no-op for the software
    /// backend.
    ///
    /// # Errors
    ///
    /// Propagates programming errors from repair writes.
    pub fn scrub(&mut self, max_vth_shift: f64) -> Result<ScrubOutcome> {
        self.backend.scrub(max_vth_shift)
    }

    /// Installs a deterministic chaos schedule on the backend: events strike
    /// as [`FebimEngine::advance_time`] moves the clock past their tick. A
    /// no-op for the software backend.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.backend.set_fault_schedule(schedule);
    }

    /// Scheduled chaos events not yet delivered.
    pub fn pending_faults(&self) -> usize {
        self.backend.pending_faults()
    }

    /// Builds the exact software-reference twin of this engine: the same
    /// trained model, quantized tables and configuration, served through a
    /// [`SoftwareBackend`]. This is the graceful-degradation fallback a
    /// serving pool switches to when every physical replica has been
    /// quarantined.
    pub fn software_fallback(&self) -> FebimEngine<SoftwareBackend> {
        FebimEngine {
            config: self.config.clone(),
            model: Arc::clone(&self.model),
            quantized: Arc::clone(&self.quantized),
            backend: SoftwareBackend::new(Arc::clone(&self.model)),
        }
    }

    /// Creates a scratch sized for this engine's geometry, for use with
    /// [`FebimEngine::infer_into`].
    pub fn make_scratch(&self) -> EvalScratch {
        self.backend.make_scratch()
    }

    /// Runs one inference for a continuous sample, reusing the caller's
    /// scratch buffers: after the first call on a given geometry the hot
    /// path performs no heap allocation. The per-class scores remain
    /// available through [`EvalScratch::wordline_currents`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DatasetMismatch`] for a sample with the wrong
    /// number of features and propagates backend errors.
    pub fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> Result<InferenceStep> {
        if sample.len() != self.quantized.n_features() {
            return Err(CoreError::DatasetMismatch {
                expected_features: self.quantized.n_features(),
                found_features: sample.len(),
            });
        }
        self.backend.infer_into(sample, scratch)
    }

    /// Runs one inference for every sample of a batch, reusing the caller's
    /// scratch and writing one [`InferenceStep`] per sample into `steps`
    /// (cleared first). Per-sample results are **bit-identical** to
    /// sequential [`FebimEngine::infer_into`] calls on the same backend; the
    /// returned [`BatchTelemetry`] prices the whole group, with backends
    /// that support grouped reads (the crossbar and the tiled fabric)
    /// amortizing array settling and wordline drivers across the batch.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DatasetMismatch`] if any sample has the wrong
    /// number of features (before any inference runs) and propagates backend
    /// errors.
    pub fn infer_batch_into(
        &self,
        samples: &[Vec<f64>],
        scratch: &mut EvalScratch,
        steps: &mut Vec<InferenceStep>,
    ) -> Result<BatchTelemetry> {
        for sample in samples {
            if sample.len() != self.quantized.n_features() {
                return Err(CoreError::DatasetMismatch {
                    expected_features: self.quantized.n_features(),
                    found_features: sample.len(),
                });
            }
        }
        self.backend.infer_batch_into(samples, scratch, steps)
    }

    /// Runs one inference for a continuous sample.
    ///
    /// This is the allocating convenience wrapper around
    /// [`FebimEngine::infer_into`]; batched callers should create one
    /// [`EvalScratch`] and call `infer_into` directly.
    ///
    /// # Errors
    ///
    /// Same as [`FebimEngine::infer_into`].
    pub fn infer(&self, sample: &[f64]) -> Result<InferenceOutcome> {
        let mut scratch = self.make_scratch();
        let step = self.infer_into(sample, &mut scratch)?;
        Ok(InferenceOutcome {
            prediction: step.prediction,
            wordline_currents: scratch.currents,
            delay: step.delay,
            energy: step.energy,
            tie_broken: step.tie_broken,
        })
    }

    /// Predicts the class of one sample (discarding the circuit telemetry).
    ///
    /// # Errors
    ///
    /// Propagates [`FebimEngine::infer`] errors.
    pub fn predict(&self, sample: &[f64]) -> Result<usize> {
        Ok(self.infer(sample)?.prediction)
    }

    /// Evaluates the engine on a labelled dataset.
    ///
    /// The whole batch runs through one [`EvalScratch`], so per-sample work
    /// allocates nothing beyond the returned prediction vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DatasetMismatch`] when the dataset has the wrong
    /// number of features and propagates inference errors.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<EvaluationReport> {
        if dataset.n_features() != self.quantized.n_features() {
            return Err(CoreError::DatasetMismatch {
                expected_features: self.quantized.n_features(),
                found_features: dataset.n_features(),
            });
        }
        let mut scratch = self.make_scratch();
        let mut predictions = Vec::with_capacity(dataset.n_samples());
        let mut correct = 0usize;
        let mut ties = 0usize;
        let mut delay_sum = 0.0;
        let mut energy_sum = 0.0;
        let mut array_energy_sum = 0.0;
        let mut sensing_energy_sum = 0.0;
        for (sample, label) in dataset.iter() {
            let step = self.infer_into(sample, &mut scratch)?;
            if step.prediction == label {
                correct += 1;
            }
            if step.tie_broken {
                ties += 1;
            }
            delay_sum += step.delay.total();
            energy_sum += step.energy.total();
            array_energy_sum += step.energy.array;
            sensing_energy_sum += step.energy.sensing;
            predictions.push(step.prediction);
        }
        let samples = dataset.n_samples();
        Ok(EvaluationReport {
            accuracy: correct as f64 / samples as f64,
            predictions,
            mean_delay: delay_sum / samples as f64,
            mean_energy: energy_sum / samples as f64,
            mean_array_energy: array_energy_sum / samples as f64,
            mean_sensing_energy: sensing_energy_sum / samples as f64,
            samples,
            ties,
        })
    }

    /// Read-current state map of the backend's cells, flattened row-major
    /// into the scratch's score buffer (no fresh allocation after the first
    /// call on a given geometry).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedOperation`] for backends without
    /// physical state (the software backend).
    pub fn current_map_into<'a>(&self, scratch: &'a mut EvalScratch) -> Result<&'a [f64]> {
        self.backend.current_map_into(&mut scratch.currents)?;
        Ok(&scratch.currents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;
    use febim_device::VariationModel;

    fn iris_engine() -> (FebimEngine, Dataset, Dataset) {
        let dataset = iris_like(40).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(40)).unwrap();
        let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        (engine, split.train, split.test)
    }

    #[test]
    fn engine_builds_the_paper_geometry() {
        let (engine, _, _) = iris_engine();
        assert_eq!(engine.array().layout().rows(), 3);
        assert_eq!(engine.array().layout().columns(), 64);
        assert_eq!(engine.program().state_count(), 4);
        assert!(engine.quantized().has_uniform_prior());
        let info = engine.backend_info();
        assert_eq!(info.events, 3);
        assert_eq!(info.tiles, 1);
    }

    #[test]
    fn in_memory_accuracy_tracks_the_software_baseline() {
        let (engine, _, test) = iris_engine();
        let software = engine.software_model().score(&test).unwrap();
        let report = engine.evaluate(&test).unwrap();
        assert!(
            software - report.accuracy < 0.06,
            "software {software} in-memory {}",
            report.accuracy
        );
        assert!(
            report.accuracy > 0.85,
            "in-memory accuracy {}",
            report.accuracy
        );
        assert_eq!(report.predictions.len(), test.n_samples());
        assert_eq!(report.samples, test.n_samples());
    }

    #[test]
    fn inference_reports_positive_delay_and_energy() {
        let (engine, _, test) = iris_engine();
        let outcome = engine.infer(test.sample(0).unwrap()).unwrap();
        assert!(outcome.delay.total() > 0.0);
        assert!(outcome.energy.total() > 0.0);
        assert_eq!(outcome.wordline_currents.len(), 3);
        // Wordline currents sit in the microampere regime expected from the
        // 0.1 µA – 1.0 µA per-cell window with four activated columns.
        for &current in &outcome.wordline_currents {
            assert!(current > 0.1e-6 && current < 8.0e-6, "current {current}");
        }
    }

    #[test]
    fn predictions_match_infer_outcomes() {
        let (engine, _, test) = iris_engine();
        for index in 0..5 {
            let sample = test.sample(index).unwrap();
            assert_eq!(
                engine.predict(sample).unwrap(),
                engine.infer(sample).unwrap().prediction
            );
        }
    }

    #[test]
    fn scratch_based_inference_matches_the_allocating_path() {
        let (engine, _, test) = iris_engine();
        let mut scratch = engine.make_scratch();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let outcome = engine.infer(sample).unwrap();
            let step = engine.infer_into(sample, &mut scratch).unwrap();
            assert_eq!(step.prediction, outcome.prediction);
            assert_eq!(step.tie_broken, outcome.tie_broken);
            assert_eq!(step.delay, outcome.delay);
            assert_eq!(step.energy, outcome.energy);
            assert_eq!(scratch.wordline_currents(), &outcome.wordline_currents[..]);
        }
    }

    #[test]
    fn a_default_scratch_is_usable() {
        let (engine, _, test) = iris_engine();
        let sample = test.sample(0).unwrap();
        let mut scratch = EvalScratch::default();
        let step = engine.infer_into(sample, &mut scratch).unwrap();
        assert_eq!(step.prediction, engine.predict(sample).unwrap());
    }

    #[test]
    fn infer_into_rejects_wrong_feature_count() {
        let (engine, _, _) = iris_engine();
        let mut scratch = engine.make_scratch();
        assert!(matches!(
            engine.infer_into(&[1.0, 2.0], &mut scratch),
            Err(CoreError::DatasetMismatch { .. })
        ));
    }

    #[test]
    fn wrong_feature_count_rejected() {
        let (engine, _, _) = iris_engine();
        assert!(matches!(
            engine.infer(&[1.0, 2.0]),
            Err(CoreError::DatasetMismatch { .. })
        ));
        let wine = febim_data::synthetic::wine_like(2).unwrap();
        assert!(engine.evaluate(&wine).is_err());
    }

    #[test]
    fn variation_degrades_accuracy_gracefully() {
        let dataset = iris_like(41).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(41)).unwrap();
        let ideal = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        let noisy = FebimEngine::fit(
            &split.train,
            EngineConfig::febim_default().with_variation(VariationModel::from_millivolts(45.0), 9),
        )
        .unwrap();
        let ideal_accuracy = ideal.evaluate(&split.test).unwrap().accuracy;
        let noisy_accuracy = noisy.evaluate(&split.test).unwrap().accuracy;
        // Fig. 8(c): the mean drop at 45 mV is only a few percent; allow a
        // generous bound for a single seed.
        assert!(noisy_accuracy > ideal_accuracy - 0.25);
        assert!(noisy_accuracy > 0.6);
    }

    #[test]
    fn pulse_programming_matches_ideal_closely() {
        let dataset = iris_like(42).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).unwrap();
        let ideal = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        let pulsed = FebimEngine::fit(
            &split.train,
            EngineConfig::febim_default().with_pulse_programming(),
        )
        .unwrap();
        let a = ideal.evaluate(&split.test).unwrap().accuracy;
        let b = pulsed.evaluate(&split.test).unwrap().accuracy;
        assert!((a - b).abs() < 0.08, "ideal {a} pulsed {b}");
    }

    #[test]
    fn current_map_matches_programmed_geometry() {
        let (engine, _, _) = iris_engine();
        let map = engine.current_map();
        assert_eq!(map.len(), 3);
        assert_eq!(map[0].len(), 64);
        // Every programmed cell reads inside the mapped window (with a little
        // slack for quantizer boundary states).
        for row in &map {
            for &current in row {
                assert!(current > 0.05e-6 && current < 1.2e-6, "current {current}");
            }
        }
        // The scratch-reusing path sees the same flattened values.
        let mut scratch = engine.make_scratch();
        let flat = engine.current_map_into(&mut scratch).unwrap();
        assert_eq!(flat.len(), 3 * 64);
        for (index, &value) in flat.iter().enumerate() {
            assert_eq!(value, map[index / 64][index % 64]);
        }
    }

    #[test]
    fn reprogram_is_idempotent_for_ideal_devices() {
        let (mut engine, _, test) = iris_engine();
        let before = engine.evaluate(&test).unwrap().accuracy;
        engine.reprogram().unwrap();
        let after = engine.evaluate(&test).unwrap().accuracy;
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn tiled_engine_matches_the_monolithic_engine() {
        let dataset = iris_like(43).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(43)).unwrap();
        let config = EngineConfig::febim_default();
        let monolithic = FebimEngine::fit(&split.train, config.clone()).unwrap();
        let tiled =
            FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 48).unwrap()).unwrap();
        assert!(tiled.tiled_program().plan().is_multi_tile());
        assert_eq!(tiled.backend_info().tiles, 4);
        let mono_report = monolithic.evaluate(&split.test).unwrap();
        let tiled_report = tiled.evaluate(&split.test).unwrap();
        assert_eq!(mono_report.predictions, tiled_report.predictions);
        assert_eq!(mono_report.accuracy, tiled_report.accuracy);
        assert_eq!(mono_report.ties, tiled_report.ties);
        // Same cells, same programmed currents.
        assert_eq!(monolithic.current_map(), tiled.current_map());
    }

    #[test]
    fn software_engine_is_the_exact_model() {
        let dataset = iris_like(44).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(44)).unwrap();
        let engine =
            FebimEngine::fit_software(&split.train, EngineConfig::febim_default()).unwrap();
        let report = engine.evaluate(&split.test).unwrap();
        let software = engine.software_model().score(&split.test).unwrap();
        assert_eq!(report.accuracy, software);
        assert_eq!(report.mean_delay, 0.0);
        assert_eq!(report.mean_energy, 0.0);
        let mut scratch = engine.make_scratch();
        assert!(matches!(
            engine.current_map_into(&mut scratch),
            Err(CoreError::UnsupportedOperation { .. })
        ));
    }
}
