//! The FeBiM in-memory inference engine: a programmed FeFET crossbar plus the
//! current-mirror / WTA sensing chain, exposed through a classifier-style API.

use serde::{Deserialize, Serialize};

use febim_bayes::{argmax, GaussianNaiveBayes};
use febim_circuit::{CircuitError, DelayBreakdown, InferenceEnergy, SensingChain};
use febim_crossbar::{Activation, CrossbarArray};
use febim_data::Dataset;
use febim_device::{LevelProgrammer, VariationModel};
use febim_quant::QuantizedGnbc;

use crate::compiler::{compile, CrossbarProgram};
use crate::config::EngineConfig;
use crate::errors::{CoreError, Result};

/// Result of one in-memory inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceOutcome {
    /// Predicted class (the wordline selected by the WTA circuit).
    pub prediction: usize,
    /// Accumulated wordline currents, in amperes.
    pub wordline_currents: Vec<f64>,
    /// Worst-case delay estimate of this inference.
    pub delay: DelayBreakdown,
    /// Energy estimate of this inference.
    pub energy: InferenceEnergy,
    /// Whether two or more wordlines carried exactly the same current and the
    /// tie was broken deterministically (lowest index wins).
    pub tie_broken: bool,
}

/// Result of one scratch-based inference (the allocation-free variant of
/// [`InferenceOutcome`]): the wordline currents stay in the caller's
/// [`EvalScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceStep {
    /// Predicted class (the wordline selected by the WTA circuit).
    pub prediction: usize,
    /// Worst-case delay estimate of this inference.
    pub delay: DelayBreakdown,
    /// Energy estimate of this inference.
    pub energy: InferenceEnergy,
    /// Whether the winner was decided by deterministic tie-breaking.
    pub tie_broken: bool,
}

/// Reusable buffers for the batched inference path: discretized evidence,
/// the activation pattern, the accumulated wordline currents and the
/// mirrored currents of the sensing chain. One scratch serves any number of
/// sequential [`FebimEngine::infer_into`] calls without allocating.
///
/// Create with [`FebimEngine::make_scratch`]; a scratch can be reused across
/// engines that share a crossbar geometry (buffers are resized on demand).
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    evidence: Vec<usize>,
    activation: Option<Activation>,
    currents: Vec<f64>,
    mirrored: Vec<f64>,
}

impl EvalScratch {
    /// The wordline currents of the most recent [`FebimEngine::infer_into`]
    /// call, in amperes.
    pub fn wordline_currents(&self) -> &[f64] {
        &self.currents
    }
}

/// Aggregated evaluation of the engine on a labelled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Classification accuracy.
    pub accuracy: f64,
    /// Per-sample predictions, in dataset order.
    pub predictions: Vec<usize>,
    /// Mean inference delay in seconds.
    pub mean_delay: f64,
    /// Mean total inference energy in joules.
    pub mean_energy: f64,
    /// Mean array (drivers + conduction) energy in joules.
    pub mean_array_energy: f64,
    /// Mean sensing (mirrors + WTA) energy in joules.
    pub mean_sensing_energy: f64,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Number of inferences whose winner was decided by tie-breaking.
    pub ties: usize,
}

/// The FeBiM engine.
#[derive(Debug, Clone)]
pub struct FebimEngine {
    config: EngineConfig,
    model: GaussianNaiveBayes,
    quantized: QuantizedGnbc,
    program: CrossbarProgram,
    array: CrossbarArray,
    sensing: SensingChain,
}

impl FebimEngine {
    /// Trains a GNBC on the training data, quantizes it, compiles it to a
    /// crossbar program and programs a (possibly variation-affected) array.
    ///
    /// # Errors
    ///
    /// Propagates configuration, training, quantization, compilation and
    /// programming errors.
    pub fn fit(train_data: &Dataset, config: EngineConfig) -> Result<Self> {
        let model = GaussianNaiveBayes::fit(train_data)?;
        Self::from_trained(model, train_data, config)
    }

    /// Builds an engine from an already-trained GNBC.
    ///
    /// # Errors
    ///
    /// Propagates configuration, quantization, compilation and programming
    /// errors.
    pub fn from_trained(
        model: GaussianNaiveBayes,
        train_data: &Dataset,
        config: EngineConfig,
    ) -> Result<Self> {
        config.validate()?;
        let quantized = QuantizedGnbc::quantize(&model, train_data, config.quant)?;
        let program = compile(&quantized, config.force_prior_column)?;
        let programmer = LevelProgrammer::new(
            config.device.clone(),
            program.state_count(),
            febim_device::programming::DEFAULT_MIN_READ_CURRENT,
            febim_device::programming::DEFAULT_MAX_READ_CURRENT,
        )?;
        let array = CrossbarArray::new(*program.layout(), programmer);
        let mut engine = Self {
            config,
            model,
            quantized,
            program,
            array,
            sensing: SensingChain::febim_calibrated(),
        };
        engine.reprogram()?;
        Ok(engine)
    }

    /// Re-programs the crossbar from the compiled program and re-applies the
    /// configured device variation (fresh sample from the configured seed).
    ///
    /// # Errors
    ///
    /// Propagates programming errors.
    pub fn reprogram(&mut self) -> Result<()> {
        self.array
            .program_matrix(self.program.levels(), self.config.programming_mode)?;
        if self.config.variation.sigma_vth > 0.0 {
            let mut rng = VariationModel::seeded_rng(self.config.variation_seed);
            self.array.apply_variation(&self.config.variation, &mut rng);
        }
        Ok(())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The FP64 software model the engine was built from.
    pub fn software_model(&self) -> &GaussianNaiveBayes {
        &self.model
    }

    /// The quantized model.
    pub fn quantized(&self) -> &QuantizedGnbc {
        &self.quantized
    }

    /// The compiled crossbar program.
    pub fn program(&self) -> &CrossbarProgram {
        &self.program
    }

    /// The programmed crossbar array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// The sensing chain (mirrors, WTA, delay and energy models).
    pub fn sensing(&self) -> &SensingChain {
        &self.sensing
    }

    /// Replaces the sensing chain (e.g. to study mirror mismatch).
    pub fn set_sensing(&mut self, sensing: SensingChain) {
        self.sensing = sensing;
    }

    /// Creates a scratch sized for this engine's geometry, for use with
    /// [`FebimEngine::infer_into`].
    pub fn make_scratch(&self) -> EvalScratch {
        EvalScratch {
            evidence: Vec::with_capacity(self.quantized.n_features()),
            activation: Some(Activation::empty(self.array.layout())),
            currents: Vec::with_capacity(self.array.layout().rows()),
            mirrored: Vec::with_capacity(self.array.layout().rows()),
        }
    }

    /// Runs one in-memory inference for a continuous sample, reusing the
    /// caller's scratch buffers: after the first call on a given geometry the
    /// hot path performs no heap allocation. The accumulated wordline
    /// currents remain available through
    /// [`EvalScratch::wordline_currents`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DatasetMismatch`] for a sample with the wrong
    /// number of features and propagates crossbar/circuit errors.
    pub fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> Result<InferenceStep> {
        if sample.len() != self.quantized.n_features() {
            return Err(CoreError::DatasetMismatch {
                expected_features: self.quantized.n_features(),
                found_features: sample.len(),
            });
        }
        self.quantized
            .discretize_sample_into(sample, &mut scratch.evidence)?;
        let activation = scratch
            .activation
            .get_or_insert_with(|| Activation::empty(self.array.layout()));
        activation.set_observation(self.array.layout(), &scratch.evidence)?;
        self.array
            .wordline_currents_into(activation, &mut scratch.currents)?;
        match self
            .sensing
            .sense_into(&scratch.currents, activation.len(), &mut scratch.mirrored)
        {
            Ok(readout) => Ok(InferenceStep {
                prediction: readout.winner,
                delay: readout.delay,
                energy: readout.energy,
                tie_broken: false,
            }),
            Err(CircuitError::AmbiguousWinner { .. }) => {
                // Quantized posteriors can tie exactly; physical mismatch
                // would break the tie, we do it deterministically instead.
                let winner = argmax(&scratch.currents).expect("at least one wordline");
                let delay = self.sensing.delay_model().worst_case(
                    scratch.currents.len(),
                    activation.len().max(1),
                    self.sensing.wta(),
                    self.sensing.mirror().gain,
                )?;
                // `sense_into` leaves the scratch unspecified on error, so
                // re-mirror the currents before pricing the energy.
                self.sensing
                    .mirror()
                    .copy_all_into(&scratch.currents, &mut scratch.mirrored)?;
                let energy = self.sensing.energy_model().inference_with_mirrored(
                    &scratch.currents,
                    &scratch.mirrored,
                    activation.len(),
                    delay.total(),
                    self.sensing.mirror(),
                    self.sensing.wta(),
                )?;
                Ok(InferenceStep {
                    prediction: winner,
                    delay,
                    energy,
                    tie_broken: true,
                })
            }
            Err(err) => Err(err.into()),
        }
    }

    /// Runs one in-memory inference for a continuous sample.
    ///
    /// This is the allocating convenience wrapper around
    /// [`FebimEngine::infer_into`]; batched callers should create one
    /// [`EvalScratch`] and call `infer_into` directly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DatasetMismatch`] for a sample with the wrong
    /// number of features and propagates crossbar/circuit errors.
    pub fn infer(&self, sample: &[f64]) -> Result<InferenceOutcome> {
        let mut scratch = self.make_scratch();
        let step = self.infer_into(sample, &mut scratch)?;
        Ok(InferenceOutcome {
            prediction: step.prediction,
            wordline_currents: scratch.currents,
            delay: step.delay,
            energy: step.energy,
            tie_broken: step.tie_broken,
        })
    }

    /// Predicts the class of one sample (discarding the circuit telemetry).
    ///
    /// # Errors
    ///
    /// Propagates [`FebimEngine::infer`] errors.
    pub fn predict(&self, sample: &[f64]) -> Result<usize> {
        Ok(self.infer(sample)?.prediction)
    }

    /// Evaluates the engine on a labelled dataset.
    ///
    /// The whole batch runs through one [`EvalScratch`], so per-sample work
    /// allocates nothing beyond the returned prediction vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DatasetMismatch`] when the dataset has the wrong
    /// number of features and propagates inference errors.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<EvaluationReport> {
        if dataset.n_features() != self.quantized.n_features() {
            return Err(CoreError::DatasetMismatch {
                expected_features: self.quantized.n_features(),
                found_features: dataset.n_features(),
            });
        }
        let mut scratch = self.make_scratch();
        let mut predictions = Vec::with_capacity(dataset.n_samples());
        let mut correct = 0usize;
        let mut ties = 0usize;
        let mut delay_sum = 0.0;
        let mut energy_sum = 0.0;
        let mut array_energy_sum = 0.0;
        let mut sensing_energy_sum = 0.0;
        for (sample, label) in dataset.iter() {
            let step = self.infer_into(sample, &mut scratch)?;
            if step.prediction == label {
                correct += 1;
            }
            if step.tie_broken {
                ties += 1;
            }
            delay_sum += step.delay.total();
            energy_sum += step.energy.total();
            array_energy_sum += step.energy.array;
            sensing_energy_sum += step.energy.sensing;
            predictions.push(step.prediction);
        }
        let samples = dataset.n_samples();
        Ok(EvaluationReport {
            accuracy: correct as f64 / samples as f64,
            predictions,
            mean_delay: delay_sum / samples as f64,
            mean_energy: energy_sum / samples as f64,
            mean_array_energy: array_energy_sum / samples as f64,
            mean_sensing_energy: sensing_energy_sum / samples as f64,
            samples,
            ties,
        })
    }

    /// Read-current map of the programmed crossbar (the data behind the
    /// Fig. 8(b) state map), in amperes.
    pub fn current_map(&self) -> Vec<Vec<f64>> {
        self.array.current_map()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use febim_data::rng::seeded_rng;
    use febim_data::split::stratified_split;
    use febim_data::synthetic::iris_like;

    fn iris_engine() -> (FebimEngine, Dataset, Dataset) {
        let dataset = iris_like(40).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(40)).unwrap();
        let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        (engine, split.train, split.test)
    }

    #[test]
    fn engine_builds_the_paper_geometry() {
        let (engine, _, _) = iris_engine();
        assert_eq!(engine.array().layout().rows(), 3);
        assert_eq!(engine.array().layout().columns(), 64);
        assert_eq!(engine.program().state_count(), 4);
        assert!(engine.quantized().has_uniform_prior());
    }

    #[test]
    fn in_memory_accuracy_tracks_the_software_baseline() {
        let (engine, _, test) = iris_engine();
        let software = engine.software_model().score(&test).unwrap();
        let report = engine.evaluate(&test).unwrap();
        assert!(
            software - report.accuracy < 0.06,
            "software {software} in-memory {}",
            report.accuracy
        );
        assert!(
            report.accuracy > 0.85,
            "in-memory accuracy {}",
            report.accuracy
        );
        assert_eq!(report.predictions.len(), test.n_samples());
        assert_eq!(report.samples, test.n_samples());
    }

    #[test]
    fn inference_reports_positive_delay_and_energy() {
        let (engine, _, test) = iris_engine();
        let outcome = engine.infer(test.sample(0).unwrap()).unwrap();
        assert!(outcome.delay.total() > 0.0);
        assert!(outcome.energy.total() > 0.0);
        assert_eq!(outcome.wordline_currents.len(), 3);
        // Wordline currents sit in the microampere regime expected from the
        // 0.1 µA – 1.0 µA per-cell window with four activated columns.
        for &current in &outcome.wordline_currents {
            assert!(current > 0.1e-6 && current < 8.0e-6, "current {current}");
        }
    }

    #[test]
    fn predictions_match_infer_outcomes() {
        let (engine, _, test) = iris_engine();
        for index in 0..5 {
            let sample = test.sample(index).unwrap();
            assert_eq!(
                engine.predict(sample).unwrap(),
                engine.infer(sample).unwrap().prediction
            );
        }
    }

    #[test]
    fn scratch_based_inference_matches_the_allocating_path() {
        let (engine, _, test) = iris_engine();
        let mut scratch = engine.make_scratch();
        for index in 0..test.n_samples() {
            let sample = test.sample(index).unwrap();
            let outcome = engine.infer(sample).unwrap();
            let step = engine.infer_into(sample, &mut scratch).unwrap();
            assert_eq!(step.prediction, outcome.prediction);
            assert_eq!(step.tie_broken, outcome.tie_broken);
            assert_eq!(step.delay, outcome.delay);
            assert_eq!(step.energy, outcome.energy);
            assert_eq!(scratch.wordline_currents(), &outcome.wordline_currents[..]);
        }
    }

    #[test]
    fn a_default_scratch_is_usable() {
        let (engine, _, test) = iris_engine();
        let sample = test.sample(0).unwrap();
        let mut scratch = EvalScratch::default();
        let step = engine.infer_into(sample, &mut scratch).unwrap();
        assert_eq!(step.prediction, engine.predict(sample).unwrap());
    }

    #[test]
    fn infer_into_rejects_wrong_feature_count() {
        let (engine, _, _) = iris_engine();
        let mut scratch = engine.make_scratch();
        assert!(matches!(
            engine.infer_into(&[1.0, 2.0], &mut scratch),
            Err(CoreError::DatasetMismatch { .. })
        ));
    }

    #[test]
    fn wrong_feature_count_rejected() {
        let (engine, _, _) = iris_engine();
        assert!(matches!(
            engine.infer(&[1.0, 2.0]),
            Err(CoreError::DatasetMismatch { .. })
        ));
        let wine = febim_data::synthetic::wine_like(2).unwrap();
        assert!(engine.evaluate(&wine).is_err());
    }

    #[test]
    fn variation_degrades_accuracy_gracefully() {
        let dataset = iris_like(41).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(41)).unwrap();
        let ideal = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        let noisy = FebimEngine::fit(
            &split.train,
            EngineConfig::febim_default().with_variation(VariationModel::from_millivolts(45.0), 9),
        )
        .unwrap();
        let ideal_accuracy = ideal.evaluate(&split.test).unwrap().accuracy;
        let noisy_accuracy = noisy.evaluate(&split.test).unwrap().accuracy;
        // Fig. 8(c): the mean drop at 45 mV is only a few percent; allow a
        // generous bound for a single seed.
        assert!(noisy_accuracy > ideal_accuracy - 0.25);
        assert!(noisy_accuracy > 0.6);
    }

    #[test]
    fn pulse_programming_matches_ideal_closely() {
        let dataset = iris_like(42).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(42)).unwrap();
        let ideal = FebimEngine::fit(&split.train, EngineConfig::febim_default()).unwrap();
        let pulsed = FebimEngine::fit(
            &split.train,
            EngineConfig::febim_default().with_pulse_programming(),
        )
        .unwrap();
        let a = ideal.evaluate(&split.test).unwrap().accuracy;
        let b = pulsed.evaluate(&split.test).unwrap().accuracy;
        assert!((a - b).abs() < 0.08, "ideal {a} pulsed {b}");
    }

    #[test]
    fn current_map_matches_programmed_geometry() {
        let (engine, _, _) = iris_engine();
        let map = engine.current_map();
        assert_eq!(map.len(), 3);
        assert_eq!(map[0].len(), 64);
        // Every programmed cell reads inside the mapped window (with a little
        // slack for quantizer boundary states).
        for row in &map {
            for &current in row {
                assert!(current > 0.05e-6 && current < 1.2e-6, "current {current}");
            }
        }
    }

    #[test]
    fn reprogram_is_idempotent_for_ideal_devices() {
        let (mut engine, _, test) = iris_engine();
        let before = engine.evaluate(&test).unwrap().accuracy;
        engine.reprogram().unwrap();
        let after = engine.evaluate(&test).unwrap().accuracy;
        assert!((before - after).abs() < 1e-12);
    }
}
