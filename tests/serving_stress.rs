//! Multi-producer serving-pool stress matrix: N submitter threads hammer M
//! pool workers through the sharded lock-free rings, with randomized
//! inter-submit jitter and a busy-spinning backend to force queue
//! backpressure and cross-ring work stealing. The invariant under test is
//! **exactly-once accounting**: every admitted request is answered exactly
//! once — with its bit-correct prediction or with the typed
//! [`ServingError::ShutDown`] — across three exit paths:
//!
//! * normal drain (shutdown after all producers finish);
//! * mid-stream `abort` with a deep backlog of queued requests;
//! * a worker panicking mid-batch while the rest of the pool keeps serving.
//!
//! The instrumented backend counts every inference globally, so the normal
//! drain can additionally prove no request was inferred twice (no
//! double-pop from the rings) and none was dropped (no lost push).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rand::Rng;

use febim_suite::core::{EvalScratch, InferenceStep, Result as CoreResult};
use febim_suite::data::Dataset;
use febim_suite::prelude::*;

/// A crossbar backend instrumented for stress runs: counts every inference
/// across all replica clones, burns a configurable busy-spin per read (to
/// hold workers inside batches and force submitters into backpressure and
/// idle workers into stealing), and optionally panics on one specific
/// global call number.
#[derive(Debug, Clone)]
struct StressBackend {
    inner: CrossbarBackend,
    /// Inference calls observed across every clone of this backend.
    inferences: Arc<AtomicUsize>,
    /// Busy-spin iterations per inference — the service-time knob.
    spin: usize,
    /// Panic on this global call number (0 = never).
    panic_at: usize,
}

impl InferenceBackend for StressBackend {
    fn info(&self) -> BackendInfo {
        self.inner.info()
    }

    fn make_scratch(&self) -> EvalScratch {
        self.inner.make_scratch()
    }

    fn infer_into(&self, sample: &[f64], scratch: &mut EvalScratch) -> CoreResult<InferenceStep> {
        let call = self.inferences.fetch_add(1, Ordering::SeqCst) + 1;
        if self.panic_at != 0 && call == self.panic_at {
            panic!("injected stress crash at inference {call}");
        }
        for _ in 0..self.spin {
            std::hint::spin_loop();
        }
        self.inner.infer_into(sample, scratch)
    }

    fn reprogram(&mut self) -> CoreResult<()> {
        self.inner.reprogram()
    }

    fn current_map_into(&self, out: &mut Vec<f64>) -> CoreResult<()> {
        self.inner.current_map_into(out)
    }
}

struct StressRig {
    engine: FebimEngine<StressBackend>,
    inferences: Arc<AtomicUsize>,
    test: Dataset,
    /// Sequential reference prediction per test sample (from an identically
    /// trained plain crossbar engine, so the counter stays untouched).
    expected: Vec<usize>,
}

fn stress_rig(seed: u64, spin: usize, panic_at: usize) -> StressRig {
    let dataset = iris_like(seed).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).expect("split");
    let config = EngineConfig::febim_default();
    let inferences = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&inferences);
    let engine = FebimEngine::fit_with(&split.train, config.clone(), move |quantized, config| {
        Ok(StressBackend {
            inner: CrossbarBackend::new(quantized, config)?,
            inferences: counter,
            spin,
            panic_at,
        })
    })
    .expect("stress engine");
    let reference = FebimEngine::fit(&split.train, config).expect("reference engine");
    let expected: Vec<usize> = (0..split.test.n_samples())
        .map(|index| {
            reference
                .predict(split.test.sample(index).expect("sample"))
                .expect("reference prediction")
        })
        .collect();
    StressRig {
        engine,
        inferences,
        test: split.test,
        expected,
    }
}

/// One producer thread's contribution: submit `count` randomly chosen
/// requests through the blocking path with randomized jitter between
/// submissions, then wait every ticket and split the outcomes into
/// (correctly answered, shutdown-rejected) tallies.
fn produce_and_tally(
    pool: &ServingPool,
    test: &Dataset,
    expected: &[usize],
    producer_seed: u64,
    count: usize,
) -> (usize, usize) {
    let mut rng = seeded_rng(producer_seed);
    let mut pending: Vec<(usize, Ticket)> = Vec::with_capacity(count);
    for _ in 0..count {
        let index = rng.gen_range(0..test.n_samples());
        let sample = test.sample(index).expect("sample").to_vec();
        match pool.submit_blocking(sample) {
            Ok(ticket) => pending.push((index, ticket)),
            Err(ServingError::ShutDown) => break,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        // Randomized jitter: bursts from some producers, trickles from
        // others, so ring occupancies diverge and idle workers must steal.
        for _ in 0..rng.gen_range(0..400_usize) {
            std::hint::spin_loop();
        }
    }
    let mut ok = 0;
    let mut rejected = 0;
    for (index, ticket) in pending {
        match ticket.wait() {
            Ok(outcome) => {
                assert_eq!(
                    outcome.prediction, expected[index],
                    "served prediction diverged from the sequential reference"
                );
                ok += 1;
            }
            Err(ServingError::ShutDown) => rejected += 1,
            Err(other) => panic!("unexpected ticket error: {other}"),
        }
    }
    (ok, rejected)
}

/// Normal drain: every request is answered exactly once with the correct
/// prediction, and the global inference counter proves none was executed
/// twice (double-pop) or dropped (lost push).
#[test]
fn concurrent_producers_drain_exactly_once() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 60;
    let rig = stress_rig(3101, 200, 0);
    let pool = ServingPool::replicate(
        &rig.engine,
        3,
        ServingConfig::febim_default()
            .with_max_batch(8)
            .with_queue_depth(32),
    )
    .expect("pool");

    let (test, expected) = (&rig.test, &rig.expected[..]);
    let tallies: Vec<(usize, usize)> = std::thread::scope(|scope| {
        (0..PRODUCERS)
            .map(|producer| {
                let pool = &pool;
                scope.spawn(move || {
                    produce_and_tally(pool, test, expected, 9000 + producer as u64, PER_PRODUCER)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("producer thread"))
            .collect()
    });

    let ok: usize = tallies.iter().map(|(ok, _)| ok).sum();
    let rejected: usize = tallies.iter().map(|(_, rejected)| rejected).sum();
    assert_eq!(ok, PRODUCERS * PER_PRODUCER, "every request answered Ok");
    assert_eq!(rejected, 0, "nothing rejected on the healthy path");

    let stats = pool.shutdown();
    assert_eq!(stats.requests, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.shutdown_rejected, 0);
    assert_eq!(stats.crashed_workers, 0);
    assert_eq!(
        rig.inferences.load(Ordering::SeqCst),
        PRODUCERS * PER_PRODUCER,
        "each admitted request must be inferred exactly once"
    );
    // The latency telemetry covers the full stream on both clocks.
    assert_eq!(stats.queue_wait.count(), (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.end_to_end.count(), (PRODUCERS * PER_PRODUCER) as u64);
}

/// Mid-stream abort with a deep backlog: served and rejected tickets
/// partition the admitted stream exactly, and the pool's statistics agree
/// with the producers' own tallies.
#[test]
fn abort_partitions_every_ticket_between_served_and_rejected() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 40;
    // Slow service (deep busy-spin) keeps a large backlog queued when the
    // last producer finishes submitting, so `abort` has real work to drain.
    let rig = stress_rig(3102, 400_000, 0);
    let pool = ServingPool::replicate(
        &rig.engine,
        2,
        ServingConfig::febim_default()
            .with_max_batch(4)
            .with_queue_depth(64),
    )
    .expect("pool");

    // Producers submit concurrently (blocking on backpressure) and hand
    // their tickets back un-waited.
    let test = &rig.test;
    let pending: Vec<(usize, Ticket)> = std::thread::scope(|scope| {
        (0..PRODUCERS)
            .map(|producer| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut rng = seeded_rng(9100 + producer as u64);
                    (0..PER_PRODUCER)
                        .map(|_| {
                            let index = rng.gen_range(0..test.n_samples());
                            let sample = test.sample(index).expect("sample").to_vec();
                            let ticket = pool.submit_blocking(sample).expect("submit");
                            (index, ticket)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|handle| handle.join().expect("producer thread"))
            .collect()
    });
    assert_eq!(pending.len(), PRODUCERS * PER_PRODUCER);

    // Abort races the ticket waits: queued requests drain with the typed
    // error, in-flight ones finish with answers.
    let aborter = std::thread::spawn(move || pool.abort());
    let mut ok = 0u64;
    let mut rejected = 0u64;
    for (index, ticket) in pending {
        match ticket.wait() {
            Ok(outcome) => {
                assert_eq!(outcome.prediction, rig.expected[index]);
                ok += 1;
            }
            Err(ServingError::ShutDown) => rejected += 1,
            Err(other) => panic!("unexpected ticket error: {other}"),
        }
    }
    let stats = aborter.join().expect("abort thread");

    assert_eq!(ok + rejected, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.requests, ok, "served tally must match pool stats");
    assert_eq!(stats.shutdown_rejected, rejected);
    assert_eq!(stats.crashed_workers, 0);
    assert!(
        rejected > 0,
        "the slow backend must leave a backlog for abort to drain"
    );
}

/// Chaos under multi-producer load: one replica takes an unrepairable
/// scheduled hit while producers hammer the rings and a chaos thread
/// forces scrub checks. The struck replica is quarantined mid-stream, yet
/// every admitted ticket still resolves exactly once — and everything the
/// surviving replicas answered is bit-correct.
#[test]
fn chaos_quarantine_under_load_resolves_every_ticket_exactly_once() {
    use febim_suite::prelude::{FaultKind, FaultSchedule, ScheduledFault, ScrubPolicy};

    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 50;
    let dataset = iris_like(3104).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(3104)).expect("split");
    let config = EngineConfig::febim_default();
    let mut struck = FebimEngine::fit(&split.train, config.clone()).expect("struck engine");
    struck.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
        at_tick: 1,
        row: 1,
        column: 3,
        kind: FaultKind::StuckErased,
        permanent: true,
    }]));
    // Deterministic chaos: land the strike before deployment so the
    // quarantine depends only on the forced scrub, not on which replica
    // happens to age first under the randomized load.
    struck.advance_time(2);
    assert_eq!(struck.pending_faults(), 0, "the strike must have landed");
    let healthy = FebimEngine::fit(&split.train, config.clone()).expect("healthy engine");
    let reference = FebimEngine::fit(&split.train, config).expect("reference engine");
    let expected: Vec<usize> = (0..split.test.n_samples())
        .map(|index| {
            reference
                .predict(split.test.sample(index).expect("sample"))
                .expect("reference prediction")
        })
        .collect();

    let pool = ServingPool::new(
        vec![struck, healthy.clone(), healthy],
        ServingConfig::febim_default()
            .with_max_batch(8)
            .with_queue_depth(32)
            .with_ticks_per_batch(5)
            .with_scrub(ScrubPolicy::new(1_000_000, 1e-3)),
    )
    .expect("pool");

    let test = &split.test;
    let (ok, rejected) = std::thread::scope(|scope| {
        // The chaos thread forces scrub checks until the struck replica is
        // caught and quarantined, then lets the producers finish.
        let chaos = {
            let pool = &pool;
            scope.spawn(move || {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                while pool
                    .worker_health()
                    .iter()
                    .all(|health| health.is_serving())
                {
                    pool.request_scrub();
                    assert!(
                        std::time::Instant::now() < deadline,
                        "the struck replica was never quarantined"
                    );
                    std::thread::yield_now();
                }
            })
        };
        let tallies: Vec<(usize, usize)> = (0..PRODUCERS)
            .map(|producer| {
                let pool = &pool;
                let expected = &expected[..];
                scope.spawn(move || {
                    let mut rng = seeded_rng(9300 + producer as u64);
                    let mut pending: Vec<(usize, Ticket)> = Vec::with_capacity(PER_PRODUCER);
                    for _ in 0..PER_PRODUCER {
                        let index = rng.gen_range(0..test.n_samples());
                        let sample = test.sample(index).expect("sample").to_vec();
                        let ticket = pool.submit_blocking(sample).expect("submit");
                        pending.push((index, ticket));
                        for _ in 0..rng.gen_range(0..400_usize) {
                            std::hint::spin_loop();
                        }
                    }
                    let mut ok = 0;
                    let mut rejected = 0;
                    for (index, ticket) in pending {
                        match ticket.wait() {
                            Ok(outcome) => {
                                // Answers from surviving replicas must be
                                // bit-correct; the struck replica may have
                                // answered corrupted reads before its
                                // quarantine, so only its origin is checked.
                                if outcome.worker != 0 {
                                    assert_eq!(outcome.prediction, expected[index]);
                                }
                                ok += 1;
                            }
                            Err(ServingError::ShutDown) => rejected += 1,
                            Err(other) => panic!("unexpected ticket error: {other}"),
                        }
                    }
                    (ok, rejected)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("producer thread"))
            .collect();
        chaos.join().expect("chaos thread");
        (
            tallies.iter().map(|(ok, _)| *ok).sum::<usize>(),
            tallies.iter().map(|(_, rejected)| *rejected).sum::<usize>(),
        )
    });

    assert_eq!(ok, PRODUCERS * PER_PRODUCER, "every ticket answered Ok");
    assert_eq!(rejected, 0, "no shutdown raced the producers");
    let health = pool.worker_health();
    assert!(!health[0].is_serving(), "the struck replica stays out");
    assert_eq!(pool.serving_replicas(), 2);

    let stats = pool.shutdown();
    assert_eq!(stats.requests, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.shutdown_rejected, 0);
    assert_eq!(stats.crashed_workers, 0);
    assert_eq!(stats.quarantined_workers, 1);
    assert!(stats.scrubs >= 1, "quarantine must come from a real scrub");
    assert!(stats.faults_detected >= 1);
    assert!(stats.health_transitions >= 1);
    assert!(stats.workers[0].quarantined);
    assert_eq!(stats.fallback_served, 0, "survivors carried the load");
}

/// A worker panicking mid-batch under multi-producer load: its in-flight
/// jobs resolve to the typed error via the drop guards, the surviving
/// workers keep serving correct answers, and the crash is surfaced in the
/// pool statistics.
#[test]
fn worker_panic_under_load_never_hangs_a_ticket() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 50;
    let rig = stress_rig(3103, 500, 101);
    let pool = ServingPool::replicate(
        &rig.engine,
        3,
        ServingConfig::febim_default()
            .with_max_batch(8)
            .with_queue_depth(32),
    )
    .expect("pool");

    let (test, expected) = (&rig.test, &rig.expected[..]);
    let tallies: Vec<(usize, usize)> = std::thread::scope(|scope| {
        (0..PRODUCERS)
            .map(|producer| {
                let pool = &pool;
                scope.spawn(move || {
                    produce_and_tally(pool, test, expected, 9200 + producer as u64, PER_PRODUCER)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("producer thread"))
            .collect()
    });

    let ok: u64 = tallies.iter().map(|(ok, _)| *ok as u64).sum();
    let rejected: u64 = tallies.iter().map(|(_, rejected)| *rejected as u64).sum();
    // Every admitted ticket resolved (the waits above returned) and the
    // panicking worker's own in-flight job is guaranteed among the rejects.
    assert!(ok + rejected <= (PRODUCERS * PER_PRODUCER) as u64);
    assert!(rejected >= 1, "the crashed batch must reject its jobs");
    assert!(ok > 0, "surviving workers must keep serving");

    let stats = pool.shutdown();
    assert_eq!(stats.crashed_workers, 1);
    assert_eq!(
        stats.workers.iter().filter(|report| report.crashed).count(),
        1
    );
    // The crashed worker's report (its served count) is lost, so the pool
    // statistics can only undercount the producers' Ok tally.
    assert!(stats.requests <= ok);
}
