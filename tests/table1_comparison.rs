//! Integration test reproducing the Table 1 comparison from a full engine run
//! and checking the headline improvement claims.

use febim_suite::prelude::*;

#[test]
fn measured_febim_metrics_reproduce_table_1() {
    let dataset = iris_like(4001).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(4001)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let report = engine.evaluate(&split.test).expect("evaluation");
    let metrics = performance_metrics(
        engine.program(),
        &report,
        &MetricsConfig::febim_calibrated(),
    )
    .expect("metrics");

    // Table 1 FeBiM row: 26.32 Mb/mm², 0.69 MO/mm², 581.40 TOPS/W, 1 clock
    // cycle per inference. Density figures are analytic and must match
    // closely; the efficiency depends on the behavioural energy model and is
    // checked to the right order of magnitude.
    assert!((metrics.storage_density_mb_per_mm2 - 26.32).abs() < 0.05);
    assert!((metrics.computing_density_mo_per_mm2 - 0.69).abs() < 0.05);
    assert_eq!(metrics.clock_cycles_per_inference, 1.0);
    assert!(
        metrics.efficiency_tops_per_watt > 200.0 && metrics.efficiency_tops_per_watt < 1200.0,
        "efficiency {}",
        metrics.efficiency_tops_per_watt
    );

    let table = ComparisonTable::from_metrics(&metrics);
    let improvements = table.improvements();
    // Paper: 10.7× storage density and 43.4× efficiency over the memristor
    // Bayesian machine, > 3× computing density over the RNG designs.
    let density = improvements.storage_density_vs_sota.expect("density ratio");
    let efficiency = improvements.efficiency_vs_sota.expect("efficiency ratio");
    let computing = improvements
        .computing_density_vs_rng
        .expect("computing ratio");
    assert!(
        (density - 10.7).abs() < 0.3,
        "density improvement {density}"
    );
    assert!(
        efficiency > 20.0 && efficiency < 90.0,
        "efficiency improvement {efficiency}"
    );
    assert!(computing > 2.5, "computing improvement {computing}");
}

#[test]
fn published_table_is_self_consistent() {
    let table = ComparisonTable::published();
    assert_eq!(table.entries.len(), 4);
    // FeBiM is the only multi-level-cell, single-cycle entry.
    let febim = table.febim();
    assert_eq!(febim.clock_cycles_per_inference, Some(1.0));
    for entry in &table.entries[..3] {
        let cycles = entry.clock_cycles_per_inference.expect("cycles");
        assert!(cycles >= 200.0, "{} needs {cycles} cycles", entry.name);
    }
    let improvements = table.improvements();
    assert!((improvements.storage_density_vs_sota.unwrap() - 10.7).abs() < 0.2);
    assert!((improvements.efficiency_vs_sota.unwrap() - 43.4).abs() < 0.5);
}
