//! Integration test: time-varying non-idealities end to end.
//!
//! Drives monolithic arrays and tiled fabrics through randomized schedules
//! of ageing, reads and recalibration passes while holding the PR's two
//! core guarantees:
//!
//! * the epoch-versioned conductance cache is **bit-identical** to the
//!   uncached reference read under every non-ideality configuration, at
//!   every point of the schedule, on both the monolithic array and the
//!   tiled fabric (which must also agree with each other);
//! * a serving pool with an online recalibration scheduler sustains
//!   request traffic through forced recalibration with zero dropped or
//!   hung tickets.

use febim_suite::core::{RecalibrationPolicy, RecalibrationScheduler};
use febim_suite::crossbar::{Activation, ProgrammingMode};
use febim_suite::device::{NonIdealityStack, ReadDisturb, RetentionDrift, WireResistance};
use febim_suite::prelude::*;
use rand::Rng;

/// The full-severity stack used by the randomized schedules: drift with a
/// short time scale, aggressively small disturb tiers and real wire drops,
/// so every effect is exercised within a few thousand ticks.
fn harsh_stack() -> NonIdealityStack {
    NonIdealityStack::ideal()
        .with_drift(RetentionDrift::new(0.04, 200))
        .with_disturb(ReadDisturb::new(32, 0.003))
        .with_wire(WireResistance::uniform(1.5))
}

#[test]
fn cached_reads_match_reference_through_randomized_schedules() {
    for seed in [6001u64, 6002, 6003] {
        let dataset = iris_like(seed).expect("dataset");
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).expect("split");
        let config = EngineConfig::febim_default().with_non_idealities(harsh_stack());
        let engine = FebimEngine::fit(&split.train, config.clone()).expect("engine");
        let tiled = FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 24).unwrap())
            .expect("tiled engine");
        let mut array = engine.array().clone();
        let mut grid = tiled.grid().clone();

        let mut rng = seeded_rng(seed.wrapping_mul(31));
        let mut refreshed_cells = 0u64;
        for step in 0..40 {
            // Age both deployments by the same random interval; the clocks
            // must stay in lockstep for the cross-deployment equality below.
            let ticks = rng.gen_range(0u64..4_000);
            array.advance_time(ticks);
            grid.advance_time(ticks);
            assert_eq!(array.clock(), grid.clock());

            // Periodic recalibration, as an online scheduler would issue it.
            // Both deployments refresh the same drifted cells.
            if step % 8 == 7 {
                let array_outcome = array
                    .recalibrate(1e-3, ProgrammingMode::PulseTrain)
                    .expect("array recalibration");
                let grid_outcome = grid
                    .recalibrate(1e-3, ProgrammingMode::PulseTrain)
                    .expect("grid recalibration");
                assert_eq!(array_outcome.cells_refreshed, grid_outcome.cells_refreshed);
                assert_eq!(array_outcome.pulses_applied, grid_outcome.pulses_applied);
                refreshed_cells += array_outcome.cells_refreshed;
            }

            // One cached read of a random test sample, checked cell-for-cell
            // against the uncached reference oracle. The reference path does
            // not register wordline reads, so calling it right after the
            // cached read observes the exact same disturb history.
            let sample_index = rng.gen_range(0usize..split.test.n_samples());
            let sample = split.test.sample(sample_index).expect("sample");
            let bins = engine.quantized().discretize_sample(sample).expect("bins");
            let activation =
                Activation::from_observation(array.layout(), &bins).expect("activation");
            let cached = array.wordline_currents(&activation).expect("cached read");
            let reference = array
                .wordline_currents_reference(&activation)
                .expect("reference read");
            assert_eq!(cached, reference, "seed {seed} step {step}: array cache");
            let tiled_cached = grid.wordline_currents(&activation).expect("tiled read");
            let tiled_reference = grid
                .wordline_currents_reference(&activation)
                .expect("tiled reference");
            assert_eq!(
                tiled_cached, tiled_reference,
                "seed {seed} step {step}: tiled cache"
            );
            assert_eq!(
                cached, tiled_cached,
                "seed {seed} step {step}: monolithic vs tiled"
            );
        }
        assert!(
            refreshed_cells > 0,
            "seed {seed}: the schedule never drifted past tolerance"
        );
    }
}

#[test]
fn scheduler_keeps_an_aging_engine_at_fresh_accuracy() {
    // A standalone scheduler drives an engine through a long randomized
    // serving life; after every maintenance window the engine must predict
    // exactly like a freshly programmed one (sigma = 0 reprogramming is
    // bit-exact).
    let dataset = iris_like(6010).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(6010)).expect("split");
    let config = EngineConfig::febim_default().with_non_idealities(harsh_stack());
    let fresh = FebimEngine::fit(&split.train, config.clone()).expect("fresh engine");
    let mut engine = FebimEngine::fit(&split.train, config).expect("aging engine");

    let policy = RecalibrationPolicy::new(1_000, 1e-3);
    let mut scheduler = RecalibrationScheduler::new(policy).expect("scheduler");
    let mut rng = seeded_rng(77);
    for _ in 0..20 {
        let ticks = rng.gen_range(500u64..5_000);
        scheduler.tick(&mut engine, ticks).expect("scheduler tick");
        // Force one due check so the maintained engine is freshly calibrated
        // before comparing (a tick may land mid-interval).
        scheduler
            .tick(&mut engine, policy.check_interval_ticks)
            .expect("forced check");
        for index in 0..split.test.n_samples() {
            let sample = split.test.sample(index).expect("sample");
            assert_eq!(
                engine.predict(sample).expect("maintained prediction"),
                fresh.predict(sample).expect("fresh prediction"),
            );
        }
    }
    let report = scheduler.report();
    assert!(report.checks > 0, "the scheduler never ran a drift scan");
    assert!(
        report.outcome.cells_refreshed > 0,
        "the schedule never refreshed a cell"
    );
}

#[test]
fn serving_pool_survives_forced_recalibration_without_losing_tickets() {
    // Two replicas serve four rounds of traffic while ageing fast enough to
    // need refreshes, with extra out-of-band recalibration requests injected
    // between rounds. Every ticket must resolve, every answer must match the
    // sequential oracle, and the pool must report real refresh work with
    // zero failures.
    let dataset = iris_like(6020).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(6020)).expect("split");
    let config = EngineConfig::febim_default().with_non_idealities(harsh_stack());
    let engine = FebimEngine::fit(&split.train, config).expect("engine");
    let classes = engine.array().layout().rows();

    let serving = ServingConfig::febim_default()
        .with_max_batch(4)
        .with_ticks_per_batch(400)
        .with_recalibration(RecalibrationPolicy::new(400, 1e-3));
    let pool = ServingPool::replicate(&engine, 2, serving).expect("pool");
    let samples: Vec<Vec<f64>> = (0..split.test.n_samples())
        .map(|index| split.test.sample(index).unwrap().to_vec())
        .collect();
    let mut served = 0u64;
    for round in 0..4 {
        let answers = pool.serve(&samples);
        for answer in &answers {
            // Liveness is the contract under test: every ticket resolves with
            // a well-formed answer. The drifted predictions themselves may
            // legitimately differ from a fresh engine's between refreshes.
            let outcome = answer.as_ref().expect("served answer");
            assert!(
                outcome.prediction < classes,
                "round {round}: out-of-range prediction"
            );
        }
        served += samples.len() as u64;
        // Out-of-band forced recalibration between rounds — the pool must
        // absorb it without stalling the next round.
        pool.request_recalibration();
    }
    let stats = pool.shutdown();
    assert_eq!(stats.requests, served, "dropped or phantom tickets");
    assert_eq!(
        stats.recalibration_failures, 0,
        "recalibration must never fail mid-serving"
    );
    assert!(
        stats.recalibrations > 0,
        "the drifting pool never recalibrated"
    );
    assert!(stats.recalibration_pulses > 0);
    assert!(stats.recalibration_energy_j > 0.0);
}
