//! End-to-end integration tests: dataset -> GNBC training -> quantization ->
//! crossbar compilation -> device programming -> circuit sensing -> accuracy.

use febim_suite::crossbar::Activation;
use febim_suite::prelude::*;

fn engine_for(seed: u64) -> (FebimEngine, febim_suite::data::TrainTestSplit) {
    let dataset = iris_like(seed).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).expect("split");
    let engine =
        FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine builds");
    (engine, split)
}

#[test]
fn iris_pipeline_reaches_paper_accuracy_band() {
    let (engine, split) = engine_for(1001);
    let software = engine
        .software_model()
        .score(&split.test)
        .expect("software score");
    let report = engine.evaluate(&split.test).expect("in-memory evaluation");
    // The paper reports 94.64 % for the quantized in-memory iris classifier
    // against a mid-90s software baseline.
    assert!(software > 0.9, "software baseline {software}");
    assert!(
        report.accuracy > 0.85,
        "in-memory accuracy {}",
        report.accuracy
    );
    assert!(
        software - report.accuracy < 0.08,
        "degradation too large: software {software}, in-memory {}",
        report.accuracy
    );
}

#[test]
fn crossbar_geometry_matches_quantization_settings() {
    let (engine, _) = engine_for(1002);
    let layout = *engine.array().layout();
    let config = engine.config().quant;
    assert_eq!(layout.rows(), 3);
    assert_eq!(layout.evidence_nodes(), 4);
    assert_eq!(layout.evidence_levels(), config.feature_levels());
    assert_eq!(layout.columns(), 4 * config.feature_levels());
    assert_eq!(engine.program().state_count(), config.likelihood_levels());
}

#[test]
fn wordline_currents_reflect_programmed_likelihoods() {
    let (engine, split) = engine_for(1003);
    let sample = split.test.sample(0).expect("sample");
    let evidence = engine.quantized().discretize_sample(sample).expect("bins");
    let activation =
        Activation::from_observation(engine.array().layout(), &evidence).expect("activation");
    let currents = engine
        .array()
        .wordline_currents(&activation)
        .expect("currents");

    // Reconstruct the expected current of each wordline from the quantized
    // level tables and the 0.1 uA - 1.0 uA level map.
    let levels = engine.program().state_count();
    let step = (1.0e-6 - 0.1e-6) / (levels - 1) as f64;
    for (class, &measured) in currents.iter().enumerate() {
        let mut expected = 0.0;
        for (feature, &bin) in evidence.iter().enumerate() {
            let level = engine
                .quantized()
                .likelihood_level(class, feature, bin)
                .expect("level");
            expected += 0.1e-6 + level as f64 * step;
        }
        let relative_error = (measured - expected).abs() / expected;
        assert!(
            relative_error < 0.03,
            "class {class}: measured {measured:.3e}, expected {expected:.3e}"
        );
    }
}

#[test]
fn in_memory_predictions_match_quantized_software_when_not_tied() {
    let (engine, split) = engine_for(1004);
    let mut compared = 0usize;
    for (sample, _) in split.test.iter() {
        let outcome = engine.infer(sample).expect("inference");
        let scores = engine
            .quantized()
            .log_posterior_scores(sample)
            .expect("scores");
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        // Skip samples whose quantized posteriors tie exactly; the hardware
        // winner is then legitimately arbitrary.
        if (sorted[0] - sorted[1]).abs() < 1e-9 {
            continue;
        }
        let software = engine.quantized().predict(sample).expect("prediction");
        assert_eq!(outcome.prediction, software);
        compared += 1;
    }
    assert!(
        compared > 50,
        "only {compared} unambiguous samples compared"
    );
}

#[test]
fn all_three_datasets_run_through_the_full_stack() {
    for (name, dataset) in [
        ("iris", iris_like(1005).expect("iris")),
        ("wine", wine_like(1005).expect("wine")),
        ("cancer", cancer_like(1005).expect("cancer")),
    ] {
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(1005)).expect("split");
        let engine = FebimEngine::fit(
            &split.train,
            EngineConfig::febim_default().with_quant(QuantConfig::new(4, 3)),
        )
        .expect("engine");
        let report = engine.evaluate(&split.test).expect("evaluation");
        assert!(
            report.accuracy > 0.8,
            "{name}: in-memory accuracy {}",
            report.accuracy
        );
    }
}

#[test]
fn evaluation_report_is_internally_consistent() {
    let (engine, split) = engine_for(1006);
    let report = engine.evaluate(&split.test).expect("evaluation");
    assert_eq!(report.predictions.len(), report.samples);
    assert_eq!(report.samples, split.test.n_samples());
    let recomputed = report
        .predictions
        .iter()
        .zip(split.test.labels().iter())
        .filter(|(p, l)| p == l)
        .count() as f64
        / report.samples as f64;
    assert!((recomputed - report.accuracy).abs() < 1e-12);
    assert!(report.mean_energy >= report.mean_array_energy);
    assert!(report.mean_energy >= report.mean_sensing_energy);
    assert!(
        (report.mean_energy - report.mean_array_energy - report.mean_sensing_energy).abs() < 1e-20
    );
}
