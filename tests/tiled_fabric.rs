//! Integration tests of the tiled multi-array fabric backend: a model whose
//! crossbar layout exceeds one physical tile in both dimensions is sharded
//! onto a ≥2×2 tile grid and must decide every sample bit-identically to the
//! monolithic single-array reference engine.

use febim_suite::prelude::*;

fn split_for(seed: u64) -> febim_suite::data::TrainTestSplit {
    let dataset = iris_like(seed).expect("dataset");
    stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).expect("split")
}

#[test]
fn oversized_model_lands_on_a_2x2_grid_and_matches_the_reference() {
    let split = split_for(2101);
    let config = EngineConfig::febim_default();
    let monolithic = FebimEngine::fit(&split.train, config.clone()).expect("reference engine");
    // The 3×64 iris layout exceeds a 2×48 tile in rows (3 > 2) and columns
    // (64 > 48) → 2 tile rows × 2 tile columns.
    let tiled = FebimEngine::fit_tiled(
        &split.train,
        config,
        TileShape::new(2, 48).expect("tile shape"),
    )
    .expect("fabric engine");
    let plan = tiled.tiled_program().plan();
    assert_eq!(plan.row_tiles(), 2);
    assert_eq!(plan.col_tiles(), 2);
    assert!(plan.is_multi_tile());

    let reference = monolithic.evaluate(&split.test).expect("reference report");
    let fabric = tiled.evaluate(&split.test).expect("fabric report");
    assert_eq!(reference.predictions, fabric.predictions);
    assert_eq!(reference.accuracy, fabric.accuracy);
    assert_eq!(reference.ties, fabric.ties);
}

#[test]
fn backends_share_one_engine_api() {
    let split = split_for(2102);
    let config = EngineConfig::febim_default();
    let software = FebimEngine::fit_software(&split.train, config.clone()).expect("software");
    let crossbar = FebimEngine::fit(&split.train, config.clone()).expect("crossbar");
    let fabric = FebimEngine::fit_tiled(
        &split.train,
        config,
        TileShape::new(2, 24).expect("tile shape"),
    )
    .expect("fabric");

    assert_eq!(software.backend_info().kind, BackendKind::Software);
    assert_eq!(crossbar.backend_info().kind, BackendKind::Crossbar);
    assert_eq!(fabric.backend_info().kind, BackendKind::TiledFabric);
    assert_eq!(fabric.backend_info().tiles, 6);

    // The two physical backends are bit-identical; the software reference is
    // the FP64 ground truth the quantized engines approximate.
    let sample = split.test.sample(0).expect("sample");
    assert_eq!(
        crossbar.predict(sample).expect("crossbar prediction"),
        fabric.predict(sample).expect("fabric prediction")
    );
    assert_eq!(
        software.predict(sample).expect("software prediction"),
        software
            .software_model()
            .predict(sample)
            .expect("model prediction")
    );
}

#[test]
fn fabric_monte_carlo_matches_the_reference_backend() {
    let dataset = iris_like(2103).expect("dataset");
    let config = EngineConfig::febim_default();
    let shape = TileShape::new(2, 24).expect("tile shape");
    let reference = epoch_accuracy(&dataset, &config, 0.7, 3, 21).expect("reference epochs");
    let fabric =
        epoch_accuracy_with_backend(&dataset, &config, 0.7, 3, 21, 2, |train, epoch_config| {
            FebimEngine::fit_tiled(train, epoch_config, shape)
        })
        .expect("fabric epochs");
    assert_eq!(reference, fabric);
}

#[test]
fn tile_plan_and_report_serialize_to_json() {
    let split = split_for(2104);
    let tiled = FebimEngine::fit_tiled(
        &split.train,
        EngineConfig::febim_default(),
        TileShape::new(2, 48).expect("tile shape"),
    )
    .expect("fabric engine");
    let report = tiled.evaluate(&split.test).expect("report");

    let plan_json = febim_suite::core::json::to_string(tiled.tiled_program().plan());
    assert!(plan_json.contains("\"row_tiles\":2"));
    assert!(plan_json.contains("\"shape\""));
    let report_json = febim_suite::core::json::to_string(&report);
    assert!(report_json.contains("\"accuracy\""));
    assert!(report_json.contains("\"predictions\""));
}
