//! Integration tests for the quantization-precision sweeps behind Fig. 7 and
//! Fig. 8(a): accuracy as a function of Q_f and Q_l.

use febim_suite::prelude::*;

fn quantized_accuracy(dataset_seed: u64, qf: u32, ql: u32) -> (f64, f64) {
    let dataset = iris_like(dataset_seed).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(dataset_seed)).expect("split");
    let model = GaussianNaiveBayes::fit(&split.train).expect("fit");
    let baseline = model.score(&split.test).expect("baseline");
    let quantized =
        QuantizedGnbc::quantize(&model, &split.train, QuantConfig::new(qf, ql)).expect("quantize");
    (
        baseline,
        quantized.score(&split.test).expect("quantized score"),
    )
}

#[test]
fn high_precision_matches_the_float_baseline() {
    let (baseline, quantized) = quantized_accuracy(2001, 8, 8);
    assert!(
        baseline - quantized < 0.03,
        "baseline {baseline} vs 8/8-bit quantized {quantized}"
    );
}

#[test]
fn paper_operating_point_stays_within_a_few_percent() {
    // Fig. 8(a): Q_f = 4 bit / Q_l = 2 bit sits inside the Δacc < 1 % region
    // for the real iris dataset; allow a slightly wider band for the
    // synthetic stand-in and a single split.
    let (baseline, quantized) = quantized_accuracy(2002, 4, 2);
    assert!(
        baseline - quantized < 0.05,
        "baseline {baseline} vs 4/2-bit quantized {quantized}"
    );
    assert!(quantized > 0.88, "quantized accuracy {quantized}");
}

#[test]
fn accuracy_degrades_gracefully_at_one_bit_features() {
    // Fig. 7(a): accuracy drops towards the left of the sweep but stays well
    // above chance (33 % for three classes) even with a single feature bit,
    // and recovers by 3 bits.
    let (_, coarse) = quantized_accuracy(2003, 1, 8);
    assert!(coarse > 0.45, "1-bit feature accuracy {coarse}");
    let (_, moderate) = quantized_accuracy(2003, 3, 8);
    assert!(moderate > 0.85, "3-bit feature accuracy {moderate}");
}

#[test]
fn accuracy_degrades_gracefully_at_one_bit_likelihoods() {
    // Fig. 7(b): likelihood quantization down to 2 bits is nearly lossless;
    // 1 bit starts to cost accuracy but stays usable.
    let (_, one_bit) = quantized_accuracy(2004, 8, 1);
    assert!(one_bit > 0.6, "1-bit likelihood accuracy {one_bit}");
    let (baseline, two_bit) = quantized_accuracy(2004, 8, 2);
    assert!(
        baseline - two_bit < 0.06,
        "baseline {baseline} vs 2-bit likelihood {two_bit}"
    );
}

#[test]
fn quantization_loss_shrinks_with_precision_on_average() {
    // Average over several splits so the trend is stable, then check the
    // monotone envelope coarse <= medium-ish <= fine.
    let seeds = [2005u64, 2006, 2007, 2008, 2009];
    let mut coarse_sum = 0.0;
    let mut medium_sum = 0.0;
    let mut fine_sum = 0.0;
    for &seed in &seeds {
        coarse_sum += quantized_accuracy(seed, 1, 1).1;
        medium_sum += quantized_accuracy(seed, 4, 2).1;
        fine_sum += quantized_accuracy(seed, 8, 8).1;
    }
    let n = seeds.len() as f64;
    let (coarse, medium, fine) = (coarse_sum / n, medium_sum / n, fine_sum / n);
    assert!(
        medium >= coarse - 0.02,
        "medium precision {medium} worse than coarse {coarse}"
    );
    assert!(
        fine >= medium - 0.02,
        "fine precision {fine} worse than medium {medium}"
    );
}

#[test]
fn wine_and_cancer_follow_the_same_trend() {
    for dataset in [
        wine_like(2010).expect("wine"),
        cancer_like(2010).expect("cancer"),
    ] {
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(2010)).expect("split");
        let model = GaussianNaiveBayes::fit(&split.train).expect("fit");
        let baseline = model.score(&split.test).expect("baseline");
        let quantized = QuantizedGnbc::quantize(&model, &split.train, QuantConfig::new(4, 2))
            .expect("quantize")
            .score(&split.test)
            .expect("score");
        assert!(
            baseline - quantized < 0.10,
            "{}: baseline {baseline}, quantized {quantized}",
            dataset.name()
        );
    }
}
