//! Cross-backend equivalence matrix: for every example dataset (quickstart
//! iris, spam frequencies, medical cohort), the Software, Crossbar and
//! TiledFabric backends — sequential, batched and through the concurrent
//! serving pool — must agree:
//!
//! * Crossbar and TiledFabric decide **bit-identically** (same predictions,
//!   same ties, same wordline currents) on every path;
//! * batched `infer_batch_into` is bit-identical to sequential `infer_into`
//!   on the same backend (steps, delay, energy, final currents);
//! * the serving pool answers bit-identically to sequential inference on
//!   the backend it serves;
//! * the Software FP64 reference agrees exactly on the well-separated spam
//!   and medical tasks, and within the documented quantization loss on
//!   iris.

use febim_suite::data::synthetic::{ClassSpec, SyntheticSpec};
use febim_suite::data::Dataset;
use febim_suite::prelude::*;

/// The spam example's continuous keyword-frequency corpus.
fn spam_spec() -> SyntheticSpec {
    SyntheticSpec {
        name: "mail-frequencies".to_string(),
        feature_names: vec![
            "link_density".to_string(),
            "offer_density".to_string(),
            "urgency_density".to_string(),
            "sender_reputation".to_string(),
        ],
        classes: vec![
            ClassSpec::new(vec![0.3, 0.2, 0.1, 0.8], vec![0.2, 0.15, 0.1, 0.1], 120),
            ClassSpec::new(vec![2.5, 1.8, 1.2, 0.25], vec![0.9, 0.7, 0.6, 0.15], 80),
        ],
    }
}

/// The medical example's synthetic patient cohort.
fn medical_spec() -> SyntheticSpec {
    SyntheticSpec {
        name: "patients".to_string(),
        feature_names: vec![
            "temperature_c".to_string(),
            "respiratory_rate".to_string(),
            "spo2_percent".to_string(),
            "crp_mg_l".to_string(),
        ],
        classes: vec![
            ClassSpec::new(vec![36.8, 14.0, 98.0, 3.0], vec![0.3, 1.5, 1.0, 2.0], 60),
            ClassSpec::new(vec![38.6, 18.0, 96.0, 25.0], vec![0.5, 2.0, 1.5, 10.0], 45),
            ClassSpec::new(vec![39.2, 26.0, 90.0, 120.0], vec![0.6, 3.0, 3.0, 40.0], 30),
        ],
    }
}

/// One row of the dataset matrix: name, data, split seed/ratio, and whether
/// the FP64 software reference is expected to agree *exactly* with the
/// quantized hardware backends (true for the well-separated example tasks).
struct MatrixCase {
    name: &'static str,
    dataset: Dataset,
    seed: u64,
    test_ratio: f64,
    software_exact: bool,
}

fn matrix() -> Vec<MatrixCase> {
    vec![
        MatrixCase {
            name: "quickstart",
            dataset: iris_like(2024).expect("iris dataset"),
            seed: 2024,
            test_ratio: 0.7,
            software_exact: false,
        },
        MatrixCase {
            name: "spam",
            dataset: spam_spec().generate(555).expect("spam dataset"),
            seed: 555,
            test_ratio: 0.5,
            software_exact: true,
        },
        MatrixCase {
            name: "medical",
            dataset: medical_spec().generate(77).expect("medical dataset"),
            seed: 77,
            test_ratio: 0.5,
            software_exact: true,
        },
    ]
}

fn samples_of(test: &Dataset) -> Vec<Vec<f64>> {
    (0..test.n_samples())
        .map(|index| test.sample(index).expect("sample").to_vec())
        .collect()
}

/// Sequential steps + final wordline currents of one engine over a sample
/// set, through one reused scratch (the reference every other path must
/// reproduce bit for bit).
fn sequential_steps<B: InferenceBackend>(
    engine: &FebimEngine<B>,
    samples: &[Vec<f64>],
) -> (Vec<febim_suite::core::InferenceStep>, Vec<f64>) {
    let mut scratch = engine.make_scratch();
    let steps = samples
        .iter()
        .map(|sample| engine.infer_into(sample, &mut scratch).expect("infer"))
        .collect();
    (steps, scratch.wordline_currents().to_vec())
}

/// Asserts batched inference and the serving pool are bit-identical to the
/// sequential reference on one backend, and returns the predictions.
fn check_backend_paths<B>(engine: &FebimEngine<B>, samples: &[Vec<f64>]) -> Vec<usize>
where
    B: InferenceBackend + Clone + Send + 'static,
{
    let (sequential, final_currents) = sequential_steps(engine, samples);

    // Batched path: same steps, same final currents.
    let mut scratch = engine.make_scratch();
    let mut steps = Vec::new();
    let telemetry = engine
        .infer_batch_into(samples, &mut scratch, &mut steps)
        .expect("batched inference");
    assert_eq!(steps, sequential, "batched steps diverged from sequential");
    assert_eq!(
        scratch.wordline_currents(),
        &final_currents[..],
        "batched currents diverged from sequential"
    );
    assert_eq!(telemetry.reads, samples.len());
    if telemetry.amortized {
        assert!(telemetry.delay.total() <= telemetry.sequential_delay);
        assert!(telemetry.energy.total() <= telemetry.sequential_energy);
    }

    // Serving path: every answer matches its sequential step exactly.
    let pool =
        ServingPool::replicate(engine, 2, ServingConfig::febim_default()).expect("serving pool");
    let answers = pool.serve(samples);
    for (answer, step) in answers.iter().zip(&sequential) {
        let outcome = answer.as_ref().expect("served answer");
        assert_eq!(outcome.prediction, step.prediction);
        assert_eq!(outcome.tie_broken, step.tie_broken);
        assert_eq!(outcome.delay, step.delay);
        assert_eq!(outcome.energy, step.energy);
    }
    let stats = pool.shutdown();
    assert_eq!(stats.requests, samples.len() as u64);

    sequential.iter().map(|step| step.prediction).collect()
}

#[test]
fn every_backend_and_path_agrees_on_every_example_dataset() {
    for case in matrix() {
        let split = stratified_split(&case.dataset, case.test_ratio, &mut seeded_rng(case.seed))
            .expect("split");
        let samples = samples_of(&split.test);
        let config = EngineConfig::febim_default();

        let software = FebimEngine::fit_software(&split.train, config.clone()).expect("software");
        let crossbar = FebimEngine::fit(&split.train, config.clone()).expect("crossbar");
        let tiled = FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 24).unwrap())
            .expect("tiled fabric");
        assert!(
            tiled.tiled_program().plan().is_multi_tile(),
            "{}: the fabric case must actually shard",
            case.name
        );

        let software_predictions = check_backend_paths(&software, &samples);
        let crossbar_predictions = check_backend_paths(&crossbar, &samples);
        let tiled_predictions = check_backend_paths(&tiled, &samples);

        // The two physical deployments are bit-identical to each other.
        assert_eq!(
            crossbar_predictions, tiled_predictions,
            "{}: crossbar vs tiled fabric diverged",
            case.name
        );

        // The FP64 reference: exact on the separable example tasks, within
        // the documented quantization loss on iris.
        if case.software_exact {
            assert_eq!(
                software_predictions, crossbar_predictions,
                "{}: software vs crossbar diverged",
                case.name
            );
        } else {
            let agreement = software_predictions
                .iter()
                .zip(&crossbar_predictions)
                .filter(|(a, b)| a == b)
                .count() as f64
                / samples.len() as f64;
            assert!(
                agreement >= 0.95,
                "{}: software/crossbar agreement {agreement}",
                case.name
            );
        }
    }
}

#[test]
fn fabric_currents_match_the_monolithic_currents_sample_for_sample() {
    for case in matrix() {
        let split = stratified_split(&case.dataset, case.test_ratio, &mut seeded_rng(case.seed))
            .expect("split");
        let config = EngineConfig::febim_default();
        let crossbar = FebimEngine::fit(&split.train, config.clone()).expect("crossbar");
        let tiled = FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 24).unwrap())
            .expect("tiled fabric");
        let mut crossbar_scratch = crossbar.make_scratch();
        let mut tiled_scratch = tiled.make_scratch();
        for index in 0..split.test.n_samples() {
            let sample = split.test.sample(index).expect("sample");
            let a = crossbar
                .infer_into(sample, &mut crossbar_scratch)
                .expect("crossbar infer");
            let b = tiled
                .infer_into(sample, &mut tiled_scratch)
                .expect("tiled infer");
            assert_eq!(a.prediction, b.prediction, "{} sample {index}", case.name);
            assert_eq!(a.tie_broken, b.tie_broken, "{} sample {index}", case.name);
            assert_eq!(
                crossbar_scratch.wordline_currents(),
                tiled_scratch.wordline_currents(),
                "{} sample {index}: merged fabric currents diverged",
                case.name
            );
        }
    }
}
