//! Integration tests for the robustness (Fig. 8(c)) and scalability (Fig. 6)
//! studies, exercised through the public API of the umbrella crate.

use febim_suite::circuit::SensingChain;
use febim_suite::core::{column_sweep, figure6_columns, figure6_rows, row_sweep, variation_sweep};
use febim_suite::prelude::*;

#[test]
fn variation_sweep_shows_graceful_degradation() {
    let dataset = iris_like(3001).expect("dataset");
    let config = EngineConfig::febim_default();
    let points = variation_sweep(&dataset, &config, &[0.0, 15.0, 45.0], 0.7, 6, 3001)
        .expect("variation sweep");
    assert_eq!(points.len(), 3);
    let ideal = points[0].stats.mean;
    let worst = points[2].stats.mean;
    // Fig. 8(c): roughly a 5 % mean drop at 45 mV; allow extra slack for the
    // small epoch count used in CI.
    assert!(ideal > 0.85, "ideal accuracy {ideal}");
    assert!(
        ideal - worst < 0.2,
        "drop too large: {} -> {}",
        ideal,
        worst
    );
    // The spread of the distribution grows with the variation level.
    assert!(points[2].stats.std_dev >= points[0].stats.std_dev - 0.02);
}

#[test]
fn moderate_variation_costs_less_than_strong_variation_on_average() {
    let dataset = iris_like(3002).expect("dataset");
    let config = EngineConfig::febim_default();
    let points =
        variation_sweep(&dataset, &config, &[15.0, 45.0], 0.7, 8, 3002).expect("variation sweep");
    assert!(
        points[0].stats.mean >= points[1].stats.mean - 0.05,
        "15 mV accuracy {} unexpectedly below 45 mV accuracy {}",
        points[0].stats.mean,
        points[1].stats.mean
    );
}

#[test]
fn column_scaling_matches_figure6_trends() {
    let chain = SensingChain::febim_calibrated();
    let points = column_sweep(2, &figure6_columns(), &chain).expect("column sweep");
    // Delay roughly quadruples from 2 to 256 columns (about 200 ps -> 800 ps).
    let first = points.first().expect("first point");
    let last = points.last().expect("last point");
    let delay_ratio = last.delay / first.delay;
    assert!(
        delay_ratio > 2.5 && delay_ratio < 8.0,
        "delay ratio {delay_ratio}"
    );
    // Energy grows monotonically and the array part dominates at 2 rows.
    for pair in points.windows(2) {
        assert!(pair[1].energy_total() >= pair[0].energy_total());
    }
    assert!(last.energy_array > last.energy_sensing);
}

#[test]
fn row_scaling_matches_figure6_trends() {
    let chain = SensingChain::febim_calibrated();
    let points = row_sweep(&figure6_rows(), 32, &chain).expect("row sweep");
    let first = points.first().expect("first point");
    let last = points.last().expect("last point");
    // Delay grows by several times from 2 to 32 rows (about 200 ps -> 1 ns).
    let delay_ratio = last.delay / first.delay;
    assert!(
        delay_ratio > 2.0 && delay_ratio < 10.0,
        "delay ratio {delay_ratio}"
    );
    // Sensing energy dominates for tall arrays.
    assert!(last.energy_sensing > last.energy_array);
    // Both energy components grow with the row count.
    for pair in points.windows(2) {
        assert!(pair[1].energy_sensing >= pair[0].energy_sensing);
    }
}

#[test]
fn single_inference_delay_stays_sub_nanosecond_at_iris_scale() {
    let dataset = iris_like(3003).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(3003)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let report = engine.evaluate(&split.test).expect("evaluation");
    // Fig. 5(c)/6: the iris-scale array resolves well below a nanosecond and
    // costs only femtojoules per inference.
    assert!(report.mean_delay < 1e-9, "mean delay {}", report.mean_delay);
    assert!(
        report.mean_energy < 50e-15,
        "mean energy {}",
        report.mean_energy
    );
}
