//! Integration test: classification robustness of the FeBiM engine against
//! hard cell defects (stuck-erased / stuck-programmed FeFETs), an extension
//! of the paper's variation study to hard faults.

use febim_suite::crossbar::{FaultKind, FaultModel};
use febim_suite::prelude::*;

#[test]
fn hard_faults_degrade_accuracy_gracefully() {
    // Build the engine, then fault an identical standalone array and compare
    // the decisions the sensing chain would make.
    let dataset = iris_like(5001).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5001)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let clean_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;

    // Clone the programmed array and inject 2 % stuck-at faults.
    let mut faulty_array = engine.array().clone();
    let model = FaultModel::new(0.02, 0.7).expect("fault model");
    let faults = model
        .inject(&mut faulty_array, &mut seeded_rng(77))
        .expect("inject");
    assert!(!faults.is_empty(), "expected some injected faults");

    // Evaluate the faulty array manually through the same activation path.
    let mut correct = 0usize;
    for (sample, label) in split.test.iter() {
        let bins = engine.quantized().discretize_sample(sample).expect("bins");
        let activation =
            febim_suite::crossbar::Activation::from_observation(faulty_array.layout(), &bins)
                .expect("activation");
        let currents = faulty_array
            .wordline_currents(&activation)
            .expect("currents");
        let winner = febim_suite::bayes::argmax(&currents).expect("winner");
        if winner == label {
            correct += 1;
        }
    }
    let faulty_accuracy = correct as f64 / split.test.n_samples() as f64;

    assert!(clean_accuracy > 0.85, "clean accuracy {clean_accuracy}");
    // A 2 % defect rate on a 192-cell array should cost only a modest number
    // of decisions.
    assert!(
        clean_accuracy - faulty_accuracy < 0.25,
        "clean {clean_accuracy} vs faulty {faulty_accuracy}"
    );
    assert!(faulty_accuracy > 0.6, "faulty accuracy {faulty_accuracy}");
}

#[test]
fn stuck_programmed_faults_bias_towards_the_faulty_row() {
    let dataset = iris_like(5002).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5002)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let mut faulty_array = engine.array().clone();
    // Stick every cell row 2 contributes for the all-zero-bin observation to
    // the fully programmed state: that row must then win the competition for
    // that observation regardless of the trained likelihoods.
    let bins = vec![0usize; 4];
    for feature in 0..4 {
        let column = faulty_array
            .layout()
            .likelihood_column(feature, 0)
            .expect("column");
        febim_suite::crossbar::apply_fault(
            &mut faulty_array,
            2,
            column,
            FaultKind::StuckProgrammed,
        )
        .expect("fault");
    }
    let activation =
        febim_suite::crossbar::Activation::from_observation(faulty_array.layout(), &bins)
            .expect("activation");
    let currents = faulty_array
        .wordline_currents(&activation)
        .expect("currents");
    let winner = febim_suite::bayes::argmax(&currents).expect("winner");
    assert_eq!(winner, 2, "currents {currents:?}");
}
