//! Integration test: classification robustness of the FeBiM engine against
//! hard cell defects (stuck-erased / stuck-programmed FeFETs), an extension
//! of the paper's variation study to hard faults — on the monolithic array
//! and on individual tiles of a tiled fabric, which must degrade
//! identically when the same global cells are defective.

use febim_suite::crossbar::{apply_grid_fault, Activation, FaultKind, FaultModel};
use febim_suite::prelude::*;

#[test]
fn hard_faults_degrade_accuracy_gracefully() {
    // Build the engine, then fault an identical standalone array and compare
    // the decisions the sensing chain would make.
    let dataset = iris_like(5001).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5001)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let clean_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;

    // Clone the programmed array and inject 2 % stuck-at faults.
    let mut faulty_array = engine.array().clone();
    let model = FaultModel::new(0.02, 0.7).expect("fault model");
    let faults = model
        .inject(&mut faulty_array, &mut seeded_rng(77))
        .expect("inject");
    assert!(!faults.is_empty(), "expected some injected faults");

    // Evaluate the faulty array manually through the same activation path.
    let mut correct = 0usize;
    for (sample, label) in split.test.iter() {
        let bins = engine.quantized().discretize_sample(sample).expect("bins");
        let activation =
            febim_suite::crossbar::Activation::from_observation(faulty_array.layout(), &bins)
                .expect("activation");
        let currents = faulty_array
            .wordline_currents(&activation)
            .expect("currents");
        let winner = febim_suite::bayes::argmax(&currents).expect("winner");
        if winner == label {
            correct += 1;
        }
    }
    let faulty_accuracy = correct as f64 / split.test.n_samples() as f64;

    assert!(clean_accuracy > 0.85, "clean accuracy {clean_accuracy}");
    // A 2 % defect rate on a 192-cell array should cost only a modest number
    // of decisions.
    assert!(
        clean_accuracy - faulty_accuracy < 0.25,
        "clean {clean_accuracy} vs faulty {faulty_accuracy}"
    );
    assert!(faulty_accuracy > 0.6, "faulty accuracy {faulty_accuracy}");
}

#[test]
fn tile_faults_degrade_the_fabric_identically_to_the_monolithic_array() {
    // Deploy the same trained model monolithically and across a 2x24-tile
    // fabric (a 2x3 grid at iris scale), inject the same random stuck-at
    // faults into both — the row-major draw order guarantees the same seed
    // defects the same global cells, landing in four different tiles — and
    // require bit-identical degraded reads everywhere.
    let dataset = iris_like(5003).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5003)).expect("split");
    let config = EngineConfig::febim_default();
    let engine = FebimEngine::fit(&split.train, config.clone()).expect("engine");
    let tiled = FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 24).unwrap())
        .expect("tiled engine");
    let clean_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;

    let mut faulty_array = engine.array().clone();
    let mut faulty_grid = tiled.grid().clone();
    let model = FaultModel::new(0.04, 0.6).expect("fault model");
    let array_faults = model
        .inject(&mut faulty_array, &mut seeded_rng(177))
        .expect("inject array");
    let grid_faults = model
        .inject_grid(&mut faulty_grid, &mut seeded_rng(177))
        .expect("inject grid");
    assert_eq!(array_faults, grid_faults, "defect maps must match per seed");
    assert!(!grid_faults.is_empty(), "expected some injected faults");
    // The defects must spread across more than one tile of the 2x3 grid.
    let plan = tiled.tiled_program().plan();
    let mut defective_tiles: Vec<(usize, usize)> = grid_faults
        .iter()
        .map(|fault| plan.tile_of(fault.row, fault.column).expect("tile"))
        .collect();
    defective_tiles.sort_unstable();
    defective_tiles.dedup();
    assert!(
        defective_tiles.len() > 1,
        "faults landed in a single tile: {defective_tiles:?}"
    );

    // Every decision of the degraded fabric matches the degraded array.
    let mut correct = 0usize;
    for (sample, label) in split.test.iter() {
        let bins = engine.quantized().discretize_sample(sample).expect("bins");
        let activation =
            Activation::from_observation(faulty_array.layout(), &bins).expect("activation");
        let array_currents = faulty_array
            .wordline_currents(&activation)
            .expect("array currents");
        let grid_currents = faulty_grid
            .wordline_currents(&activation)
            .expect("grid currents");
        assert_eq!(
            array_currents, grid_currents,
            "degraded reads diverged between deployments"
        );
        let winner = febim_suite::bayes::argmax(&grid_currents).expect("winner");
        if winner == label {
            correct += 1;
        }
    }
    let faulty_accuracy = correct as f64 / split.test.n_samples() as f64;
    assert!(
        clean_accuracy - faulty_accuracy < 0.35,
        "clean {clean_accuracy} vs faulty {faulty_accuracy}"
    );
}

#[test]
fn targeted_tile_fault_biases_the_fabric_like_the_array() {
    // The single-cell fault entry point addresses the fabric by global
    // coordinates: sticking the same cells in a tile and in the monolithic
    // array must bias the same row to the same win.
    let dataset = iris_like(5004).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5004)).expect("split");
    let config = EngineConfig::febim_default();
    let engine = FebimEngine::fit(&split.train, config.clone()).expect("engine");
    let tiled = FebimEngine::fit_tiled(&split.train, config, TileShape::new(2, 24).unwrap())
        .expect("tiled engine");
    let mut faulty_array = engine.array().clone();
    let mut faulty_grid = tiled.grid().clone();
    let bins = vec![0usize; 4];
    for feature in 0..4 {
        let column = faulty_array
            .layout()
            .likelihood_column(feature, 0)
            .expect("column");
        febim_suite::crossbar::apply_fault(
            &mut faulty_array,
            2,
            column,
            FaultKind::StuckProgrammed,
        )
        .expect("array fault");
        apply_grid_fault(&mut faulty_grid, 2, column, FaultKind::StuckProgrammed)
            .expect("grid fault");
    }
    let activation =
        Activation::from_observation(faulty_array.layout(), &bins).expect("activation");
    let array_currents = faulty_array
        .wordline_currents(&activation)
        .expect("array currents");
    let grid_currents = faulty_grid
        .wordline_currents(&activation)
        .expect("grid currents");
    assert_eq!(array_currents, grid_currents);
    assert_eq!(
        febim_suite::bayes::argmax(&grid_currents).expect("winner"),
        2,
        "currents {grid_currents:?}"
    );
}

#[test]
fn scrub_heals_scheduled_strikes_back_to_the_fresh_read_path() {
    // The time-indexed chaos path: scheduled faults strike while the engine
    // ages, pending counts drain on time, and one scrub pass restores the
    // exact fresh bit pattern — the detection/repair loop the serving
    // pool's background scrubber runs between batches.
    let dataset = iris_like(5005).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5005)).expect("split");
    let mut engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let fresh_map = engine.current_map();
    let fresh_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;

    engine.set_fault_schedule(FaultSchedule::new(vec![
        ScheduledFault {
            at_tick: 3,
            row: 1,
            column: 3,
            kind: FaultKind::StuckErased,
            permanent: false,
        },
        ScheduledFault {
            at_tick: 7,
            row: 2,
            column: 5,
            kind: FaultKind::StuckProgrammed,
            permanent: false,
        },
    ]));
    assert_eq!(engine.pending_faults(), 2);
    engine.advance_time(5);
    assert_eq!(engine.pending_faults(), 1, "only the tick-3 fault is due");
    engine.advance_time(5);
    assert_eq!(engine.pending_faults(), 0, "the tick-7 fault struck too");

    let outcome = engine.scrub(1e-6).expect("scrub");
    assert!(outcome.fully_repaired(), "transient faults heal in place");
    assert!(outcome.cells_repaired >= 1, "the strikes must be detected");
    assert_eq!(
        engine.current_map(),
        fresh_map,
        "repair must restore the exact fresh bit pattern"
    );
    assert_eq!(
        engine.evaluate(&split.test).expect("evaluate").accuracy,
        fresh_accuracy
    );
}

#[test]
fn stuck_programmed_faults_bias_towards_the_faulty_row() {
    let dataset = iris_like(5002).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(5002)).expect("split");
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let mut faulty_array = engine.array().clone();
    // Stick every cell row 2 contributes for the all-zero-bin observation to
    // the fully programmed state: that row must then win the competition for
    // that observation regardless of the trained likelihoods.
    let bins = vec![0usize; 4];
    for feature in 0..4 {
        let column = faulty_array
            .layout()
            .likelihood_column(feature, 0)
            .expect("column");
        febim_suite::crossbar::apply_fault(
            &mut faulty_array,
            2,
            column,
            FaultKind::StuckProgrammed,
        )
        .expect("fault");
    }
    let activation =
        febim_suite::crossbar::Activation::from_observation(faulty_array.layout(), &bins)
            .expect("activation");
    let currents = faulty_array
        .wordline_currents(&activation)
        .expect("currents");
    let winner = febim_suite::bayes::argmax(&currents).expect("winner");
    assert_eq!(winner, 2, "currents {currents:?}");
}
