//! Self-healing chaos matrix: seeded fault schedules strike engines on
//! every physical backend while the scrub scheduler runs its periodic
//! BIST-style signature checks. The invariants under test:
//!
//! * **Detection latency** — any harmful defect introduced inside a scrub
//!   interval is detected and repaired by the check that closes that
//!   interval (the engine's worst effective threshold shift returns to
//!   zero within one period of every strike).
//! * **Restoration** — after the chaos horizon passes and the scrubber
//!   has healed the array (in place for transient faults, via spare-row
//!   remaps for permanent ones), accuracy and the raw current map are
//!   bit-identical to the fresh engine.
//! * **Quarantine and failover** — a serving pool whose replica takes an
//!   unrepairable hit quarantines it and keeps answering every ticket
//!   exactly once from the survivors; a fully quarantined pool degrades
//!   to the exact software fallback instead of going dark.
//! * **Remap transparency** (property-based) — spare-row repair of a
//!   permanent fault is invisible to the read path for arbitrary fault
//!   coordinates, tile shapes and spare budgets.

use proptest::prelude::*;
use rand::Rng;

use febim_suite::data::Dataset;
use febim_suite::prelude::*;

/// A deterministic chaos campaign: `events` stuck-at faults at seeded
/// random coordinates and strike times inside `(0, horizon)`.
fn chaos_schedule(seed: u64, events: usize, horizon: u64, permanent: bool) -> FaultSchedule {
    let mut rng = seeded_rng(seed);
    let faults = (0..events)
        .map(|_| ScheduledFault {
            at_tick: rng.gen_range(1..horizon),
            row: rng.gen_range(0..3),
            column: rng.gen_range(0..48),
            kind: if rng.gen_range(0..2_u32) == 0 {
                FaultKind::StuckErased
            } else {
                FaultKind::StuckProgrammed
            },
            permanent,
        })
        .collect();
    FaultSchedule::new(faults)
}

/// Drives `engine` through the whole chaos horizon in `interval`-tick scrub
/// periods and asserts the detect-within-one-period invariant after every
/// check: no harmful deviation survives the check that closes its window.
fn run_chaos_campaign<B: InferenceBackend>(
    engine: &mut FebimEngine<B>,
    interval: u64,
    horizon: u64,
) -> ScrubScheduler {
    let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(interval, 1e-6)).expect("scheduler");
    let mut elapsed = 0;
    while elapsed < horizon + interval {
        scheduler.tick(engine, interval).expect("scrub tick");
        elapsed += interval;
        assert_eq!(
            engine.worst_effective_shift(),
            0.0,
            "a defect survived past the scrub that closed its strike window \
             (elapsed {elapsed} ticks, interval {interval})"
        );
    }
    assert_eq!(engine.pending_faults(), 0, "the chaos horizon must elapse");
    scheduler
}

fn test_samples(test: &Dataset) -> Vec<Vec<f64>> {
    (0..test.n_samples())
        .map(|index| test.sample(index).expect("sample").to_vec())
        .collect()
}

/// Transient chaos on the monolithic crossbar: every strike is healed in
/// place within one scrub period, and once the horizon passes the engine
/// is bit-identical to its fresh self — same current map, same accuracy.
#[test]
fn transient_chaos_on_the_crossbar_is_healed_within_one_period() {
    let dataset = iris_like(7101).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7101)).expect("split");
    let mut engine = FebimEngine::fit(&split.train, EngineConfig::febim_default()).expect("engine");
    let fresh_map = engine.current_map();
    let fresh_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;

    engine.set_fault_schedule(chaos_schedule(42, 12, 200, false));
    let scheduler = run_chaos_campaign(&mut engine, 10, 200);

    assert!(
        scheduler.report().faulty_scrubs >= 1,
        "a 12-event campaign must land at least one harmful defect"
    );
    assert!(scheduler.health().is_serving());
    assert_eq!(
        engine.current_map(),
        fresh_map,
        "in-place repair must restore the exact fresh bit pattern"
    );
    let healed_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;
    assert_eq!(
        healed_accuracy, fresh_accuracy,
        "healed accuracy must match the fresh baseline exactly"
    );
}

/// Permanent chaos on a tiled fabric with spare rows: stuck cells cannot be
/// rewritten, so the scrubber remaps their wordlines onto spares — and the
/// fabric still ends the campaign serving, bit-identical to fresh.
#[test]
fn permanent_chaos_on_a_spared_fabric_remaps_and_stays_serving() {
    let dataset = iris_like(7103).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7103)).expect("split");
    let shape = TileShape::new(2, 24).expect("shape").with_spare_rows(2);
    let mut engine =
        FebimEngine::fit_tiled(&split.train, EngineConfig::febim_default(), shape).expect("engine");
    let fresh_map = engine.current_map();
    let fresh_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;

    // Few events: each permanent fault consumes a spare row of its tile.
    engine.set_fault_schedule(chaos_schedule(43, 3, 120, true));
    let scheduler = run_chaos_campaign(&mut engine, 10, 120);

    assert!(
        scheduler.report().outcome.rows_remapped >= 1,
        "a permanent harmful defect must consume a spare row"
    );
    assert!(
        scheduler.health().is_serving(),
        "with spare budget left the fabric must keep serving"
    );
    assert_eq!(
        engine.current_map(),
        fresh_map,
        "spare-row remaps must be invisible to the read path"
    );
    let healed_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;
    assert_eq!(healed_accuracy, fresh_accuracy);
}

/// The software backend has no physical cells: the same chaos schedule is
/// a no-op, scrubs stay clean and accuracy never moves.
#[test]
fn the_software_backend_is_immune_to_chaos() {
    let dataset = iris_like(7105).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7105)).expect("split");
    let mut engine =
        FebimEngine::fit_software(&split.train, EngineConfig::febim_default()).expect("engine");
    let fresh_accuracy = engine.evaluate(&split.test).expect("evaluate").accuracy;
    engine.set_fault_schedule(chaos_schedule(44, 12, 200, true));
    assert_eq!(engine.pending_faults(), 0, "no cells, nothing to strike");
    let scheduler = run_chaos_campaign(&mut engine, 10, 200);
    assert_eq!(scheduler.health(), ReplicaHealth::Healthy);
    assert_eq!(scheduler.report().faulty_scrubs, 0);
    assert_eq!(
        engine.evaluate(&split.test).expect("evaluate").accuracy,
        fresh_accuracy
    );
}

/// Blocks until `pool` has quarantined `expected` replicas, forcing scrub
/// checks as fast as the workers will take them.
fn await_quarantined(pool: &ServingPool, expected: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        pool.request_scrub();
        let quarantined = pool
            .worker_health()
            .iter()
            .filter(|health| !health.is_serving())
            .count();
        if quarantined >= expected {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never quarantined {expected} replicas: {:?}",
            pool.worker_health()
        );
        std::thread::yield_now();
    }
}

/// A pool whose replica 0 takes an unrepairable hit: the scrub between
/// batches quarantines it, the survivor absorbs its traffic, and every
/// ticket across the chaos is answered exactly once with the bit-correct
/// prediction.
#[test]
fn quarantine_under_load_answers_every_ticket_exactly_once() {
    let dataset = iris_like(7107).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7107)).expect("split");
    let config = EngineConfig::febim_default();
    let mut struck = FebimEngine::fit(&split.train, config.clone()).expect("struck engine");
    struck.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
        at_tick: 1,
        row: 1,
        column: 3,
        kind: FaultKind::StuckErased,
        permanent: true,
    }]));
    // Land the strike before deployment: the batch scheduler makes no
    // guarantee about *which* replica ages first under light load, so a
    // deterministic chaos test strikes the cell up front and lets the
    // pool's own scrub do the detection and quarantine.
    struck.advance_time(2);
    assert_eq!(struck.pending_faults(), 0, "the strike must have landed");
    let healthy = FebimEngine::fit(&split.train, config.clone()).expect("healthy engine");
    let reference = FebimEngine::fit(&split.train, config).expect("reference engine");

    let pool = ServingPool::new(
        vec![struck, healthy],
        ServingConfig::febim_default()
            .with_max_batch(4)
            .with_ticks_per_batch(5)
            .with_scrub(ScrubPolicy::new(1_000_000, 1e-3)),
    )
    .expect("pool");

    let samples = test_samples(&split.test);
    // Phase 1: traffic against the struck pool (answers may come off the
    // corrupted replica, so only exactly-once is asserted), then forced
    // scrubs until the defect is caught and the replica quarantined.
    let warmup = pool.serve(&samples[..8.min(samples.len())]);
    assert!(warmup.iter().all(Result::is_ok), "warmup must be answered");
    await_quarantined(&pool, 1);
    assert_eq!(pool.serving_replicas(), 1);

    // Phase 2: all post-quarantine traffic lands on the survivor and
    // matches the sequential reference bit for bit.
    let answers = pool.serve(&samples);
    for (index, answer) in answers.iter().enumerate() {
        let outcome = answer.as_ref().expect("post-quarantine answer");
        assert_eq!(outcome.worker, 1, "quarantined replica must not serve");
        assert_eq!(
            outcome.prediction,
            reference
                .predict(split.test.sample(index).expect("sample"))
                .expect("reference prediction")
        );
    }

    let submitted = (warmup.len() + answers.len()) as u64;
    let stats = pool.shutdown();
    assert_eq!(stats.requests, submitted, "every ticket answered once");
    assert_eq!(stats.shutdown_rejected, 0);
    assert_eq!(stats.failed_requests, 0);
    assert_eq!(stats.crashed_workers, 0);
    assert_eq!(stats.quarantined_workers, 1);
    assert!(stats.scrubs >= 1, "the quarantine came from a real scrub");
    assert!(stats.faults_detected >= 1);
    assert!(stats.health_transitions >= 1);
}

/// Chaos takes out every replica of a tiled-fabric pool (no spare rows, a
/// permanent stuck cell each): the pool degrades to the exact software
/// fallback instead of rejecting traffic, and the fallback predictions
/// match the full-precision software engine.
#[test]
fn a_fully_quarantined_fabric_pool_degrades_to_software_fallback() {
    let dataset = iris_like(7109).expect("dataset");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7109)).expect("split");
    let config = EngineConfig::febim_default();
    let shape = TileShape::new(2, 24).expect("shape");
    let mut engine =
        FebimEngine::fit_tiled(&split.train, config.clone(), shape).expect("fabric engine");
    engine.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
        at_tick: 1,
        row: 1,
        column: 3,
        kind: FaultKind::StuckErased,
        permanent: true,
    }]));
    // Strike before replication so both clones carry the stuck cell.
    engine.advance_time(2);
    assert_eq!(engine.pending_faults(), 0, "the strike must have landed");
    let software = FebimEngine::fit_software(&split.train, config).expect("software engine");

    let pool = ServingPool::replicate(
        &engine,
        2,
        ServingConfig::febim_default()
            .with_max_batch(4)
            .with_ticks_per_batch(5)
            .with_scrub(ScrubPolicy::new(1_000_000, 1e-3)),
    )
    .expect("pool");

    let samples = test_samples(&split.test);
    let warmup = pool.serve(&samples[..8.min(samples.len())]);
    assert!(warmup.iter().all(Result::is_ok));
    await_quarantined(&pool, 2);
    assert_eq!(pool.serving_replicas(), 0);

    let answers = pool.serve(&samples);
    for (index, answer) in answers.iter().enumerate() {
        let outcome = answer.as_ref().expect("fallback answer");
        assert_eq!(
            outcome.prediction,
            software
                .predict(split.test.sample(index).expect("sample"))
                .expect("software prediction"),
            "fallback must answer with the exact software model"
        );
    }

    let stats = pool.shutdown();
    assert_eq!(
        stats.requests,
        (warmup.len() + answers.len()) as u64,
        "every ticket answered exactly once through the degraded pool"
    );
    assert_eq!(stats.quarantined_workers, 2);
    assert_eq!(stats.shutdown_rejected, 0);
    assert!(
        stats.fallback_served >= answers.len() as u64,
        "post-quarantine traffic must be served by the software fallback"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Spare-row repair is transparent for arbitrary permanent-fault
    /// coordinates, training seeds and tile geometries: after the scrub
    /// remaps the stuck wordline, the current map and every prediction are
    /// bit-identical to the fresh fabric.
    #[test]
    fn spare_row_remap_is_bit_transparent(
        seed in 0u64..20,
        row in 0usize..3,
        column in 0usize..48,
        tile_rows in 1usize..4,
        tile_columns in 8usize..32,
    ) {
        let dataset = iris_like(seed).unwrap();
        let split = stratified_split(&dataset, 0.7, &mut seeded_rng(seed)).unwrap();
        let shape = TileShape::new(tile_rows, tile_columns).unwrap().with_spare_rows(1);
        let mut engine =
            FebimEngine::fit_tiled(&split.train, EngineConfig::febim_default(), shape).unwrap();
        let fresh_map = engine.current_map();
        let fresh: Vec<usize> = (0..split.test.n_samples())
            .map(|index| engine.predict(split.test.sample(index).unwrap()).unwrap())
            .collect();

        engine.set_fault_schedule(FaultSchedule::new(vec![ScheduledFault {
            at_tick: 1,
            row,
            column,
            kind: FaultKind::StuckErased,
            permanent: true,
        }]));
        engine.advance_time(2);
        let outcome = engine.scrub(1e-6).unwrap();
        prop_assert!(outcome.fully_repaired(), "one spare row covers one stuck wordline");

        prop_assert_eq!(engine.current_map(), fresh_map);
        for (index, expected) in fresh.iter().enumerate() {
            let healed = engine.predict(split.test.sample(index).unwrap()).unwrap();
            prop_assert_eq!(healed, *expected);
        }
    }
}
