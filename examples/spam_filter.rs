//! Spam-filter example: the Bayesian classification task the paper names as a
//! canonical use case (Sec. 4.2).
//!
//! A categorical naive Bayes model over bag-of-keywords evidence is trained
//! in software, and the same task is then expressed as continuous keyword
//! frequencies so it can be deployed on the FeBiM crossbar via the Gaussian
//! naive Bayes path.
//!
//! Run with:
//!
//! ```text
//! cargo run --example spam_filter
//! ```

use febim_suite::data::synthetic::{ClassSpec, SyntheticSpec};
use febim_suite::prelude::*;

/// Keyword presence corpus: (contains_link, contains_offer, contains_urgent,
/// knows_recipient). Labels: 0 = ham, 1 = spam.
fn keyword_corpus() -> (Vec<Vec<usize>>, Vec<usize>) {
    let samples = vec![
        vec![1, 1, 1, 0],
        vec![1, 1, 0, 0],
        vec![1, 0, 1, 0],
        vec![0, 1, 1, 0],
        vec![1, 1, 1, 1],
        vec![0, 0, 0, 1],
        vec![0, 0, 1, 1],
        vec![1, 0, 0, 1],
        vec![0, 1, 0, 1],
        vec![0, 0, 0, 1],
        vec![0, 0, 0, 0],
        vec![0, 1, 0, 1],
    ];
    let labels = vec![1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
    (samples, labels)
}

/// Continuous feature view of the same problem: per-message keyword
/// frequencies (links per kB, offer words per kB, urgency words per kB,
/// sender reputation score).
fn frequency_corpus() -> SyntheticSpec {
    SyntheticSpec {
        name: "mail-frequencies".to_string(),
        feature_names: vec![
            "link_density".to_string(),
            "offer_density".to_string(),
            "urgency_density".to_string(),
            "sender_reputation".to_string(),
        ],
        classes: vec![
            // Ham.
            ClassSpec::new(vec![0.3, 0.2, 0.1, 0.8], vec![0.2, 0.15, 0.1, 0.1], 120),
            // Spam.
            ClassSpec::new(vec![2.5, 1.8, 1.2, 0.25], vec![0.9, 0.7, 0.6, 0.15], 80),
        ],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: categorical naive Bayes over keyword presence.
    println!("-- categorical naive Bayes (keyword presence) --");
    let (samples, labels) = keyword_corpus();
    let model = CategoricalNaiveBayes::fit(&samples, &labels, 2, &[2, 2, 2, 2], 1.0)?;
    let test_messages = [
        ("newsletter from a known sender", vec![1, 0, 0, 1]),
        ("unsolicited urgent offer with links", vec![1, 1, 1, 0]),
        ("plain reply from a colleague", vec![0, 0, 0, 1]),
    ];
    for (description, features) in &test_messages {
        let class = model.predict(features)?;
        println!("{description}: {}", if class == 1 { "SPAM" } else { "ham" });
    }

    // Part 2: the same task with continuous keyword frequencies, deployed on
    // the FeBiM crossbar. Spam filtering has a non-uniform prior (more ham
    // than spam), so the compiled crossbar keeps its prior column.
    println!("\n-- FeBiM in-memory spam filter (keyword frequencies) --");
    let corpus = frequency_corpus().generate(555)?;
    let split = stratified_split(&corpus, 0.5, &mut seeded_rng(555))?;
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
    let report = engine.evaluate(&split.test)?;
    println!(
        "crossbar geometry : {} rows x {} columns (prior column: {})",
        engine.array().layout().rows(),
        engine.array().layout().columns(),
        engine.array().layout().has_prior()
    );
    println!(
        "software accuracy : {:.2} %",
        100.0 * engine.software_model().score(&split.test)?
    );
    println!("in-memory accuracy: {:.2} %", 100.0 * report.accuracy);
    println!(
        "per-message cost  : {:.2} fJ, {:.0} ps",
        report.mean_energy * 1e15,
        report.mean_delay * 1e12
    );

    let suspicious = vec![3.1, 2.2, 1.5, 0.2];
    let benign = vec![0.2, 0.1, 0.05, 0.9];
    println!(
        "suspicious message -> {}",
        if engine.predict(&suspicious)? == 1 {
            "SPAM"
        } else {
            "ham"
        }
    );
    println!(
        "benign message     -> {}",
        if engine.predict(&benign)? == 1 {
            "SPAM"
        } else {
            "ham"
        }
    );
    Ok(())
}
