//! Serving: concurrent clients querying one compiled model through a
//! [`ServingPool`].
//!
//! A trained + quantized model is deployed once (here on the tiled fabric),
//! replicated across pool workers, and four client threads fire independent
//! requests at the bounded queue. The pool coalesces them into batches,
//! serves every batch through the grouped-read path, and reports per-batch
//! amortized delay/energy telemetry alongside each answer. Backpressure and
//! graceful shutdown are demonstrated on the way.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use febim_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train, quantize and deploy the model across a 2x3 grid of 2x24
    //    tiles, then replicate the engine into a 2-worker serving pool.
    let dataset = iris_like(7)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(7))?;
    let engine = FebimEngine::fit_tiled(
        &split.train,
        EngineConfig::febim_default(),
        TileShape::new(2, 24)?,
    )?;
    let plan = *engine.tiled_program().plan();
    let serving = ServingConfig::febim_default()
        .with_max_batch(8)
        .with_queue_depth(32);
    let pool = Arc::new(ServingPool::replicate(&engine, 2, serving)?);
    println!(
        "pool: {} replicas of a {}x{} tile grid, batches up to {}, queue depth {}",
        pool.replicas(),
        plan.row_tiles(),
        plan.col_tiles(),
        pool.config().max_batch,
        pool.config().queue_depth,
    );

    // 2. Four concurrent clients, each classifying a slice of the test set.
    let samples: Arc<Vec<Vec<f64>>> = Arc::new(
        (0..split.test.n_samples())
            .map(|index| split.test.sample(index).expect("in-range sample").to_vec())
            .collect(),
    );
    let clients = 4;
    let mut handles = Vec::new();
    for client in 0..clients {
        let pool = Arc::clone(&pool);
        let samples = Arc::clone(&samples);
        handles.push(std::thread::spawn(move || {
            let mut answered = 0usize;
            let mut grouped = 0usize;
            for sample in samples.iter().skip(client).step_by(clients) {
                // Non-blocking submit with retry demonstrates backpressure:
                // a full queue bounces the request instead of buffering it
                // without limit.
                let ticket = loop {
                    match pool.submit(sample.clone()) {
                        Ok(ticket) => break ticket,
                        Err(ServingError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(err) => panic!("submit failed: {err}"),
                    }
                };
                // Bounded wait: `wait_timeout` hands the ticket back on
                // expiry instead of blocking forever, so a client can
                // interleave other work (or give up) while the answer is
                // still in flight. Here it simply retries until served.
                let mut pending = ticket;
                let outcome = loop {
                    match pending.wait_timeout(10_000) {
                        Ok(result) => break result.expect("served answer"),
                        Err(ticket) => pending = ticket,
                    }
                };
                answered += 1;
                if outcome.batch.reads > 1 {
                    grouped += 1;
                }
            }
            (client, answered, grouped)
        }));
    }
    for handle in handles {
        let (client, answered, grouped) = handle.join().expect("client thread");
        println!("client {client}: {answered} answers, {grouped} rode in multi-request batches");
    }

    // 3. Graceful shutdown drains the queue and returns the run statistics.
    let pool = Arc::into_inner(pool).expect("all clients done");
    let stats = pool.shutdown();
    println!(
        "served {} requests in {} batches (mean batch {:.2}, largest {})",
        stats.requests, stats.batches, stats.mean_batch_size, stats.largest_batch,
    );
    println!(
        "amortized grouped reads: delay x{:.3}, energy x{:.3} of the sequential baseline",
        stats.delay_ratio(),
        stats.energy_ratio(),
    );
    for report in &stats.workers {
        println!(
            "  worker {}: {} requests over {} batches",
            report.worker, report.requests, report.batches,
        );
    }
    Ok(())
}
