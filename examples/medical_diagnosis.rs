//! Medical-diagnosis example: the kind of low-data, explainability-critical
//! workload that motivates Bayesian inference in the paper's introduction.
//!
//! Two views of the same problem are shown:
//!
//! 1. a hand-built discrete Bayesian network (expert knowledge, exact
//!    enumeration inference), and
//! 2. a Gaussian naive Bayes classifier trained on a small synthetic patient
//!    cohort and deployed on the FeBiM crossbar, demonstrating that the
//!    in-memory engine reaches the same diagnoses as the software model.
//!
//! Run with:
//!
//! ```text
//! cargo run --example medical_diagnosis
//! ```

use febim_suite::data::synthetic::{ClassSpec, SyntheticSpec};
use febim_suite::prelude::*;

fn expert_network() -> Result<BayesianNetwork, Box<dyn std::error::Error>> {
    // Variables (topological order): Disease -> {Fever, Cough}.
    // The disease states are 0 = healthy, 1 = flu, 2 = pneumonia.
    let network = BayesianNetwork::new(vec![
        Node {
            name: "disease".to_string(),
            cardinality: 3,
            parents: vec![],
            cpt: vec![vec![0.85, 0.12, 0.03]],
        },
        Node {
            name: "fever".to_string(),
            cardinality: 2,
            parents: vec![0],
            cpt: vec![vec![0.95, 0.05], vec![0.25, 0.75], vec![0.10, 0.90]],
        },
        Node {
            name: "cough".to_string(),
            cardinality: 2,
            parents: vec![0],
            cpt: vec![vec![0.90, 0.10], vec![0.30, 0.70], vec![0.05, 0.95]],
        },
    ])?;
    Ok(network)
}

/// Synthetic patient cohort: 3 diagnoses described by 4 continuous vitals
/// (temperature, respiratory rate, oxygen saturation, CRP level).
fn patient_cohort() -> SyntheticSpec {
    SyntheticSpec {
        name: "patients".to_string(),
        feature_names: vec![
            "temperature_c".to_string(),
            "respiratory_rate".to_string(),
            "spo2_percent".to_string(),
            "crp_mg_l".to_string(),
        ],
        classes: vec![
            // Healthy.
            ClassSpec::new(vec![36.8, 14.0, 98.0, 3.0], vec![0.3, 1.5, 1.0, 2.0], 60),
            // Flu.
            ClassSpec::new(vec![38.6, 18.0, 96.0, 25.0], vec![0.5, 2.0, 1.5, 10.0], 45),
            // Pneumonia.
            ClassSpec::new(vec![39.2, 26.0, 90.0, 120.0], vec![0.6, 3.0, 3.0, 40.0], 30),
        ],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: expert-specified Bayesian network.
    let network = expert_network()?;
    let names = ["healthy", "flu", "pneumonia"];
    println!("-- expert Bayesian network (exact enumeration) --");
    for (fever, cough) in [(0usize, 0usize), (1, 0), (1, 1)] {
        let posterior = network.posterior(
            0,
            &[
                Evidence {
                    variable: 1,
                    state: fever,
                },
                Evidence {
                    variable: 2,
                    state: cough,
                },
            ],
        )?;
        let map = network.map_state(
            0,
            &[
                Evidence {
                    variable: 1,
                    state: fever,
                },
                Evidence {
                    variable: 2,
                    state: cough,
                },
            ],
        )?;
        println!(
            "fever={fever} cough={cough}: P = [{:.3}, {:.3}, {:.3}] -> diagnosis {}",
            posterior[0], posterior[1], posterior[2], names[map]
        );
    }

    // Part 2: data-driven diagnosis on the FeBiM crossbar.
    println!("\n-- data-driven GNBC on the FeBiM crossbar --");
    let cohort = patient_cohort().generate(77)?;
    let split = stratified_split(&cohort, 0.5, &mut seeded_rng(77))?;
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
    let report = engine.evaluate(&split.test)?;
    let software = engine.software_model().score(&split.test)?;
    println!(
        "crossbar geometry: {} classes x {} bitlines (prior column: {})",
        engine.array().layout().rows(),
        engine.array().layout().columns(),
        engine.array().layout().has_prior(),
    );
    println!("software accuracy : {:.2} %", 100.0 * software);
    println!("in-memory accuracy: {:.2} %", 100.0 * report.accuracy);
    println!(
        "energy per diagnosis: {:.2} fJ, delay {:.0} ps",
        report.mean_energy * 1e15,
        report.mean_delay * 1e12
    );

    // Diagnose three representative patients.
    let patients = [
        ("afebrile routine check", vec![36.7, 13.0, 98.5, 2.0]),
        ("feverish with mild cough", vec![38.8, 19.0, 95.5, 30.0]),
        ("severe respiratory distress", vec![39.5, 28.0, 88.0, 150.0]),
    ];
    for (description, vitals) in patients {
        let outcome = engine.infer(&vitals)?;
        println!("{description}: diagnosed as {}", names[outcome.prediction]);
    }
    Ok(())
}
