//! Self-healing: online fault detection, spare-row repair and replica
//! quarantine/failover under a seeded chaos schedule.
//!
//! Three acts:
//!
//! 1. **Scrub and repair.** A tiled fabric with spare rows takes scheduled
//!    stuck-at hits while a [`ScrubScheduler`] runs periodic BIST-style
//!    signature checks: transient faults are healed in place, a permanent
//!    stuck cell consumes a spare row, and the replica's health walks
//!    Healthy → Degraded → Healthy as the chaos passes.
//! 2. **Quarantine and failover.** A two-replica serving pool takes an
//!    unrepairable hit on replica 0 (no spare rows this time): the
//!    between-batches scrub quarantines it and the survivor absorbs all
//!    traffic without dropping a single ticket.
//! 3. **Graceful degradation.** When chaos takes out *every* replica the
//!    pool falls back to the exact software model instead of going dark.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example self_healing
//! ```

use febim_suite::prelude::*;

fn chaos(permanent: bool) -> FaultSchedule {
    FaultSchedule::new(vec![
        ScheduledFault {
            at_tick: 25,
            row: 1,
            column: 3,
            kind: FaultKind::StuckErased,
            permanent: false,
        },
        ScheduledFault {
            at_tick: 55,
            row: 2,
            column: 7,
            kind: FaultKind::StuckProgrammed,
            permanent,
        },
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = iris_like(21)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(21))?;
    let config = EngineConfig::febim_default();

    // Act 1: scheduled chaos against a fabric with one spare row per tile,
    // scrubbed every 10 ticks.
    let shape = TileShape::new(2, 24)?.with_spare_rows(1);
    let mut engine = FebimEngine::fit_tiled(&split.train, config.clone(), shape)?;
    let fresh_accuracy = engine.evaluate(&split.test)?.accuracy;
    let fresh_map = engine.current_map();
    engine.set_fault_schedule(chaos(true));
    let mut scheduler = ScrubScheduler::new(ScrubPolicy::new(10, 1e-6))?;
    println!("act 1: chaos vs a spared fabric (scrub every 10 ticks)");
    for window in 1..=8 {
        let struck_before = engine.pending_faults();
        let outcome = scheduler.tick(&mut engine, 10)?;
        match outcome {
            Some(outcome) => println!(
                "  t={:3}: scrub found {} defect(s), repaired {} (rows remapped {}), \
                 health {:?}",
                window * 10,
                outcome.stuck_cells + outcome.cells_repaired,
                outcome.cells_repaired,
                outcome.rows_remapped,
                scheduler.health(),
            ),
            None => println!(
                "  t={:3}: clean ({} strike(s) pending), health {:?}",
                window * 10,
                struck_before,
                scheduler.health(),
            ),
        }
    }
    let healed_accuracy = engine.evaluate(&split.test)?.accuracy;
    assert_eq!(engine.current_map(), fresh_map);
    assert_eq!(healed_accuracy, fresh_accuracy);
    println!(
        "  healed: accuracy {:.4} == fresh {:.4}, bit pattern restored, \
         {} check(s) run, {} skipped as epoch no-ops\n",
        healed_accuracy,
        fresh_accuracy,
        scheduler.report().checks,
        scheduler.report().skipped_checks,
    );

    // Act 2: the same permanent hit against a pool replica with no spare
    // rows — unrepairable, so the scrub between batches quarantines it.
    let mut struck = FebimEngine::fit(&split.train, config.clone())?;
    struck.set_fault_schedule(chaos(true));
    // Land the strikes before deployment so the pool's own scrub owns the
    // whole detection story.
    struck.advance_time(60);
    let healthy = FebimEngine::fit(&split.train, config.clone())?;
    let serving = ServingConfig::febim_default()
        .with_max_batch(8)
        .with_scrub(ScrubPolicy::new(1_000_000, 1e-3));
    let pool = ServingPool::new(vec![struck, healthy], serving)?;
    let samples: Vec<Vec<f64>> = (0..split.test.n_samples())
        .map(|index| split.test.sample(index).expect("sample").to_vec())
        .collect();
    println!("act 2: the same chaos vs a 2-replica pool without spares");
    while pool
        .worker_health()
        .iter()
        .all(|health| health.is_serving())
    {
        pool.request_scrub();
        std::thread::yield_now();
    }
    println!(
        "  health after chaos: {:?}, {} of {} replicas serving",
        pool.worker_health(),
        pool.serving_replicas(),
        pool.replicas(),
    );
    let answers = pool.serve(&samples);
    let survivors: Vec<usize> = answers
        .iter()
        .map(|answer| answer.as_ref().expect("served").worker)
        .collect();
    assert!(survivors.iter().all(|&worker| worker == 1));
    let stats = pool.shutdown();
    println!(
        "  survivor served {} post-quarantine answers; stats: {} scrub(s), \
         {} defect(s) detected, {} health transition(s), {} quarantined\n",
        answers.len(),
        stats.scrubs,
        stats.faults_detected,
        stats.health_transitions,
        stats.quarantined_workers,
    );

    // Act 3: chaos takes out every replica — the pool degrades to the
    // exact software fallback instead of rejecting traffic.
    let mut doomed = FebimEngine::fit(&split.train, config.clone())?;
    doomed.set_fault_schedule(chaos(true));
    doomed.advance_time(60);
    let pool = ServingPool::replicate(
        &doomed,
        2,
        ServingConfig::febim_default()
            .with_max_batch(8)
            .with_scrub(ScrubPolicy::new(1_000_000, 1e-3)),
    )?;
    let software = FebimEngine::fit_software(&split.train, config)?;
    println!("act 3: chaos vs every replica of the pool");
    while pool.serving_replicas() > 0 {
        pool.request_scrub();
        std::thread::yield_now();
    }
    let answers = pool.serve(&samples);
    let mut agree = 0usize;
    for (index, answer) in answers.iter().enumerate() {
        let outcome = answer.as_ref().expect("fallback answer");
        let reference = software.predict(split.test.sample(index).expect("sample"))?;
        assert_eq!(outcome.prediction, reference);
        agree += 1;
    }
    let stats = pool.shutdown();
    println!(
        "  0 physical replicas left; software fallback answered {} request(s) \
         ({agree} verified against the exact software model, {} recorded as fallback)",
        answers.len(),
        stats.fallback_served,
    );
    Ok(())
}
