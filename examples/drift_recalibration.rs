//! Drift-and-recalibration walkthrough: conductances as functions of time
//! and read history.
//!
//! Programs an iris-scale array under a full non-ideality stack (retention
//! drift, tier-quantized read disturb, wordline/bitline IR-drop), ages it,
//! watches the accuracy respond, then hands the engine to an online
//! [`RecalibrationScheduler`] that reprograms drifted cells back to their
//! targets — and finally prices the whole maintenance schedule with a
//! Monte-Carlo noise campaign.
//!
//! Run with:
//!
//! ```text
//! cargo run --example drift_recalibration
//! ```

use febim_suite::prelude::*;
use febim_suite::quant::QuantConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = iris_like(909)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(909))?;

    // A physically harsh stack so every effect shows up at example scale:
    // log-law retention drift with a 100-tick first decade, a disturb tier
    // every 64 wordline reads, and 2 ohm of metal per cell pitch.
    let stack = NonIdealityStack::ideal()
        .with_drift(RetentionDrift::new(0.05, 100))
        .with_disturb(ReadDisturb::new(64, 0.002))
        .with_wire(WireResistance::uniform(2.0));
    let config = EngineConfig::febim_default().with_non_idealities(stack);
    let mut engine = FebimEngine::fit(&split.train, config.clone())?;

    println!("-- ageing an array under drift + read disturb + IR-drop --");
    let fresh = engine.evaluate(&split.test)?.accuracy;
    println!(
        "fresh accuracy: {:.2} %  (epoch {})",
        100.0 * fresh,
        engine.state_epoch()
    );
    for &age in &[1_000u64, 10_000, 100_000] {
        engine.advance_time(age);
        let aged = engine.evaluate(&split.test)?.accuracy;
        println!(
            "clock {:>7}: accuracy {:.2} %, worst effective V_TH shift {:.1} mV",
            engine.clock(),
            100.0 * aged,
            1e3 * engine.worst_effective_shift()
        );
    }

    // One manual recalibration pass: reprogram every cell drifted past 1 mV
    // with minimal Preisach-priced pulse trains.
    let outcome = engine.recalibrate(1e-3)?;
    let recovered = engine.evaluate(&split.test)?.accuracy;
    println!(
        "recalibrated {} cells in {} rows with {} pulses ({:.2} pJ): accuracy {:.2} %",
        outcome.cells_refreshed,
        outcome.rows_refreshed,
        outcome.pulses_applied,
        1e12 * outcome.energy_joules,
        100.0 * recovered
    );
    assert_eq!(recovered, fresh, "sigma = 0 reprogramming is bit-exact");

    // The online version: a scheduler that watches the array's state epoch,
    // skips the drift scan while nothing changed, and refreshes whenever the
    // worst effective shift passes tolerance.
    println!("\n-- online recalibration scheduler --");
    let mut scheduler = RecalibrationScheduler::new(RecalibrationPolicy::new(5_000, 1e-3))?;
    for window in 0..6 {
        if let Some(outcome) = scheduler.tick(&mut engine, 12_500)? {
            println!(
                "window {window}: refreshed {} cells ({} pulses)",
                outcome.cells_refreshed, outcome.pulses_applied
            );
        } else {
            println!("window {window}: nothing to do");
        }
    }
    let report = scheduler.report();
    println!(
        "scheduler totals: {} scans + {} epoch-skips, {} refresh passes, {:.2} pJ",
        report.checks,
        report.skipped_checks,
        report.passes,
        1e12 * report.outcome.energy_joules
    );

    // Price the maintenance policy: fresh vs aged vs recovered accuracy per
    // severity scenario, epoch-parallel and deterministic per seed.
    println!("\n-- Monte-Carlo noise campaign --");
    let scenarios = [
        NoiseScenario::new(
            "mild-drift",
            NonIdealityStack::ideal().with_drift(RetentionDrift::new(0.02, 1_000)),
            50_000,
        ),
        NoiseScenario::new("harsh-stack", config.non_idealities, 50_000),
    ];
    let points = noise_campaign(
        &dataset,
        &EngineConfig::febim_default(),
        &[QuantConfig::febim_optimal()],
        &scenarios,
        1e-3,
        0.7,
        8,
        909,
    )?;
    println!("scenario       fresh [%]  aged [%]  recovered [%]  cells refreshed");
    for point in &points {
        println!(
            "{:<12}  {:>9.2}  {:>8.2}  {:>13.2}  {:>15}",
            point.label,
            100.0 * point.fresh.mean,
            100.0 * point.aged.mean,
            100.0 * point.recovered.mean,
            point.refresh.cells_refreshed
        );
    }
    Ok(())
}
