//! Tiled fabric: serve a model that is bigger than one physical crossbar.
//!
//! A real FeFET macro has a fixed tile size. When the compiled model's
//! layout exceeds it, `FebimEngine::fit_tiled` shards the program across a
//! grid of tiles — classes across tile rows, evidence columns across tile
//! columns — and merges the per-tile partial wordline currents before the
//! winner-take-all. The merged read is bit-identical to a monolithic array,
//! so tiling never changes a prediction; only delay and energy reflect the
//! physical split.
//!
//! Run with:
//!
//! ```text
//! cargo run --example tiled_fabric
//! ```

use febim_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train/test data and the paper's operating point.
    let dataset = iris_like(2025)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(2025))?;
    let config = EngineConfig::febim_default();

    // 2. The reference deployment: one monolithic 3×64 array.
    let monolithic = FebimEngine::fit(&split.train, config.clone())?;
    println!(
        "monolithic: {} wordlines x {} bitlines on a single array",
        monolithic.array().layout().rows(),
        monolithic.array().layout().columns(),
    );

    // 3. The same model on 2×48 tiles. The layout exceeds the tile in both
    //    dimensions (3 > 2 classes, 64 > 48 columns), so the planner emits a
    //    2×2 grid with ragged edge tiles.
    let tile = TileShape::new(2, 48)?;
    let fabric = FebimEngine::fit_tiled(&split.train, config, tile)?;
    let plan = fabric.tiled_program().plan();
    println!(
        "fabric:     {}x{} grid of {}x{} tiles ({} tiles, {:.1} % utilized)",
        plan.row_tiles(),
        plan.col_tiles(),
        plan.shape().rows,
        plan.shape().columns,
        plan.tile_count(),
        plan.utilization() * 100.0,
    );
    let info = fabric.backend_info();
    println!(
        "backend:    kind {:?} (`{}`), {} events x {} columns on {} tiles",
        info.kind, info.name, info.events, info.columns, info.tiles,
    );

    // 4. Both deployments decide every test sample identically.
    let reference = monolithic.evaluate(&split.test)?;
    let sharded = fabric.evaluate(&split.test)?;
    assert_eq!(reference.predictions, sharded.predictions);
    println!(
        "\naccuracy:   {:.2} % on both deployments ({} samples, bit-identical reads)",
        sharded.accuracy * 100.0,
        sharded.samples,
    );

    // 5. What tiling costs: every tile row re-drives its activated bitlines
    //    and the merge bus adds a per-tile-column load.
    let comparison = FabricComparison::new(&reference, &sharded, plan);
    println!(
        "telemetry:  delay x{:.2}, energy x{:.2} vs. the monolithic array",
        comparison.delay_ratio(),
        comparison.energy_ratio(),
    );
    println!("\n{}", comparison.to_table().to_pretty());

    // 6. The whole comparison serializes through the serde JSON emitters —
    //    the same machinery the `fabric` bench uses for BENCH_fabric.json.
    println!(
        "tile plan as JSON: {}",
        febim_suite::core::json::to_string(plan)
    );
    Ok(())
}
