//! Quickstart: train a Gaussian naive Bayes classifier on the iris-like
//! dataset, deploy it on the FeBiM FeFET crossbar and compare the in-memory
//! accuracy, delay and energy against the FP64 software baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use febim_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a deterministic synthetic stand-in for the iris dataset
    //    (150 samples, 4 features, 3 balanced classes).
    let dataset = iris_like(2024)?;
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(2024))?;
    println!(
        "dataset: {} samples, {} features, {} classes ({} train / {} test)",
        dataset.n_samples(),
        dataset.n_features(),
        dataset.n_classes(),
        split.train.n_samples(),
        split.test.n_samples(),
    );

    // 2. Build the engine at the paper's operating point (Q_f = 4, Q_l = 2):
    //    trains the GNBC, quantizes it, compiles it into a 3x64 crossbar and
    //    programs the multi-level FeFET cells.
    let engine = FebimEngine::fit(&split.train, EngineConfig::febim_default())?;
    println!(
        "crossbar: {} wordlines x {} bitlines, {} FeFET states per cell",
        engine.array().layout().rows(),
        engine.array().layout().columns(),
        engine.program().state_count(),
    );

    // 3. Run in-memory inference on the test set.
    let software_accuracy = engine.software_model().score(&split.test)?;
    let quantized_accuracy = engine.quantized().score(&split.test)?;
    let report = engine.evaluate(&split.test)?;
    println!(
        "software FP64 accuracy : {:.2} %",
        100.0 * software_accuracy
    );
    println!(
        "quantized accuracy     : {:.2} %",
        100.0 * quantized_accuracy
    );
    println!("in-memory accuracy     : {:.2} %", 100.0 * report.accuracy);
    println!(
        "mean inference delay   : {:.1} ps",
        report.mean_delay * 1e12
    );
    println!(
        "mean inference energy  : {:.2} fJ (array {:.2} fJ + sensing {:.2} fJ)",
        report.mean_energy * 1e15,
        report.mean_array_energy * 1e15,
        report.mean_sensing_energy * 1e15
    );

    // 4. Derive the density/efficiency metrics of Table 1.
    let metrics = performance_metrics(
        engine.program(),
        &report,
        &MetricsConfig::febim_calibrated(),
    )?;
    println!(
        "storage density        : {:.2} Mb/mm^2",
        metrics.storage_density_mb_per_mm2
    );
    println!(
        "computing efficiency   : {:.1} TOPS/W",
        metrics.efficiency_tops_per_watt
    );

    // 5. Inspect a single inference in detail.
    let sample = split.test.sample(0).expect("non-empty test set");
    let outcome = engine.infer(sample)?;
    println!(
        "sample 0: predicted class {} (true {}), wordline currents {:?} uA",
        outcome.prediction,
        split.test.label(0).expect("label"),
        outcome
            .wordline_currents
            .iter()
            .map(|c| (c * 1e6 * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
