//! Device-variation robustness study: how FeFET threshold-voltage variation
//! affects the in-memory classification accuracy (the Fig. 8(c) experiment),
//! plus a look at the write-disturb bookkeeping of the half-bias scheme.
//!
//! Run with:
//!
//! ```text
//! cargo run --example device_variation_study
//! ```

use febim_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = iris_like(808)?;
    let config = EngineConfig::febim_default();

    // Sweep sigma_VTH from the ideal device to 45 mV (the paper's worst case;
    // the cited experimental FeFET variation is 38 mV).
    println!("-- Monte-Carlo variation sweep (iris-like GNBC) --");
    let sigmas = [0.0, 15.0, 30.0, 38.0, 45.0];
    let epochs = 20;
    let points = variation_sweep(&dataset, &config, &sigmas, 0.7, epochs, 808)?;
    println!("epochs per point: {epochs}");
    println!("sigma_vth [mV]  mean acc [%]  std [%]   min [%]   max [%]");
    for point in &points {
        println!(
            "{:>13.1}  {:>11.2}  {:>7.2}  {:>8.2}  {:>8.2}",
            point.sigma_vth_mv,
            100.0 * point.stats.mean,
            100.0 * point.stats.std_dev,
            100.0 * point.stats.min,
            100.0 * point.stats.max
        );
    }
    let ideal = points.first().expect("at least one sigma").stats.mean;
    let worst = points.last().expect("at least one sigma").stats.mean;
    println!(
        "accuracy drop at {} mV: {:.2} percentage points",
        sigmas.last().unwrap(),
        100.0 * (ideal - worst)
    );

    // A single engine instance at the experimentally reported 38 mV.
    println!("\n-- single deployment at the experimental 38 mV variation --");
    let split = stratified_split(&dataset, 0.7, &mut seeded_rng(808))?;
    let noisy_engine = FebimEngine::fit(
        &split.train,
        config
            .clone()
            .with_variation(VariationModel::from_millivolts(38.0), 99)
            .with_pulse_programming(),
    )?;
    let report = noisy_engine.evaluate(&split.test)?;
    println!(
        "in-memory accuracy with 38 mV variation and pulse-train programming: {:.2} %",
        100.0 * report.accuracy
    );
    println!(
        "ties broken deterministically: {} / {}",
        report.ties, report.samples
    );
    println!(
        "total write energy spent programming the array: {:.2} pJ",
        noisy_engine.array().write_energy() * 1e12
    );
    Ok(())
}
